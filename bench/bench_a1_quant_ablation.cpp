// A1 — quantization-scheme ablation (DESIGN.md §6.4).
//
// One FP32 multi-task student is quantized six ways (per-tensor / per-channel
// weights × min-max / percentile / entropy activation calibration); each
// variant is evaluated on task detection F1 against the FP32 reference and
// on raw output distortion. Regenerates the recipe-selection table.
#include "bench/bench_util.h"
#include "detect/decoder.h"
#include "detect/nms.h"
#include "kg/matcher.h"
#include "tensor/ops.h"

#include <cmath>

using namespace itask;

namespace {

/// Knowledge-graph inference path shared by the FP32 reference and every
/// quantized variant (mirrors Framework::decode_and_match for the Q config).
template <typename ForwardFn>
detect::EvalResult eval_with(ForwardFn&& forward,
                             const core::FrameworkOptions& options,
                             const data::Dataset& eval,
                             const core::TaskHandle& task) {
  detect::DecoderOptions dec = options.decoder;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  const kg::TaskMatcher matcher(task.compiled, options.matcher);
  std::vector<std::vector<detect::Detection>> detections;
  const auto indices = eval.all_indices();
  for (int64_t start = 0; start < eval.size(); start += 16) {
    const int64_t end = std::min(eval.size(), start + 16);
    const data::Batch batch = eval.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = forward(batch.images);
    auto candidates = detect::decode(out, dec);
    for (auto& per_image : candidates) {
      std::vector<detect::Detection> kept;
      for (detect::Detection& d : per_image) {
        if (!matcher.relevant(d.attr_probs, d.class_probs)) continue;
        d.confidence =
            d.objectness * matcher.confidence(d.attr_probs, d.class_probs);
        kept.push_back(std::move(d));
      }
      detections.push_back(detect::nms(std::move(kept), 0.5f));
    }
  }
  return detect::evaluate(detections,
                          core::Framework::ground_truth(eval, task.spec),
                          0.4f);
}

}  // namespace

int main() {
  bench::print_header("A1 (table): quantization-scheme ablation",
                      "per-channel symmetric weights + calibrated "
                      "activations is the deployed recipe");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + FP32 multi-task student…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();  // also trains the FP32 multi-task student
  vit::VitModel& fp32 = fw.multitask_student();

  const data::Dataset eval = bench::make_eval_set(options, 96, 16180);
  Rng calib_rng(4242);
  const data::SceneGenerator gen(options.generator);
  const data::Dataset calib =
      data::Dataset::generate(gen, options.calibration_scenes, calib_rng);
  const auto calib_idx = calib.all_indices();
  const Tensor calib_images = calib.make_batch(calib_idx).images;

  const int64_t task_ids[] = {1, 2, 6};
  std::vector<core::TaskHandle> tasks;
  for (int64_t tid : task_ids) tasks.push_back(fw.define_task(data::task_by_id(tid)));

  // FP32 reference rows.
  fp32.set_training(false);
  double fp32_mean = 0.0;
  for (const auto& task : tasks)
    fp32_mean += eval_with([&](const Tensor& img) { return fp32.forward(img); },
                           options, eval, task)
                     .f1;
  fp32_mean /= static_cast<double>(tasks.size());
  std::printf("\nFP32 reference mean F1 over %zu tasks: %.3f\n\n",
              tasks.size(), fp32_mean);

  std::printf("%-12s %-12s | %8s %8s | %14s\n", "weights", "activations",
              "mean F1", "ΔF1", "logit MAE");
  for (auto gran : {quant::WeightGranularity::kPerChannel,
                    quant::WeightGranularity::kPerTensor}) {
    for (auto method : {quant::CalibMethod::kMinMax,
                        quant::CalibMethod::kPercentile,
                        quant::CalibMethod::kEntropy}) {
      quant::QuantOptions qopt;
      qopt.granularity = gran;
      qopt.method = method;
      quant::QuantizedVit qvit = quant::QuantizedVit::from_model(fp32, qopt);
      qvit.calibrate(calib_images);
      qvit.finalize();

      double f1_sum = 0.0;
      for (const auto& task : tasks)
        f1_sum += eval_with(
                      [&](const Tensor& img) { return qvit.forward(img); },
                      options, eval, task)
                      .f1;
      const double f1 = f1_sum / static_cast<double>(tasks.size());

      // Raw distortion: mean |Δ class logit| on the calibration set.
      const vit::VitOutput ref = fp32.forward(calib_images);
      const vit::VitOutput out = qvit.forward(calib_images);
      double mae = 0.0;
      for (int64_t i = 0; i < ref.class_logits.numel(); ++i)
        mae += std::abs(ref.class_logits[i] - out.class_logits[i]);
      mae /= static_cast<double>(ref.class_logits.numel());

      std::printf("%-12s %-12s | %8.3f %+8.3f | %14.4f\n",
                  gran == quant::WeightGranularity::kPerChannel ? "per-channel"
                                                                : "per-tensor",
                  quant::calib_method_name(method), f1, f1 - fp32_mean, mae);
    }
  }
  bench::print_footer_note(
      "shape: per-channel ≥ per-tensor; calibrated activation clipping "
      "(percentile/entropy) matters more when outliers are present; the "
      "deployed recipe loses only a small ΔF1 vs FP32.");
  return 0;
}
