// A2 — distillation-loss ablation.
//
// Which parts of the distillation recipe earn their keep? One teacher, one
// task (surgical_sharps), same student architecture and step budget; the
// loss composition and temperature vary. Regenerates the KD ablation table.
#include "bench/bench_util.h"
#include "detect/decoder.h"
#include "detect/nms.h"

#include <algorithm>
#include <cmath>

using namespace itask;

namespace {

detect::EvalResult eval_student(vit::VitModel& student,
                                const core::FrameworkOptions& options,
                                const data::Dataset& eval,
                                const data::TaskSpec& spec) {
  student.set_training(false);
  detect::DecoderOptions dec = options.decoder;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  std::vector<std::vector<detect::Detection>> detections;
  const auto indices = eval.all_indices();
  for (int64_t start = 0; start < eval.size(); start += 16) {
    const int64_t end = std::min(eval.size(), start + 16);
    const data::Batch batch = eval.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = student.forward(batch.images);
    auto candidates = detect::decode(out, dec);
    for (size_t bi = 0; bi < candidates.size(); ++bi) {
      std::vector<detect::Detection> kept;
      for (detect::Detection& d : candidates[bi]) {
        const float logit =
            out.relevance.at({static_cast<int64_t>(bi), d.cell, 0});
        if (1.0f / (1.0f + std::exp(-logit)) < 0.5f) continue;
        d.confidence = d.objectness / (1.0f + std::exp(-logit));
        kept.push_back(std::move(d));
      }
      detections.push_back(detect::nms(std::move(kept), 0.5f));
    }
  }
  return detect::evaluate(detections,
                          core::Framework::ground_truth(eval, spec), 0.4f);
}

struct Variant {
  const char* name;
  float alpha_hard;
  float beta_logits;
  float gamma_features;
  float temperature;
};

/// Corrupts per-object annotations (class flips + attribute bit flips) with
/// probability `p` — the realistic "cheap task labels" regime where the
/// teacher's soft targets are the only clean signal.
data::Dataset corrupt_labels(const data::Dataset& clean, double p, Rng& rng) {
  std::vector<data::Scene> scenes = clean.scenes();
  for (data::Scene& scene : scenes) {
    for (data::ObjectInstance& o : scene.objects) {
      if (rng.bernoulli(p)) {
        o.cls = static_cast<data::ObjectClass>(
            rng.randint(1, data::kNumClasses - 1));
      }
      for (int64_t a = 0; a < data::kNumAttributes; ++a) {
        if (rng.bernoulli(p * 0.5)) {
          o.attributes[a] = o.attributes[a] > 0.5f ? 0.0f : 1.0f;
        }
      }
    }
  }
  return data::Dataset(std::move(scenes));
}

}  // namespace

int main() {
  bench::print_header("A2 (table): distillation-loss ablation",
                      "hard labels + logit KD + feature KD, temperature 2");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher…\n");
  fw.pretrain_teacher();

  const data::TaskSpec& spec = data::task_by_id(1);  // surgical_sharps
  const data::Dataset eval = bench::make_eval_set(options, 96, 14142);
  Rng corpus_rng(808);
  const data::SceneGenerator gen(options.generator);

  const Variant variants[] = {
      {"hard labels only", 1.0f, 0.0f, 0.0f, 2.0f},
      {"logit KD only", 0.0f, 1.0f, 0.0f, 2.0f},
      {"hard + logit KD", 0.5f, 1.0f, 0.0f, 2.0f},
      {"hard + logit + feature KD", 0.5f, 1.0f, 0.3f, 2.0f},
      {"full recipe, T = 1", 0.5f, 1.0f, 0.3f, 1.0f},
      {"full recipe, T = 4", 0.5f, 1.0f, 0.3f, 4.0f},
      {"full recipe, T = 8", 0.5f, 1.0f, 0.3f, 8.0f},
  };

  // The value of each distillation signal depends on label quality and
  // quantity: with exact labels in abundance, hard supervision suffices;
  // when the cheap task annotations are noisy, the teacher's soft targets
  // are the only clean signal — the regime the paper's distillation targets.
  struct Regime {
    int64_t corpus_size;
    double label_noise;
  };
  const Regime regimes[] = {
      {options.task_corpus_size, 0.0},
      {options.task_corpus_size, 0.35},
      {24, 0.0},
  };
  for (const Regime& regime : regimes) {
    const int64_t corpus_size = regime.corpus_size;
    Rng fork = corpus_rng.fork();
    data::Dataset corpus = data::Dataset::generate(gen, corpus_size, fork);
    if (regime.label_noise > 0.0)
      corpus = corrupt_labels(corpus, regime.label_noise, fork);
    std::printf("\ntask corpus: %lld scenes, %.0f%% label corruption "
                "(task: %s)\n",
                static_cast<long long>(corpus_size),
                100.0 * regime.label_noise, spec.name.c_str());
    std::printf("%-28s | %7s %7s %7s\n", "variant", "F1", "AP", "recall");
    for (const Variant& v : variants) {
      double f1 = 0.0, ap = 0.0, recall = 0.0;
      constexpr int kSeeds = 2;
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        Rng rng(seed * 31337);
        vit::VitModel student(options.student_config, rng);
        distill::DistillOptions dopt = options.distillation;
        dopt.alpha_hard = v.alpha_hard;
        dopt.beta_logits = v.beta_logits;
        dopt.gamma_features = v.gamma_features;
        dopt.temperature = v.temperature;
        dopt.seed = seed;
        // Equalise optimisation effort across corpus sizes.
        dopt.batch_size = std::min<int64_t>(16, corpus_size);
        dopt.epochs = options.distillation.epochs *
                      std::max<int64_t>(1, options.task_corpus_size /
                                               corpus_size);
        distill::Distiller distiller(fw.teacher(), student, dopt, rng);
        distiller.run(corpus, &spec);
        const auto r = eval_student(student, options, eval, spec);
        f1 += r.f1;
        ap += r.average_precision;
        recall += r.recall;
      }
      std::printf("%-28s | %7.3f %7.3f %7.3f\n", v.name, f1 / kSeeds,
                  ap / kSeeds, recall / kSeeds);
    }
  }
  bench::print_footer_note(
      "shape: with abundant *exact* labels hard supervision already wins "
      "(synthetic labels are perfect by construction); distillation earns "
      "its keep exactly where the paper deploys it — when task annotations "
      "are noisy (KD variants beat hard-only by ~0.1 F1 at 35% corruption) "
      "or scarce (24 scenes).");
  return 0;
}
