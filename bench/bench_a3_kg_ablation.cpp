// A3 — knowledge-graph quality ablation.
//
// The graph is the LLM's work product; how robust is iTask to a worse LLM?
// One trained quantized model is reused for every cell (the graph only
// affects matching, not the weights), while the oracle's noise / edge-drop /
// spurious-edge knobs degrade the graph. Regenerates the noise-sweep figure.
#include "bench/bench_util.h"

using namespace itask;

int main() {
  bench::print_header("A3 (figure): detection accuracy vs knowledge-graph "
                      "quality",
                      "robustness to imperfect LLM graph generation");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + quantized multi-task model…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();

  const data::Dataset eval = bench::make_eval_set(options, 96, 661);
  const int64_t task_ids[] = {1, 2, 6};

  std::printf("\nweight-noise sweep (drop = 0, spurious = 0):\n");
  std::printf("%8s | %10s\n", "noise", "mean F1");
  for (float noise : {0.0f, 0.1f, 0.2f, 0.35f, 0.5f, 0.75f}) {
    double f1 = 0.0;
    int64_t count = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      core::FrameworkOptions noisy = options;
      noisy.oracle.weight_noise = noise;
      noisy.oracle.seed = seed;
      core::Framework matcher_only(noisy);  // oracle host; no training needed
      for (int64_t tid : task_ids) {
        core::TaskHandle task =
            matcher_only.define_task(data::task_by_id(tid));
        // Evaluate with the *trained* framework but this (noisy) task graph.
        f1 += fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask)
                  .f1;
        ++count;
      }
    }
    std::printf("%8.2f | %10.3f\n", noise, f1 / static_cast<double>(count));
  }

  std::printf("\nedge-drop sweep (noise = 0.1):\n");
  std::printf("%8s | %10s\n", "drop", "mean F1");
  for (float drop : {0.0f, 0.1f, 0.2f, 0.4f, 0.6f}) {
    double f1 = 0.0;
    int64_t count = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      core::FrameworkOptions noisy = options;
      noisy.oracle.weight_noise = 0.1f;
      noisy.oracle.drop_probability = drop;
      noisy.oracle.seed = seed;
      core::Framework matcher_only(noisy);
      for (int64_t tid : task_ids) {
        core::TaskHandle task =
            matcher_only.define_task(data::task_by_id(tid));
        f1 += fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask)
                  .f1;
        ++count;
      }
    }
    std::printf("%8.2f | %10.3f\n", drop, f1 / static_cast<double>(count));
  }

  std::printf("\nspurious-edge sweep (noise = 0.1, drop = 0):\n");
  std::printf("%8s | %10s\n", "spurious", "mean F1");
  for (float spurious : {0.0f, 0.2f, 0.4f, 0.8f}) {
    double f1 = 0.0;
    int64_t count = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      core::FrameworkOptions noisy = options;
      noisy.oracle.weight_noise = 0.1f;
      noisy.oracle.spurious_probability = spurious;
      noisy.oracle.seed = seed;
      core::Framework matcher_only(noisy);
      for (int64_t tid : task_ids) {
        core::TaskHandle task =
            matcher_only.define_task(data::task_by_id(tid));
        f1 += fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask)
                  .f1;
        ++count;
      }
    }
    std::printf("%8.2f | %10.3f\n", spurious,
                f1 / static_cast<double>(count));
  }
  bench::print_footer_note(
      "shape: graceful degradation — mild LLM noise (≤0.2) barely moves F1 "
      "(thresholds absorb it); heavy edge dropping hurts most because "
      "required attributes vanish from the graph.");
  return 0;
}
