// A4 — low-bit quantization + quantization-aware fine-tuning (extension).
//
// The abstract stops at "a quantized version of the model"; the natural
// follow-on for resource-constrained deployment is pushing below INT8.
// This bench sweeps weight bit width {8, 6, 4} with (a) plain post-training
// quantization and (b) QAT fine-tuning (straight-through estimator on the
// master weights), reporting task F1 through the knowledge-graph path and
// the model footprint at each point.
#include "bench/bench_util.h"
#include "quant/qat.h"

using namespace itask;

int main() {
  bench::print_header("A4 (table): low-bit quantization and QAT (extension)",
                      "PTQ collapses below INT8; QAT recovers most of it");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + FP32 multi-task student…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();
  vit::VitModel& fp32 = fw.multitask_student();

  const data::Dataset eval = bench::make_eval_set(options, 96, 60221);
  Rng rng(2718);
  const data::SceneGenerator gen(options.generator);
  const data::Dataset calib =
      data::Dataset::generate(gen, options.calibration_scenes, rng);
  const Tensor calib_images = calib.make_batch(calib.all_indices()).images;
  const data::Dataset qat_corpus = data::Dataset::generate(gen, 160, rng);

  const int64_t task_ids[] = {1, 2, 6};
  std::vector<core::TaskHandle> tasks;
  for (int64_t tid : task_ids)
    tasks.push_back(fw.define_task(data::task_by_id(tid)));

  auto mean_f1 = [&](auto&& forward) {
    double sum = 0.0;
    for (const auto& task : tasks)
      sum += bench::evaluate_kg_path(forward, options, eval, task).f1;
    return sum / static_cast<double>(tasks.size());
  };

  fp32.set_training(false);
  const double fp32_f1 =
      mean_f1([&](const Tensor& img) { return fp32.forward(img); });
  std::printf("\nFP32 reference mean F1: %.3f (%.3f MB)\n\n", fp32_f1,
              static_cast<double>(fp32.parameter_count()) * 4.0 /
                  (1024.0 * 1024.0));

  std::printf("%6s | %10s | %10s | %12s\n", "bits", "PTQ F1", "QAT F1",
              "weights(KB)");
  for (int bits : {8, 6, 4}) {
    quant::QuantOptions qopt;
    qopt.weight_bits = bits;

    // (a) plain PTQ of the trained FP32 model.
    double ptq_f1;
    double weight_kb;
    {
      quant::QuantizedVit qvit = quant::QuantizedVit::from_model(fp32, qopt);
      qvit.calibrate(calib_images);
      qvit.finalize();
      ptq_f1 = mean_f1([&](const Tensor& img) { return qvit.forward(img); });
      // Effective footprint: bits/8 of the int8 container.
      weight_kb = static_cast<double>(qvit.quantized_weight_bytes()) *
                  (static_cast<double>(bits) / 8.0) / 1024.0;
    }

    // (b) QAT: fine-tune a copy of the model on the target grid, then PTQ.
    double qat_f1;
    {
      Rng clone_rng(1);
      vit::VitModel tuned(fp32.config(), clone_rng);
      tuned.load_state_dict(fp32.state_dict());
      quant::QatOptions qat;
      qat.quant = qopt;
      qat.epochs = 8;
      quant::qat_finetune(tuned, qat_corpus, qat);
      quant::QuantizedVit qvit = quant::QuantizedVit::from_model(tuned, qopt);
      qvit.calibrate(calib_images);
      qvit.finalize();
      qat_f1 = mean_f1([&](const Tensor& img) { return qvit.forward(img); });
    }

    std::printf("%6d | %10.3f | %10.3f | %12.1f\n", bits, ptq_f1, qat_f1,
                weight_kb);
  }
  bench::print_footer_note(
      "shape: INT8/INT6 PTQ is free; INT4 PTQ degrades sharply and QAT "
      "recovers the gap at a 2x smaller footprint. Caveat: QAT rows include "
      "its extra fine-tuning epochs, which also lift the 8-bit point — "
      "compare QAT rows against each other and PTQ rows against FP32.");
  return 0;
}
