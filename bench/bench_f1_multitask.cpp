// F1 — "the quantized model provides robust multi-task performance".
//
// Regenerates the multi-task robustness figure: deploy ONE model and ask it
// to serve every task.
//  * A task-specific student distilled for task 0 collapses off-mission (its
//    relevance head answers the wrong question).
//  * The quantized multi-task model keeps working: relevance comes from
//    knowledge-graph matching, so a new task only needs a new graph.
// Also prints the per-task-count mean-accuracy series (the figure's x-axis)
// and the memory cost of the alternative "one student per task" fleet.
#include "bench/bench_util.h"

using namespace itask;

int main() {
  bench::print_header(
      "F1 (figure): accuracy vs number of served tasks",
      "claim: quantized configuration is robust across tasks");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();

  const data::Dataset eval = bench::make_eval_set(options, 96, 31415);
  const auto& library = data::task_library();

  // The single task-specific deployment: a student distilled for the
  // surgical_sharps mission (a representative strong task-specific case).
  constexpr size_t kHome = 1;
  core::TaskHandle home_task = fw.define_task(library[kHome]);
  std::printf("distilling task-specific student for \"%s\"…\n\n",
              library[kHome].name.c_str());
  fw.prepare_task_specific(home_task);
  // Figure series order: home task first, then the rest.
  std::vector<size_t> order{kHome};
  for (size_t i = 0; i < library.size(); ++i)
    if (i != kHome) order.push_back(i);

  std::printf("%-20s | %12s | %12s\n", "evaluated on task",
              "TS(home) F1", "quantized F1");
  std::printf("---------------------+--------------+-------------\n");
  std::vector<double> ts_f1, q_f1;
  for (size_t oi : order) {
    const data::TaskSpec& spec = library[oi];
    // Evaluate the task-0 student ON this task: same weights, but the
    // relevance decision (and ground truth) belong to the new task.
    core::TaskHandle probe = fw.define_task(spec);
    probe.slot = home_task.slot;  // reuse the task-0 student's weights
    const auto ts = fw.evaluate(eval, probe, core::ConfigKind::kTaskSpecific);
    const auto q =
        fw.evaluate(eval, probe, core::ConfigKind::kQuantizedMultiTask);
    ts_f1.push_back(ts.f1);
    q_f1.push_back(q.f1);
    std::printf("%-20s | %12.3f | %12.3f%s\n", spec.name.c_str(), ts.f1, q.f1,
                oi == kHome ? "  <-- TS home task" : "");
  }

  std::printf("\nfigure series: mean accuracy when serving tasks 0..k-1 with "
              "one deployed model\n");
  std::printf("%8s | %16s | %16s\n", "k tasks", "task-specific", "quantized");
  double ts_acc = 0.0, q_acc = 0.0;
  for (size_t k = 1; k <= library.size(); ++k) {
    ts_acc += ts_f1[k - 1];
    q_acc += q_f1[k - 1];
    std::printf("%8zu | %16.3f | %16.3f\n", k, ts_acc / static_cast<double>(k),
                q_acc / static_cast<double>(k));
  }
  std::printf("\nalternative fleet cost: %zu task-specific students = %.3f MB "
              "vs one quantized model = %.3f MB\n",
              library.size(),
              fw.task_specific_model_mb() * static_cast<double>(library.size()),
              fw.quantized_model_mb());
  bench::print_footer_note(
      "shape: TS curve starts above Q at k=1 and collapses as off-mission "
      "tasks dilute it; Q stays flat — the crossover motivates the dual "
      "configuration.");
  return 0;
}
