// F2 — "iTask … generalizes efficiently from limited samples by generating
// an abstract knowledge graph".
//
// Regenerates the few-shot figure. Three detectors attempt each task with K
// task-labelled scenes available:
//  1. data-driven baseline: a student trained from scratch on ONLY the K
//     scenes (supervised incl. task relevance) — what conventional models do;
//  2. KG + distillation: a student distilled from the task-agnostic teacher
//     using only the K scenes as task data;
//  3. KG zero-shot: the quantized multi-task model + knowledge-graph
//     matching — uses NO task-specific samples at all (flat line).
// The claim holds if (3) and (2) dominate (1) at small K.
#include "bench/bench_util.h"
#include "detect/decoder.h"
#include "detect/nms.h"

#include <algorithm>
#include <cmath>

using namespace itask;

namespace {

/// Evaluates a student model's relevance-head path on `eval`.
detect::EvalResult eval_student(vit::VitModel& student,
                                const core::FrameworkOptions& options,
                                const data::Dataset& eval,
                                const data::TaskSpec& spec) {
  student.set_training(false);
  detect::DecoderOptions dec = options.decoder;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  std::vector<std::vector<detect::Detection>> detections;
  const auto indices = eval.all_indices();
  for (int64_t start = 0; start < eval.size(); start += 16) {
    const int64_t end = std::min(eval.size(), start + 16);
    const data::Batch batch = eval.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = student.forward(batch.images);
    auto candidates = detect::decode(out, dec);
    for (size_t bi = 0; bi < candidates.size(); ++bi) {
      std::vector<detect::Detection> kept;
      for (detect::Detection& d : candidates[bi]) {
        const float logit =
            out.relevance.at({static_cast<int64_t>(bi), d.cell, 0});
        const float rel = 1.0f / (1.0f + std::exp(-logit));
        if (rel < 0.5f) continue;
        d.confidence = d.objectness * rel;
        kept.push_back(std::move(d));
      }
      detections.push_back(detect::nms(std::move(kept), 0.5f));
    }
  }
  return detect::evaluate(detections,
                          core::Framework::ground_truth(eval, spec), 0.4f);
}

/// Epoch budget normalised so every K sees a comparable optimisation effort.
int64_t epochs_for(int64_t shots, int64_t batch) {
  const int64_t steps_per_epoch = (shots + batch - 1) / batch;
  return std::clamp<int64_t>(280 / steps_per_epoch, 12, 280);
}

}  // namespace

int main() {
  bench::print_header(
      "F2 (figure): accuracy vs task-labelled samples (few-shot)",
      "claim: KG-guided detection generalises from limited samples");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + quantized multi-task model…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();

  const data::Dataset eval = bench::make_eval_set(options, 96, 27182);
  // A pool the few-shot samples are drawn from.
  Rng pool_rng(5150);
  const data::SceneGenerator gen(options.generator);
  const data::Dataset pool = data::Dataset::generate(gen, 128, pool_rng);

  const int64_t task_ids[] = {1, 2};  // surgical_sharps, fragile_items
  const int64_t shot_counts[] = {2, 4, 8, 16, 32, 64};
  const uint64_t seeds[] = {1, 2};

  for (int64_t tid : task_ids) {
    const data::TaskSpec& spec = data::task_by_id(tid);
    core::TaskHandle task = fw.define_task(spec);
    const auto zero_shot =
        fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask);
    std::printf("\ntask \"%s\"  (KG zero-shot F1 = %.3f, uses 0 samples)\n",
                spec.name.c_str(), zero_shot.f1);
    std::printf("%6s | %16s | %16s | %16s\n", "shots", "scratch baseline",
                "KG + distill", "KG zero-shot");
    for (int64_t shots : shot_counts) {
      double scratch_sum = 0.0, distill_sum = 0.0;
      for (uint64_t seed : seeds) {
        Rng rng(seed * 977 + static_cast<uint64_t>(tid));
        const auto idx = data::sample_few_shot(pool, spec, shots, rng);
        std::vector<data::Scene> scenes;
        for (int64_t i : idx) scenes.push_back(pool.scene(i));
        const data::Dataset few(std::move(scenes));

        // (1) scratch baseline: supervised only, K scenes.
        {
          vit::VitModel student(options.student_config, rng);
          distill::TrainerOptions topt;
          topt.batch_size = std::min<int64_t>(16, few.size());
          topt.epochs = epochs_for(few.size(), topt.batch_size);
          topt.w_relevance = 1.5f;
          topt.seed = seed;
          distill::Trainer(student, topt).fit(few, &spec);
          scratch_sum += eval_student(student, options, eval, spec).f1;
        }
        // (2) KG + distillation from the task-agnostic teacher, K scenes.
        {
          vit::VitModel student(options.student_config, rng);
          distill::DistillOptions dopt = options.distillation;
          dopt.batch_size = std::min<int64_t>(16, few.size());
          dopt.epochs = epochs_for(few.size(), dopt.batch_size);
          dopt.seed = seed;
          distill::Distiller distiller(fw.teacher(), student, dopt, rng);
          distiller.run(few, &spec);
          distill_sum += eval_student(student, options, eval, spec).f1;
        }
      }
      const double n = static_cast<double>(std::size(seeds));
      std::printf("%6lld | %16.3f | %16.3f | %16.3f\n",
                  static_cast<long long>(shots), scratch_sum / n,
                  distill_sum / n, zero_shot.f1);
    }
  }
  bench::print_footer_note(
      "shape: the KG curves dominate the scratch baseline at small K — the "
      "abstract knowledge graph supplies what the data cannot; the baseline "
      "only catches up with ~an order of magnitude more samples.");
  return 0;
}
