// F3 — real-time feasibility and the accelerator design space.
//
// Regenerates the architecture-sweep figure: PE-array size vs latency /
// FPS / utilization / dynamic energy for the deployed student workload, a
// per-layer cycle breakdown at the chosen design point, and two ablations
// called out in DESIGN.md §6 (double buffering, SRAM weight residency).
#include <benchmark/benchmark.h>

#include "accel/systolic.h"
#include "bench/bench_util.h"

using namespace itask;

namespace {

void print_table() {
  bench::print_header("F3 (figure): accelerator design-space sweep",
                      "real-time feasibility across PE-array sizes");
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1, "student");
  std::printf("workload: %.2f MMACs, %lld ops, %lld B INT8 weights\n\n",
              static_cast<double>(w.total_macs()) / 1e6,
              static_cast<long long>(w.kernel_count()),
              static_cast<long long>(w.total_weight_bytes_int8()));

  std::printf("%8s | %11s %9s %8s %12s %9s %10s\n", "PE grid",
              "latency(us)", "FPS", "util%", "dyn E (uJ)", "area mm2",
              "FPS/mm2");
  for (int64_t pe : {4, 8, 16, 32, 64}) {
    accel::SystolicConfig cfg;
    cfg.rows = pe;
    cfg.cols = pe;
    const auto r = accel::SystolicArray(cfg).run(w, 10.0);
    double macs = 0.0, cycles = 0.0;
    for (const auto& l : r.layers) {
      macs += static_cast<double>(l.macs);
      cycles += static_cast<double>(l.cycles);
    }
    const double util =
        macs / (cycles * static_cast<double>(cfg.pe_count()));
    std::printf("%5lldx%-2lld | %11.1f %9.0f %8.1f %12.3f %9.3f %10.0f\n",
                static_cast<long long>(pe), static_cast<long long>(pe),
                r.total_micros, r.fps_capability, 100.0 * util,
                r.dynamic_energy_uj, cfg.area_mm2(),
                r.fps_capability / cfg.area_mm2());
  }

  std::printf("\nablation: double buffering (16x16)\n");
  for (bool db : {false, true}) {
    accel::SystolicConfig cfg;
    cfg.double_buffered = db;
    const auto r = accel::SystolicArray(cfg).run(w, 10.0);
    std::printf("  double_buffered=%d : %8.1f us (%.0f FPS)\n", db ? 1 : 0,
                r.total_micros, r.fps_capability);
  }

  std::printf("\nablation: SRAM weight residency (16x16)\n");
  for (bool resident : {true, false}) {
    accel::SystolicConfig cfg;
    cfg.weights_resident = resident;
    const auto r = accel::SystolicArray(cfg).run(w, 10.0);
    int64_t dram = 0;
    for (const auto& l : r.layers) dram += l.dram_bytes;
    std::printf("  weights_resident=%d : %8.1f us, %6lld B DRAM/frame, "
                "%8.3f uJ\n",
                resident ? 1 : 0, r.total_micros,
                static_cast<long long>(dram), r.dynamic_energy_uj);
  }

  std::printf("\nper-layer breakdown at the 16x16 design point:\n");
  std::printf("%s", accel::SystolicArray().run(w, 10.0).to_table().c_str());
  bench::print_footer_note(
      "shape: latency scales down with PE count until fill/drain overhead "
      "dominates (falling utilization); FPS/mm2 peaks at small-to-mid "
      "arrays — 16x16 is the latency/area knee used for T2/T3.");
}

void BM_SweepPoint(benchmark::State& state) {
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  accel::SystolicConfig cfg;
  cfg.rows = cfg.cols = state.range(0);
  const accel::SystolicArray array(cfg);
  for (auto _ : state)
    benchmark::DoNotOptimize(array.run(w, 10.0).total_micros);
}
BENCHMARK(BM_SweepPoint)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
