// F4 — multi-task serving latency (extension).
//
// The run-time half of the dual-configuration trade-off: a frame stream
// whose mission changes with probability p per frame, served on the
// accelerator either by a fleet of per-task students (weight swap over DMA
// on every change) or by the single quantized model (graph-vector swap
// only). Regenerates the serving-latency figure.
#include "bench/bench_util.h"
#include "core/serving.h"

using namespace itask;

int main() {
  bench::print_header(
      "F4 (figure): serving latency under mission switching (extension)",
      "the quantized configuration is switch-cost-free");

  core::ServingOptions base;
  base.frames = 20000;
  std::printf("model: %s; accelerator: %lldx%lld @ %.0f MHz, DMA %.1f GB/s\n"
              "steady-state inference: %.1f us/frame\n\n",
              base.model.to_string().c_str(),
              static_cast<long long>(base.accelerator.rows),
              static_cast<long long>(base.accelerator.cols),
              base.accelerator.freq_mhz, base.accelerator.dram_bw_gbps,
              core::simulate_serving(core::ServingStrategy::kQuantizedSingle,
                                     base)
                  .inference_us);

  std::printf("switch-rate sweep (4 tasks):\n");
  std::printf("%8s | %21s | %21s\n", "p", "fleet mean/p99 (us)",
              "single mean/p99 (us)");
  for (double p : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    core::ServingOptions o = base;
    o.task_switch_probability = p;
    const auto fleet = core::simulate_serving(
        core::ServingStrategy::kTaskSpecificFleet, o);
    const auto single = core::simulate_serving(
        core::ServingStrategy::kQuantizedSingle, o);
    std::printf("%s\n", core::serving_switch_sweep_row(p, fleet, single).c_str());
  }

  std::printf("\ntask-count sweep (p = 0.25):\n");
  std::printf("%8s | %12s | %12s | %10s\n", "tasks", "fleet fps",
              "single fps", "fleet swap");
  for (int64_t tasks : {1, 2, 4, 8, 16}) {
    core::ServingOptions o = base;
    o.num_tasks = tasks;
    o.task_switch_probability = 0.25;
    const auto fleet = core::simulate_serving(
        core::ServingStrategy::kTaskSpecificFleet, o);
    const auto single = core::simulate_serving(
        core::ServingStrategy::kQuantizedSingle, o);
    std::printf("%s\n", core::serving_task_sweep_row(tasks, fleet, single).c_str());
  }
  bench::print_footer_note(
      "shape: the fleet's p99 latency inflates with the switch rate (weight "
      "DMA rides the critical path) while the single quantized model's "
      "latency is flat — at edge DMA bandwidths, mission agility is a "
      "quantized-configuration property.");
  return 0;
}
