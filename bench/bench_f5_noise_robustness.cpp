// F5 — sensor-noise robustness (extension).
//
// The abstract promises "robust … performance in complex, real-world
// environments"; the standard evaluation is input corruption at test time.
// Both deployed configurations face additive Gaussian pixel noise of
// increasing strength (train-time images are clean); the figure shows how
// gracefully each degrades.
#include "bench/bench_util.h"

using namespace itask;

namespace {

/// Returns a copy of `eval` with N(0, sigma) noise burned into every pixel.
data::Dataset with_noise(const data::Dataset& eval, float sigma,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Scene> scenes = eval.scenes();
  for (data::Scene& scene : scenes)
    for (float& v : scene.image.data()) v += rng.normal(0.0f, sigma);
  return data::Dataset(std::move(scenes));
}

/// Returns a copy of `eval` with seeded partial occlusion (F8's corruption
/// family) — structured cue destruction, versus the unstructured pixel
/// noise above. Ground truth is untouched in both.
data::Dataset with_occlusion(const data::Dataset& eval, float severity,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Scene> scenes = eval.scenes();
  data::OcclusionOptions occ;
  occ.severity = severity;
  for (data::Scene& scene : scenes) data::apply_occlusion(scene, occ, rng);
  return data::Dataset(std::move(scenes));
}

}  // namespace

int main() {
  bench::print_header(
      "F5 (figure): accuracy vs test-time sensor noise (extension)",
      "robustness of both configurations to input corruption");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + both configurations…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();
  const data::TaskSpec& spec = data::task_by_id(1);  // surgical_sharps
  core::TaskHandle task = fw.define_task(spec);
  fw.prepare_task_specific(task);

  const data::Dataset clean = bench::make_eval_set(options, 96, 8675309);

  std::printf("\ntask \"%s\" (train-time images are clean)\n",
              spec.name.c_str());
  std::printf("%8s | %16s | %16s\n", "sigma", "task-specific F1",
              "quantized F1");
  for (float sigma : {0.0f, 0.02f, 0.05f, 0.1f, 0.15f, 0.25f}) {
    const data::Dataset noisy = with_noise(clean, sigma, 31u + static_cast<uint64_t>(sigma * 1000));
    const auto ts = fw.evaluate(noisy, task, core::ConfigKind::kTaskSpecific);
    const auto q =
        fw.evaluate(noisy, task, core::ConfigKind::kQuantizedMultiTask);
    std::printf("%8.2f | %16.3f | %16.3f\n", sigma, ts.f1, q.f1);
  }

  std::printf("\npartial occlusion (structured corruption; F8 studies the "
              "multi-view recovery)\n");
  std::printf("%8s | %16s | %16s\n", "severity", "task-specific F1",
              "quantized F1");
  for (float severity : {0.0f, 0.2f, 0.35f, 0.5f, 0.65f}) {
    const data::Dataset occluded = with_occlusion(
        clean, severity, 57u + static_cast<uint64_t>(severity * 1000));
    const auto ts =
        fw.evaluate(occluded, task, core::ConfigKind::kTaskSpecific);
    const auto q =
        fw.evaluate(occluded, task, core::ConfigKind::kQuantizedMultiTask);
    std::printf("%8.2f | %16.3f | %16.3f\n", severity, ts.f1, q.f1);
  }
  bench::print_footer_note(
      "shape: both configurations hold up to ~sigma 0.1 (background texture "
      "is 0.05-0.15). Under heavy noise the task-specific relevance head "
      "collapses faster than knowledge-graph matching, which aggregates "
      "evidence across all 16 attributes — an additional robustness "
      "argument for the quantized configuration in harsh environments. "
      "Occlusion bites harder than equal-looking noise: truncation and "
      "overlap destroy the specific pixel cues (specular streak, texture "
      "dots, trail) the attribute heads ground to, so F1 falls roughly "
      "linearly in severity for BOTH configurations — the single-view "
      "deficit F8's K-view fusion then recovers.");
  return 0;
}
