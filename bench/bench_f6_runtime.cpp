// F6 — batched inference runtime: throughput and latency of the
// multi-threaded serving engine (src/runtime) over the deployed quantized
// configuration, swept across worker count × micro-batch size, plus the
// batching-delay/latency trade-off (p99 vs max_wait).
//
// NOTE: F6 is the one experiment that deliberately uses multiple cores —
// worker scaling is the subject. Everything else in the sweep stays on the
// single-core budget.
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/server.h"

namespace itask {
namespace {

struct LoadResult {
  double seconds = 0.0;
  int64_t completed = 0;
  int64_t rejected = 0;
  runtime::Histogram::Snapshot total_us;
};

/// Drives `requests` submissions from `producers` threads, retrying on
/// backpressure so every request eventually lands, and waits for all results.
LoadResult drive_load(const core::Framework& fw, const core::TaskHandle& task,
                      runtime::RuntimeOptions opts, int64_t requests,
                      int64_t producers, const data::Dataset& scenes) {
  runtime::InferenceServer server(fw, opts);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::vector<std::future<runtime::InferenceResult>>> futures(
      static_cast<size_t>(producers));
  std::vector<std::thread> threads;
  const int64_t per_producer = requests / producers;
  for (int64_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int64_t i = 0; i < per_producer; ++i) {
        const int64_t scene = (p * per_producer + i) % scenes.size();
        while (true) {
          auto f = server.try_submit(scenes.scene(scene).image, task,
                                     core::ConfigKind::kQuantizedMultiTask);
          if (f.has_value()) {
            futures[static_cast<size_t>(p)].push_back(std::move(*f));
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& per : futures) {
    for (auto& f : per) f.get();
  }
  const auto end = std::chrono::steady_clock::now();
  server.shutdown();

  LoadResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.completed = server.metrics().counter("requests_completed").value();
  r.rejected = server.metrics().counter("requests_rejected").value();
  r.total_us = server.metrics().histogram("total_us").snapshot();
  return r;
}

}  // namespace
}  // namespace itask

int main() {
  using namespace itask;
  const bool fast = std::getenv("ITASK_BENCH_FAST") != nullptr;
  bench::print_header(
      "F6", "inference runtime: throughput/latency vs workers × batch size");

  core::Framework fw(bench::experiment_options(/*seed=*/42));
  std::printf("[setup] training deployment (quantized configuration)...\n");
  fw.pretrain_teacher();
  const core::TaskHandle task = fw.define_task(data::task_by_id(1));
  fw.prepare_quantized();
  const data::Dataset scenes =
      bench::make_eval_set(fw.options(), /*scenes=*/32, /*seed=*/2024);

  const int64_t requests = fast ? 192 : 1024;
  const int64_t producers = 4;
  const std::vector<int64_t> worker_sweep =
      fast ? std::vector<int64_t>{1, 2, 4} : std::vector<int64_t>{1, 2, 4, 8};
  const std::vector<int64_t> batch_sweep =
      fast ? std::vector<int64_t>{1, 8} : std::vector<int64_t>{1, 4, 8};

  std::printf("\n%d requests, %d producer threads, quantized config, "
              "max_wait 500 us, %u hardware threads\n\n",
              static_cast<int>(requests), static_cast<int>(producers),
              std::thread::hardware_concurrency());
  std::printf("workers  max_batch  throughput(req/s)  p50(us)  p99(us)  rejected-retries\n");
  for (const int64_t workers : worker_sweep) {
    for (const int64_t max_batch : batch_sweep) {
      runtime::RuntimeOptions opts;
      opts.workers = workers;
      opts.max_batch = max_batch;
      opts.max_wait_us = 500;
      opts.queue_capacity = 64;
      const LoadResult r =
          drive_load(fw, task, opts, requests, producers, scenes);
      std::printf("%7d  %9d  %17.1f  %7.0f  %7.0f  %16d\n",
                  static_cast<int>(workers), static_cast<int>(max_batch),
                  static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                  r.total_us.p99, static_cast<int>(r.rejected));
    }
  }

  std::printf("\nbatching delay trade-off (workers 2, max_batch 8): p99 vs "
              "max_wait\n\n");
  std::printf("max_wait(us)  throughput(req/s)  p50(us)  p99(us)\n");
  const std::vector<int64_t> wait_sweep =
      fast ? std::vector<int64_t>{0, 5000} : std::vector<int64_t>{0, 1000, 5000, 20000};
  for (const int64_t max_wait : wait_sweep) {
    runtime::RuntimeOptions opts;
    opts.workers = 2;
    opts.max_batch = 8;
    opts.max_wait_us = max_wait;
    opts.queue_capacity = 64;
    const LoadResult r = drive_load(fw, task, opts, requests, producers, scenes);
    std::printf("%12d  %17.1f  %7.0f  %7.0f\n", static_cast<int>(max_wait),
                static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                r.total_us.p99);
  }

  bench::print_footer_note(
      "shape: throughput rises from 1 worker to the core count, then "
      "flattens; p99 grows with max_wait (requests idle while a batch stays "
      "open). F6 is the multi-core exception to the single-core bench "
      "budget — worker scaling is the subject.");
  return 0;
}
