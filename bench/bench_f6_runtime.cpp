// F6 — batched inference runtime: throughput and latency of the
// multi-threaded serving engine (src/runtime) over the deployed quantized
// configuration, swept across worker count × micro-batch size, plus the
// batching-delay/latency trade-off (p99 vs max_wait).
//
// NOTE: F6 is the one experiment that deliberately uses multiple cores —
// worker scaling is the subject. Everything else in the sweep stays on the
// single-core budget.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <string>

#include "bench/bench_util.h"
#include "runtime/exposition.h"
#include "runtime/server.h"
#include "runtime/trace.h"
#include "tensor/format.h"
#include "tensor/kernel_pool.h"
#include "tensor/profile.h"

namespace itask {
namespace {

struct LoadResult {
  double seconds = 0.0;
  int64_t completed = 0;
  int64_t rejected = 0;   // queue-full backpressure (producers retried)
  int64_t failed = 0;     // futures carrying an injected inference fault
  int64_t expired = 0;    // futures shed with DeadlineExceeded
  int64_t arena_overflows = 0;  // allocations that missed a worker's arena
  runtime::Histogram::Snapshot total_us;
  runtime::Histogram::Snapshot arena_used;  // per-group arena footprint
  // Per-stage latency breakdown from the stage timeline histograms.
  runtime::Histogram::Snapshot queue_wait_us;
  runtime::Histogram::Snapshot batch_formation_us;
  runtime::Histogram::Snapshot infer_us;
  std::string prometheus;  // exposition render of the run's final registry
};

/// Drives `requests` submissions from `producers` threads, retrying on
/// backpressure so every request eventually lands, and waits for all results
/// (a future may carry an exception on the degradation paths — counted, not
/// fatal). Scrapes go through the server's const metrics view — the same
/// read-only path a monitoring sidecar would use.
LoadResult drive_load(std::shared_ptr<const core::DeploymentSnapshot> snapshot,
                      kg::TaskId task, runtime::RuntimeOptions opts,
                      int64_t requests, int64_t producers,
                      const data::Dataset& scenes) {
  runtime::InferenceServer server(std::move(snapshot), opts);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::vector<std::future<runtime::InferenceResult>>> futures(
      static_cast<size_t>(producers));
  std::vector<std::thread> threads;
  const int64_t per_producer = requests / producers;
  for (int64_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int64_t i = 0; i < per_producer; ++i) {
        const int64_t scene = (p * per_producer + i) % scenes.size();
        while (true) {
          auto f = server.try_submit(scenes.scene(scene).image, task,
                                     core::ConfigKind::kQuantizedMultiTask);
          if (f.admitted()) {
            futures[static_cast<size_t>(p)].push_back(std::move(*f.future));
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& per : futures) {
    for (auto& f : per) {
      try {
        f.get();
      } catch (const std::exception&) {
        // failed/expired — tallied from the server counters below.
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  server.shutdown();

  const runtime::MetricsRegistry& metrics =
      static_cast<const runtime::InferenceServer&>(server).metrics();
  const runtime::RegistrySnapshot scrape = metrics.snapshot();
  const auto counter = [&scrape](const char* name) -> int64_t {
    for (const auto& [n, v] : scrape.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  const auto histogram =
      [&scrape](const std::string& name) -> runtime::Histogram::Snapshot {
    for (const auto& [n, s] : scrape.histograms) {
      if (n == name) return s;
    }
    return {};
  };
  LoadResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.completed = counter("requests_completed");
  r.rejected = counter("rejected_queue_full");
  r.failed = counter("requests_failed");
  r.expired = counter("requests_expired");
  r.arena_overflows = counter("arena_overflow_allocs");
  r.total_us = histogram("total_us");
  r.arena_used = histogram("arena_used_bytes");
  using runtime::Stage;
  using runtime::stage_histogram_name;
  r.queue_wait_us = histogram(stage_histogram_name(Stage::kQueueWait));
  r.batch_formation_us =
      histogram(stage_histogram_name(Stage::kBatchFormation));
  r.infer_us = histogram(stage_histogram_name(Stage::kInfer));
  r.prometheus = runtime::to_prometheus(runtime::collect(metrics));
  return r;
}

/// Exact percentile of a sample set (sorts a copy; bench-side only, unlike
/// the streaming bucketed quantiles the server reports).
double exact_percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace
}  // namespace itask

int main() {
  using namespace itask;
  const bool fast = std::getenv("ITASK_BENCH_FAST") != nullptr;
  bench::print_header(
      "F6", "inference runtime: throughput/latency vs workers × batch size");

  core::Framework fw(bench::experiment_options(/*seed=*/42));
  std::printf("[setup] training deployment (quantized configuration)...\n");
  fw.pretrain_teacher();
  const core::TaskHandle task = fw.define_task(data::task_by_id(1));
  fw.prepare_quantized();
  const auto snapshot = fw.publish();
  const data::Dataset scenes =
      bench::make_eval_set(fw.options(), /*scenes=*/32, /*seed=*/2024);

  const int64_t requests = fast ? 192 : 1024;
  const int64_t producers = 4;
  const std::vector<int64_t> worker_sweep =
      fast ? std::vector<int64_t>{1, 2, 4} : std::vector<int64_t>{1, 2, 4, 8};
  const std::vector<int64_t> batch_sweep =
      fast ? std::vector<int64_t>{1, 8} : std::vector<int64_t>{1, 4, 8};

  std::printf("\n%d requests, %d producer threads, quantized config, "
              "max_wait 500 us, %u hardware threads\n\n",
              static_cast<int>(requests), static_cast<int>(producers),
              std::thread::hardware_concurrency());
  struct SweepRow {
    int64_t workers = 0;
    int64_t max_batch = 0;
    LoadResult r;
  };
  std::vector<SweepRow> sweep_rows;
  std::printf("workers  max_batch  throughput(req/s)  p50(us)  p99(us)  rejected-retries\n");
  for (const int64_t workers : worker_sweep) {
    for (const int64_t max_batch : batch_sweep) {
      runtime::RuntimeOptions opts;
      opts.workers = workers;
      opts.max_batch = max_batch;
      opts.max_wait_us = 500;
      opts.queue_capacity = 64;
      LoadResult r =
          drive_load(snapshot, task.id, opts, requests, producers, scenes);
      std::printf("%7d  %9d  %17.1f  %7.0f  %7.0f  %16d\n",
                  static_cast<int>(workers), static_cast<int>(max_batch),
                  static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                  r.total_us.p99, static_cast<int>(r.rejected));
      sweep_rows.push_back({workers, max_batch, std::move(r)});
    }
  }

  std::printf("\nper-stage latency breakdown (same runs; stage timeline "
              "histograms)\n\n");
  std::printf("workers  max_batch  queue-wait p50/p99(us)  batch-form "
              "p50/p99(us)  infer p50/p99(us)\n");
  for (const SweepRow& row : sweep_rows) {
    std::printf("%7d  %9d  %11.0f / %7.0f  %11.0f / %7.0f  %7.0f / %7.0f\n",
                static_cast<int>(row.workers), static_cast<int>(row.max_batch),
                row.r.queue_wait_us.p50, row.r.queue_wait_us.p99,
                row.r.batch_formation_us.p50, row.r.batch_formation_us.p99,
                row.r.infer_us.p50, row.r.infer_us.p99);
  }

  std::printf("\nbatching delay trade-off (workers 2, max_batch 8): p99 vs "
              "max_wait\n\n");
  std::printf("max_wait(us)  throughput(req/s)  p50(us)  p99(us)\n");
  const std::vector<int64_t> wait_sweep =
      fast ? std::vector<int64_t>{0, 5000} : std::vector<int64_t>{0, 1000, 5000, 20000};
  for (const int64_t max_wait : wait_sweep) {
    runtime::RuntimeOptions opts;
    opts.workers = 2;
    opts.max_batch = 8;
    opts.max_wait_us = max_wait;
    opts.queue_capacity = 64;
    const LoadResult r =
        drive_load(snapshot, task.id, opts, requests, producers, scenes);
    std::printf("%12d  %17.1f  %7.0f  %7.0f\n", static_cast<int>(max_wait),
                static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                r.total_us.p99);
  }

  // Intra-kernel parallelism (this PR's pool): kernel_threads splits the
  // GEMM MC-slab loop once a micro-batch clears gemm::kKernelPoolMinRows
  // (= 256 rows, i.e. group size >= 26 at 10 rows/image). max_batch 8 stays
  // under the threshold — the pool must be a no-op there; max_batch 32
  // engages it. Results are bit-exact at any setting (test_runtime proves
  // it); this table shows only the wall-time effect.
  std::printf("\nintra-kernel parallelism (workers 2): kernel_threads x "
              "max_batch\n\n");
  std::printf("kernel_threads  max_batch  throughput(req/s)  p50(us)  "
              "p99(us)  infer p50(us)\n");
  for (const int64_t kernel_threads : {int64_t{0}, int64_t{2}, int64_t{4}}) {
    for (const int64_t max_batch : {int64_t{8}, int64_t{32}}) {
      runtime::RuntimeOptions opts;
      opts.workers = 2;
      opts.max_batch = max_batch;
      opts.max_wait_us = 500;
      opts.queue_capacity = 64;
      opts.kernel_threads = kernel_threads;
      const LoadResult r =
          drive_load(snapshot, task.id, opts, requests, producers, scenes);
      std::printf("%14d  %9d  %17.1f  %7.0f  %7.0f  %13.0f\n",
                  static_cast<int>(kernel_threads),
                  static_cast<int>(max_batch),
                  static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                  r.total_us.p99, r.infer_us.p50);
    }
  }
  // The pool is process-wide and outlives each server — return the rest of
  // the bench to the single-core kernel budget.
  gemm::KernelPool::instance().configure(0);

  // Allocation-free steady state (this PR): per-worker bump arenas sized by
  // DeploymentSnapshot::plan_workspace() absorb every hot-path intermediate.
  // The A/B isolates the allocator effect; the high-water column reports the
  // largest per-group arena footprint actually observed against the planned
  // capacity (overflows must be 0 — the plan covers the peak by
  // construction).
  std::printf("\narena A/B (workers 2): use_arena x max_batch\n\n");
  std::printf("arena  max_batch  throughput(req/s)  p50(us)  p99(us)  "
              "high-water(KiB)  planned(KiB)  overflows\n");
  for (const bool use_arena : {false, true}) {
    for (const int64_t max_batch : {int64_t{1}, int64_t{8}}) {
      runtime::RuntimeOptions opts;
      opts.workers = 2;
      opts.max_batch = max_batch;
      opts.max_wait_us = 500;
      opts.queue_capacity = 64;
      opts.use_arena = use_arena;
      const LoadResult r =
          drive_load(snapshot, task.id, opts, requests, producers, scenes);
      const double planned_kib =
          static_cast<double>(snapshot->plan_workspace(max_batch)) / 1024.0;
      std::printf("%5s  %9d  %17.1f  %7.0f  %7.0f  %15.1f  %12.1f  %9d\n",
                  use_arena ? "on" : "off", static_cast<int>(max_batch),
                  static_cast<double>(r.completed) / r.seconds, r.total_us.p50,
                  r.total_us.p99, r.arena_used.max / 1024.0, planned_kib,
                  static_cast<int>(r.arena_overflows));
    }
  }

  std::printf("\ngraceful degradation (workers 2, max_batch 4): seeded fault "
              "injection and per-request deadlines\n\n");
  std::printf("fault-period  deadline(us)  completed  failed  expired  p99(us)\n");
  struct DegradationCase {
    int64_t fault_period;  // fail every Nth group (0 = no faults)
    int64_t deadline_us;   // 0 = no deadline
  };
  const std::vector<DegradationCase> degradation_cases{
      {0, 0}, {16, 0}, {0, 4000}, {16, 4000}};
  for (const DegradationCase& c : degradation_cases) {
    runtime::RuntimeOptions opts;
    opts.workers = 2;
    opts.max_batch = 4;
    opts.max_wait_us = 500;
    opts.queue_capacity = 64;
    opts.deadline_us = c.deadline_us;
    if (c.fault_period > 0) {
      // Deterministic (keyed to submission order, not scheduling): a group
      // faults when its request-id range covers a multiple of the period, so
      // ~1/period of the traffic hits a fault however batches form.
      const int64_t period = c.fault_period;
      opts.fault_injector = [period](const runtime::FaultSite& site) {
        const int64_t next_multiple =
            ((site.first_request_id + period - 1) / period) * period;
        if (next_multiple < site.first_request_id + site.group_size) {
          throw std::runtime_error("F6 injected inference fault");
        }
      };
    }
    const LoadResult r =
        drive_load(snapshot, task.id, opts, requests, producers, scenes);
    std::printf("%12d  %12d  %9d  %6d  %7d  %7.0f\n",
                static_cast<int>(c.fault_period),
                static_cast<int>(c.deadline_us), static_cast<int>(r.completed),
                static_cast<int>(r.failed), static_cast<int>(r.expired),
                r.total_us.p99);
  }

  // Kernel attribution: the same tensor/profile.h hooks bench_k0 uses, here
  // under real serving load — where the wall time inside infer goes
  // (pack / micro-kernel / quantize / dequantize).
  std::printf("\nkernel profile attribution (workers 2, max_batch 8, "
              "profiling hooks enabled)\n\n");
  {
    profile::reset();
    profile::set_enabled(true);
    runtime::RuntimeOptions opts;
    opts.workers = 2;
    opts.max_batch = 8;
    opts.max_wait_us = 500;
    opts.queue_capacity = 64;
    const LoadResult r =
        drive_load(snapshot, task.id, opts, requests, producers, scenes);
    profile::set_enabled(false);
    const std::vector<profile::SectionStats> sections = profile::snapshot();
    int64_t total_ns = 0;
    for (const profile::SectionStats& s : sections) total_ns += s.total_ns;
    std::printf("%-16s %12s %12s %7s\n", "section", "calls", "ms", "share%");
    for (const profile::SectionStats& s : sections) {
      std::printf("%-16s %12s %12.2f %7.1f\n", s.name,
                  fmt::i64(s.calls).c_str(),
                  static_cast<double>(s.total_ns) * 1e-6,
                  total_ns > 0
                      ? 100.0 * static_cast<double>(s.total_ns) /
                            static_cast<double>(total_ns)
                      : 0.0);
    }
    std::printf("throughput with hooks on: %.1f req/s\n",
                static_cast<double>(r.completed) / r.seconds);
    profile::reset();
  }

  // Live onboarding: a client streams requests for the already-deployed
  // task while two new tasks are onboarded end to end (define → distil →
  // publish → install). The phase-tagged latency table shows the swap
  // itself is free: zero requests fail, each new task serves the moment
  // its snapshot lands, and latency recovers to steady state right after
  // the install (the "during" rows are elevated only because distillation
  // shares the CPU with the workers, not because of the snapshot swap).
  std::printf("\nlive onboarding (workers 2, max_batch 4): latency "
              "before/during/after each publish\n\n");
  {
    runtime::RuntimeOptions opts;
    opts.workers = 2;
    opts.max_batch = 4;
    opts.max_wait_us = 500;
    opts.queue_capacity = 64;
    runtime::InferenceServer server(fw.publish(), opts);

    static constexpr const char* kPhaseNames[] = {
        "steady (v_base)",     "during onboard #1", "after install #1",
        "during onboard #2",   "after install #2"};
    constexpr int kPhases = 5;
    std::atomic<int> phase{0};
    std::atomic<bool> stop{false};
    struct Tagged {
      std::future<runtime::InferenceResult> future;
      int phase = 0;
    };
    std::vector<Tagged> tagged;
    // The streaming client touches only the server; the Framework trains on
    // this thread concurrently.
    std::thread streamer([&] {
      int64_t i = 0;
      while (!stop.load()) {
        auto f = server.try_submit(scenes.scene(i % scenes.size()).image,
                                   task.id,
                                   core::ConfigKind::kQuantizedMultiTask);
        if (f.admitted()) {
          tagged.push_back(Tagged{std::move(*f.future), phase.load()});
        } else {
          std::this_thread::yield();
        }
        ++i;
      }
    });

    const auto steady_window = std::chrono::milliseconds(fast ? 150 : 400);
    std::this_thread::sleep_for(steady_window);
    for (const int64_t library_task : {2, 3}) {
      phase.fetch_add(1);  // during onboard
      core::TaskHandle onboarding = fw.define_task(data::task_by_id(library_task));
      fw.prepare_task_specific(onboarding);
      server.install_snapshot(fw.publish());
      // New task serves immediately — first request right after install.
      // (Retry on queue-full only: the streamer keeps the queue busy;
      // admission accepts the new task from the very first attempt.)
      auto f = server.try_submit(scenes.scene(0).image, onboarding.id,
                                 core::ConfigKind::kTaskSpecific);
      while (!f.admitted()) {
        std::this_thread::yield();
        f = server.try_submit(scenes.scene(0).image, onboarding.id,
                              core::ConfigKind::kTaskSpecific);
      }
      const int64_t first_version = f.future->get().snapshot_version;
      std::printf("  [%s] immediately servable on snapshot v%s\n",
                  onboarding.spec.name.c_str(),
                  fmt::i64(first_version).c_str());
      phase.fetch_add(1);  // after install
      std::this_thread::sleep_for(steady_window);
    }
    stop.store(true);
    streamer.join();
    server.shutdown();

    std::vector<std::vector<double>> per_phase(kPhases);
    int64_t stream_failures = 0;
    for (Tagged& t : tagged) {
      try {
        const runtime::InferenceResult r = t.future.get();
        per_phase[static_cast<size_t>(t.phase)].push_back(r.total_us);
      } catch (const std::exception&) {
        ++stream_failures;
      }
    }
    std::printf("\n%-20s %9s %9s %9s\n", "phase", "requests", "p50(us)",
                "p99(us)");
    for (int p = 0; p < kPhases; ++p) {
      const auto& samples = per_phase[static_cast<size_t>(p)];
      std::printf("%-20s %9s %9.0f %9.0f\n", kPhaseNames[p],
                  fmt::i64(static_cast<int64_t>(samples.size())).c_str(),
                  exact_percentile(samples, 0.50),
                  exact_percentile(samples, 0.99));
    }
    const runtime::RegistrySnapshot scrape =
        static_cast<const runtime::InferenceServer&>(server)
            .metrics()
            .snapshot();
    const auto counter = [&scrape](const char* name) -> int64_t {
      for (const auto& [n, v] : scrape.counters) {
        if (n == name) return v;
      }
      return 0;
    };
    std::printf("\nstream futures carrying exceptions: %s (must be 0)\n",
                fmt::i64(stream_failures).c_str());
    std::printf("snapshots_published %s, tasks_onboarded %s, "
                "requests_failed %s, requests_invalid %s\n",
                fmt::i64(counter("snapshots_published")).c_str(),
                fmt::i64(counter("tasks_onboarded")).c_str(),
                fmt::i64(counter("requests_failed")).c_str(),
                fmt::i64(counter("requests_invalid")).c_str());
  }

  // Exposition sample: what a scrape of the serving registry looks like
  // (bucket series elided for brevity — the quantile/count/sum lines carry
  // the table above in machine-readable form).
  std::printf("\nprometheus exposition sample (last sweep point, "
              "_bucket series elided)\n\n");
  {
    const std::string& text = sweep_rows.back().r.prometheus;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      const std::string line = text.substr(pos, nl - pos);
      if (line.find("_bucket{") == std::string::npos) {
        std::printf("  %s\n", line.c_str());
      }
      pos = nl + 1;
    }
  }

  bench::print_footer_note(
      "shape: throughput rises from 1 worker to the core count, then "
      "flattens; p99 grows with max_wait (requests idle while a batch stays "
      "open). Per-stage breakdown: queue-wait dominates total latency when "
      "workers are scarce and shrinks as workers grow; batch-formation stays "
      "small (stacking only); infer grows mildly with max_batch. Degradation "
      "table: completed + failed + expired == admitted requests (no request "
      "lost or hung); injected faults surface on the affected futures only, "
      "and a deadline converts queue-growth overload into bounded-latency "
      "shedding. Kernel attribution: int8 micro-kernel holds the largest "
      "share, pack/quantize/dequantize the rest. Live onboarding: zero "
      "stream failures across both publishes, each onboarded task serves "
      "from the first post-install request, and p50/p99 return to "
      "steady-state level in the after-install phases — the 'during' rows "
      "run hot only because distillation shares the CPU with the workers "
      "(the snapshot swap itself is one pointer move). Intra-kernel table: "
      "kernel_threads is a no-op at max_batch 8 (groups stay under the "
      "256-row pool threshold) and helps, if at all, only the infer span at "
      "max_batch 32 — with 2 workers already sharing the cores, extra lanes "
      "contend, so throughput gains are modest-to-none on this machine "
      "(results stay bit-exact regardless). Arena A/B: arena-on throughput/"
      "p99 is no worse than arena-off (models this tiny spend most of infer "
      "in arithmetic, so the win is modest but the variance tightens), "
      "high-water <= planned capacity, and overflows are exactly 0 — the "
      "plan_workspace measurement covers the serving peak. F6 is the "
      "multi-core exception to the single-core bench budget — worker and "
      "kernel-lane scaling is the subject.");
  return 0;
}
