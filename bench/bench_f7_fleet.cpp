// F7 — sharded serving fleet: goodput and tail latency of N InferenceServer
// shards behind the rendezvous task-affinity router (src/runtime/fleet),
// driven by the open-loop generator (src/runtime/loadgen). Sweeps shards ×
// replication under zipf task popularity, shows per-tenant quota fairness, a
// mission-switch storm, and the staged snapshot rollout with an injected
// mid-rollout shard failure + resume. All observability flows through the
// merged Prometheus scrape (per-shard registries + fleet registry).
//
// NOTE: F7, like F6, deliberately uses multiple cores — shard scaling is the
// subject. Everything else in the sweep stays on the single-core budget.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/exposition.h"
#include "runtime/fleet.h"
#include "runtime/loadgen.h"
#include "tensor/format.h"

namespace itask {
namespace {

struct FleetLoad {
  double seconds = 0.0;
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t queue_full = 0;      // shed (open loop: no retry)
  int64_t quota_rejected = 0;  // shed by per-tenant admission quotas
  int64_t failovers = 0;       // replica rotations past a full shard
  int64_t shard_min = 0;       // lightest shard's admitted requests
  int64_t shard_max = 0;       // heaviest shard's admitted requests
  runtime::Histogram::Snapshot total_us;  // merged across all shards
  std::string prometheus;                 // merged fleet scrape
};

/// Replays an open-loop schedule against a fleet: each request is submitted
/// at its arrival time and NEVER retried — a rejection is lost goodput, the
/// honest overload picture. Latency comes from the merged shard histograms,
/// i.e. the same numbers a monitoring scrape would see.
FleetLoad drive_fleet(std::shared_ptr<const core::DeploymentSnapshot> snapshot,
                      const std::vector<core::TaskHandle>& tasks,
                      runtime::FleetOptions options,
                      const std::vector<runtime::GeneratedRequest>& schedule,
                      const data::Dataset& scenes) {
  runtime::InferenceFleet fleet(std::move(snapshot), std::move(options));
  std::vector<std::future<runtime::InferenceResult>> futures;
  futures.reserve(schedule.size());
  const auto start = std::chrono::steady_clock::now();
  for (const runtime::GeneratedRequest& req : schedule) {
    std::this_thread::sleep_until(start +
                                  std::chrono::microseconds(req.arrival_us));
    auto r = fleet.try_submit(
        scenes.scene(req.scene % scenes.size()).image,
        tasks[static_cast<size_t>(req.task_index)].id,
        core::ConfigKind::kQuantizedMultiTask, req.tenant);
    if (r.admitted()) futures.push_back(std::move(*r.future));
  }
  for (auto& f : futures) f.get();
  const auto end = std::chrono::steady_clock::now();
  fleet.shutdown();

  const runtime::RegistrySnapshot merged = fleet.merged_metrics();
  const auto counter = [&merged](const char* name) -> int64_t {
    for (const auto& [n, v] : merged.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  FleetLoad r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.offered = static_cast<int64_t>(schedule.size());
  r.completed = counter("requests_completed");
  r.queue_full = counter("fleet_rejected_queue_full");
  r.quota_rejected = counter("fleet_quota_rejected");
  r.failovers = counter("fleet_failovers");
  for (const auto& [n, s] : merged.histograms) {
    if (n == "total_us") r.total_us = s;
  }
  r.shard_min = INT64_MAX;
  for (int64_t s = 0; s < fleet.shard_count(); ++s) {
    const int64_t admitted =
        fleet.shard(s).metrics().counter("requests_submitted").value();
    r.shard_min = std::min(r.shard_min, admitted);
    r.shard_max = std::max(r.shard_max, admitted);
  }
  r.prometheus = runtime::to_prometheus(runtime::ExpositionData{merged, {}});
  return r;
}

}  // namespace
}  // namespace itask

int main() {
  using namespace itask;
  const bool fast = std::getenv("ITASK_BENCH_FAST") != nullptr;
  bench::print_header(
      "F7", "sharded fleet: goodput/latency vs shards × replication");

  core::Framework fw(bench::experiment_options(/*seed=*/43));
  std::printf("[setup] training deployment (quantized configuration, 4 "
              "missions)...\n");
  fw.pretrain_teacher();
  std::vector<core::TaskHandle> tasks;
  for (const int64_t library_task : {1, 2, 3, 4}) {
    tasks.push_back(fw.define_task(data::task_by_id(library_task)));
  }
  fw.prepare_quantized();
  const auto snapshot = fw.publish();
  const data::Dataset scenes =
      bench::make_eval_set(fw.options(), /*scenes=*/32, /*seed=*/2025);

  runtime::LoadGenOptions load;
  load.requests = fast ? 192 : 768;
  load.rate_rps = fast ? 800.0 : 1500.0;
  load.tasks = static_cast<int64_t>(tasks.size());
  load.zipf_s = 1.1;
  load.tenants = 4;
  load.scenes = scenes.size();

  const std::vector<int64_t> shard_sweep =
      fast ? std::vector<int64_t>{1, 2} : std::vector<int64_t>{1, 2, 4};
  const std::vector<int64_t> replication_sweep{1, 2};
  std::printf("\n%d requests open-loop at %.0f req/s (poisson, zipf %.1f "
              "over %d missions), workers/shard 2, %u hardware threads\n\n",
              static_cast<int>(load.requests), load.rate_rps, load.zipf_s,
              static_cast<int>(load.tasks),
              std::thread::hardware_concurrency());
  std::printf("shards  repl  goodput(req/s)  shed  p50(us)  p99(us)  "
              "failovers  shard-load(min..max)\n");
  FleetLoad last;
  for (const int64_t shards : shard_sweep) {
    for (const int64_t replication : replication_sweep) {
      runtime::FleetOptions fo;
      fo.shards = shards;
      fo.replication = replication;  // clamped to shards when it exceeds them
      fo.shard_options.workers = 2;
      fo.shard_options.max_batch = 4;
      fo.shard_options.max_wait_us = 300;
      fo.shard_options.queue_capacity = 64;
      // Identical offered traffic for every fleet geometry: same seed, same
      // options, same schedule.
      Rng rng(4242);
      const auto schedule = runtime::generate_schedule(load, rng);
      const FleetLoad r = drive_fleet(snapshot, tasks, fo, schedule, scenes);
      std::printf("%6d  %4d  %14.1f  %4d  %7.0f  %7.0f  %9d  %9s..%s\n",
                  static_cast<int>(shards), static_cast<int>(replication),
                  static_cast<double>(r.completed) / r.seconds,
                  static_cast<int>(r.offered - r.completed), r.total_us.p50,
                  r.total_us.p99, static_cast<int>(r.failovers),
                  fmt::i64(r.shard_min).c_str(), fmt::i64(r.shard_max).c_str());
      last = r;
    }
  }

  // Mission-switch storm (F4's scenario at fleet scale): the hottest task
  // rotates every storm period, so the zipf head slams a different shard's
  // affinity set each window.
  std::printf("\nmission-switch storm (shards %d, repl 1): hottest mission "
              "rotates every storm period\n\n",
              static_cast<int>(shard_sweep.back()));
  std::printf("storm-period(ms)  goodput(req/s)  shed  p99(us)\n");
  for (const int64_t storm_ms : {int64_t{0}, int64_t{100}}) {
    runtime::LoadGenOptions storm = load;
    storm.zipf_s = 1.5;
    storm.storm_period_us = storm_ms * 1000;
    runtime::FleetOptions fo;
    fo.shards = shard_sweep.back();
    fo.shard_options.workers = 2;
    fo.shard_options.max_batch = 4;
    fo.shard_options.max_wait_us = 300;
    fo.shard_options.queue_capacity = 64;
    Rng rng(4242);
    const auto schedule = runtime::generate_schedule(storm, rng);
    const FleetLoad r = drive_fleet(snapshot, tasks, fo, schedule, scenes);
    std::printf("%16s  %14.1f  %4d  %7.0f\n",
                storm_ms == 0 ? "off" : fmt::i64(storm_ms).c_str(),
                static_cast<double>(r.completed) / r.seconds,
                static_cast<int>(r.offered - r.completed), r.total_us.p99);
  }

  // Per-tenant admission quotas: tenant 0 floods (8 attempts per round),
  // tenants 1 and 2 trickle (1 each). With quotas off the flood takes the
  // whole admission share; with tenant_quota 3 per 10-attempt window the
  // flood is capped and light tenants land every attempt.
  std::printf("\nper-tenant quota fairness (shards 2): 10 rounds of "
              "[t0 x8, t1, t2] per window\n\n");
  std::printf("quota  tenant  attempts  admitted  quota-rejected\n");
  for (const int64_t quota : {int64_t{0}, int64_t{3}}) {
    runtime::FleetOptions fo;
    fo.shards = 2;
    fo.tenant_quota = quota;
    fo.quota_window = 10;
    fo.shard_options.workers = 2;
    fo.shard_options.max_batch = 4;
    fo.shard_options.max_wait_us = 300;
    fo.shard_options.queue_capacity = 256;  // isolate quota from backpressure
    runtime::InferenceFleet fleet(snapshot, fo);
    std::vector<int64_t> attempts(3, 0), admitted(3, 0), rejected(3, 0);
    std::vector<std::future<runtime::InferenceResult>> futures;
    for (int64_t round = 0; round < 10; ++round) {
      std::vector<int64_t> round_tenants(8, 0);
      round_tenants.push_back(1);
      round_tenants.push_back(2);
      for (const int64_t tenant : round_tenants) {
        ++attempts[static_cast<size_t>(tenant)];
        auto r = fleet.try_submit(
            scenes.scene(round % scenes.size()).image,
            tasks[static_cast<size_t>(round % 4)].id,
            core::ConfigKind::kQuantizedMultiTask, tenant);
        if (r.admitted()) {
          ++admitted[static_cast<size_t>(tenant)];
          futures.push_back(std::move(*r.future));
        } else if (r.reject == runtime::RejectReason::kTenantQuota) {
          ++rejected[static_cast<size_t>(tenant)];
        }
      }
    }
    for (auto& f : futures) f.get();
    fleet.shutdown();
    for (int64_t tenant = 0; tenant < 3; ++tenant) {
      std::printf("%5s  %6d  %8d  %8d  %14d\n",
                  quota == 0 ? "off" : fmt::i64(quota).c_str(),
                  static_cast<int>(tenant),
                  static_cast<int>(attempts[static_cast<size_t>(tenant)]),
                  static_cast<int>(admitted[static_cast<size_t>(tenant)]),
                  static_cast<int>(rejected[static_cast<size_t>(tenant)]));
    }
  }

  // Staged rollout with an injected mid-rollout shard failure: onboarding a
  // fifth mission publishes v2; the rollout stops at the failing shard
  // (earlier shards keep v2, later shards keep serving v1 — the version-skew
  // tolerance contract makes the mixed state safe), and a retry of the same
  // snapshot resumes at the failed shard.
  std::printf("\nstaged rollout (shards 3): injected install failure on "
              "shard 1, then resume\n\n");
  {
    runtime::FleetOptions fo;
    fo.shards = 3;
    fo.shard_options.workers = 1;
    int64_t injected = 0;
    fo.rollout_hook = [&injected](int64_t shard, int64_t /*version*/) {
      if (shard == 1 && injected++ == 0) {
        throw std::runtime_error("F7 injected shard install failure");
      }
    };
    runtime::InferenceFleet fleet(snapshot, fo);
    const core::TaskHandle onboarded = fw.define_task(data::task_by_id(5));
    const auto next = fw.publish();
    const auto print_versions = [&fleet] {
      std::printf("  shard versions:");
      for (const int64_t v : fleet.shard_versions()) {
        std::printf(" v%s", fmt::i64(v).c_str());
      }
      std::printf("\n");
    };
    const runtime::RolloutResult first = fleet.install_snapshot(next);
    std::printf("  pass 1: installed %s shard(s), failed at shard %s (%s)\n",
                fmt::i64(first.installed).c_str(),
                fmt::i64(first.failed_shard).c_str(), first.error.c_str());
    print_versions();
    // Mid-rollout, mixed versions keep serving: old missions everywhere,
    // the onboarded one wherever its replica already took v2.
    auto old_mission = fleet.try_submit(
        scenes.scene(0).image, tasks[0].id,
        core::ConfigKind::kQuantizedMultiTask);
    old_mission.future->get();
    std::printf("  mid-rollout: mission 1 served on mixed versions, "
                "onboarded mission routable on %s\n",
                fleet.router().replicas(onboarded.id)[0] <= first.installed - 1
                    ? "its updated replica"
                    : "no replica yet (admission refuses it)");
    const runtime::RolloutResult second = fleet.install_snapshot(next);
    std::printf("  pass 2 (retry): skipped %s current shard(s), installed "
                "%s, complete=%s\n",
                fmt::i64(second.already_current).c_str(),
                fmt::i64(second.installed).c_str(),
                second.complete() ? "yes" : "no");
    print_versions();
    auto now_served = fleet.try_submit(
        scenes.scene(0).image, onboarded.id,
        core::ConfigKind::kQuantizedMultiTask);
    std::printf("  onboarded mission [%s] serves on snapshot v%s\n",
                onboarded.spec.name.c_str(),
                fmt::i64(now_served.future->get().snapshot_version).c_str());
    fleet.shutdown();
  }

  // One scrape for the whole fleet: the merged registry (fleet_ counters +
  // summed shard counters + bucket-merged histograms) through the existing
  // Prometheus exposition (bucket series elided for brevity).
  std::printf("\nmerged prometheus exposition sample (last sweep point, "
              "_bucket series elided)\n\n");
  {
    size_t pos = 0;
    while (pos < last.prometheus.size()) {
      size_t nl = last.prometheus.find('\n', pos);
      if (nl == std::string::npos) nl = last.prometheus.size();
      const std::string line = last.prometheus.substr(pos, nl - pos);
      if (line.find("_bucket{") == std::string::npos) {
        std::printf("  %s\n", line.c_str());
      }
      pos = nl + 1;
    }
  }

  bench::print_footer_note(
      "shape: goodput tracks the offered rate whenever the fleet has "
      "headroom; the 1-shard row is the most queue-bound point — highest "
      "p99, and the first to shed (fleet_rejected_queue_full > 0) once the "
      "offered rate exceeds single-shard capacity (on a single-core host "
      "these tiny models keep up, so shed stays 0 and only p99 shows the "
      "pressure). Replication 2 narrows the shard-load spread under zipf "
      "popularity (the hot mission's traffic splits across two replicas) and "
      "absorbs bursts via failover, at the cost of a colder per-shard cache "
      "— on these tiny models that cost is invisible, so goodput/p99 stays "
      "comparable to replication 1. The storm row leaves goodput and p99 "
      "essentially unchanged: rendezvous placement moves each mission's "
      "traffic wholesale to its replica set, so a rotating hot mission "
      "changes WHICH shard is busy, not how busy the fleet is. Quota "
      "table: with quotas off the flooding "
      "tenant takes every admission slot it asks for; with tenant_quota 3 "
      "per 10-attempt window its admissions cap at ~3 per window while the "
      "light tenants' attempts all land (quota-rejected counts the flood's "
      "excess only). Rollout: pass 1 reports the injected failure with "
      "earlier shards already on v2 and later shards still on v1 — serving "
      "never pauses, detections stay element-wise identical on both versions "
      "(test_runtime asserts this) — and pass 2 skips current shards and "
      "completes. Fleet detections are element-wise identical to the serial "
      "pipeline at every geometry (determinism contract; asserted in "
      "test_runtime, not timed here). F7, like F6, is the multi-core "
      "exception to the single-core bench budget — shard scaling is the "
      "subject.");
  return 0;
}
