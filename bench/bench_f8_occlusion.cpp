// F8 — occlusion-robust collaborative inference (extension).
//
// The abstract's "complex, real-world environments" include partially
// occluded targets; single-view detection under occlusion is the canonical
// failure mode collaborative (multi-view) perception addresses. This bench
// measures (a) how both deployable configurations degrade as seeded partial
// occlusion strengthens, (b) how much K-view fusion recovers at a fixed
// severity, and (c) what the scatter/gather group-request path costs in
// serving latency versus a single-view request — plus a hard element-wise
// identity check: the fused detections must be identical whether fusion runs
// serially outside the runtime, on one InferenceServer, or on a sharded
// InferenceFleet.
//
// Multi-core by design, like F6/F7 (the serving engine is the subject).
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "detect/fusion.h"
#include "detect/metrics.h"
#include "runtime/fleet.h"

using namespace itask;

namespace {

/// Returns a copy of `eval` with seeded partial occlusion burned into every
/// scene's pixels (ground truth untouched — same contract as F5's noise).
data::Dataset with_occlusion(const data::Dataset& eval, float severity,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Scene> scenes = eval.scenes();
  data::OcclusionOptions occ;
  occ.severity = severity;
  for (data::Scene& scene : scenes) data::apply_occlusion(scene, occ, rng);
  return data::Dataset(std::move(scenes));
}

/// K *independently occluded* views of one clean scene: each view applies
/// apply_occlusion with its own seed, so a different part of each object is
/// hidden per view — the multi-camera vantage diversity collaborative
/// fusion exists to exploit. (Same-image-plus-noise views would carry the
/// SAME occlusion in every view; fusion could denoise but never
/// de-occlude.) Deterministic in (scene, k, severity, seed).
std::vector<Tensor> occluded_views(const data::Scene& scene, int64_t k,
                                   float severity, uint64_t seed) {
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(k));
  data::OcclusionOptions occ;
  occ.severity = severity;
  for (int64_t v = 0; v < k; ++v) {
    data::Scene view(scene);
    Rng rng(seed + static_cast<uint64_t>(v));
    data::apply_occlusion(view, occ, rng);
    out.push_back(std::move(view.image));
  }
  return out;
}

/// Serial K-view fusion over the clean dataset: per scene, K independently
/// occluded views → per-view detect → fuse. Returns fused per-scene
/// detections.
std::vector<std::vector<detect::Detection>> fuse_dataset(
    core::Framework& fw, const data::Dataset& eval,
    const core::TaskHandle& task, core::ConfigKind config, int64_t k,
    float severity, uint64_t seed, const detect::FusionOptions& fusion) {
  std::vector<std::vector<detect::Detection>> fused;
  fused.reserve(static_cast<size_t>(eval.size()));
  for (int64_t i = 0; i < eval.size(); ++i) {
    const auto views = occluded_views(eval.scene(i), k, severity,
                                      seed + 100u * static_cast<uint64_t>(i));
    std::vector<std::vector<detect::Detection>> per_view;
    per_view.reserve(views.size());
    for (const Tensor& v : views) per_view.push_back(fw.detect(v, task, config));
    fused.push_back(detect::fuse_views(per_view, fusion));
  }
  return fused;
}

bool same_detections(const std::vector<detect::Detection>& a,
                     const std::vector<detect::Detection>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].cell != b[i].cell ||
        a[i].predicted_class != b[i].predicted_class ||
        a[i].objectness != b[i].objectness ||
        a[i].task_score != b[i].task_score ||
        a[i].confidence != b[i].confidence ||
        a[i].box.cx != b[i].box.cx || a[i].box.cy != b[i].box.cy ||
        a[i].box.w != b[i].box.w || a[i].box.h != b[i].box.h) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const bool fast = std::getenv("ITASK_BENCH_FAST") != nullptr;
  bench::print_header(
      "F8 (figure): occlusion robustness via K-view collaborative fusion "
      "(extension)",
      "multi-view group requests recover accuracy lost to partial occlusion");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("pretraining teacher + both configurations…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();
  const data::TaskSpec& spec = data::task_by_id(1);  // surgical_sharps
  core::TaskHandle task = fw.define_task(spec);
  fw.prepare_task_specific(task);

  const int64_t eval_scenes = fast ? 32 : 96;
  const data::Dataset clean = bench::make_eval_set(options, eval_scenes,
                                                   8675309);
  const auto truth = core::Framework::ground_truth(clean, spec);
  // Require 2-view support (clamped to K for K = 1): at a fixed operating
  // point every detection counts, so keeping single-view phantoms — however
  // down-weighted — only adds false positives. Collaborative perception
  // keeps what at least two views agree on.
  detect::FusionOptions fusion;
  fusion.min_views = 2;

  // --- (a) single-view accuracy vs occlusion severity, both configs ------
  std::printf("\n[A] single-view accuracy vs occlusion severity (task \"%s\")\n",
              spec.name.c_str());
  std::printf("%8s | %16s | %16s\n", "severity", "task-specific F1",
              "quantized F1");
  const std::vector<float> severities =
      fast ? std::vector<float>{0.0f, 0.5f}
           : std::vector<float>{0.0f, 0.2f, 0.35f, 0.5f, 0.65f};
  for (float severity : severities) {
    const data::Dataset occluded =
        with_occlusion(clean, severity,
                       91u + static_cast<uint64_t>(severity * 1000));
    const auto ts =
        fw.evaluate(occluded, task, core::ConfigKind::kTaskSpecific);
    const auto q =
        fw.evaluate(occluded, task, core::ConfigKind::kQuantizedMultiTask);
    std::printf("%8.2f | %16.3f | %16.3f\n", severity, ts.f1, q.f1);
  }

  // --- (b) fused accuracy vs K at fixed severity -------------------------
  const float kSeverity = 0.5f;
  std::printf("\n[B] K-view fused accuracy at severity %.2f "
              "(serial fusion, independently occluded views)\n",
              kSeverity);
  std::printf("%8s | %16s | %16s\n", "K", "task-specific F1", "quantized F1");
  const std::vector<int64_t> ks = fast ? std::vector<int64_t>{1, 3}
                                       : std::vector<int64_t>{1, 3, 5};
  for (int64_t k : ks) {
    const auto ts_fused =
        fuse_dataset(fw, clean, task, core::ConfigKind::kTaskSpecific, k,
                     kSeverity, 7000, fusion);
    const auto q_fused =
        fuse_dataset(fw, clean, task, core::ConfigKind::kQuantizedMultiTask,
                     k, kSeverity, 7000, fusion);
    std::printf("%8lld | %16.3f | %16.3f\n", static_cast<long long>(k),
                detect::evaluate(ts_fused, truth).f1,
                detect::evaluate(q_fused, truth).f1);
  }

  // --- (c) serving: group requests vs single requests + identity check ---
  const auto snapshot = fw.publish();
  const int64_t lat_scenes = fast ? 8 : 24;
  constexpr int64_t kViews = 3;
  const core::ConfigKind config = core::ConfigKind::kQuantizedMultiTask;

  runtime::RuntimeOptions ro;
  ro.workers = 2;
  ro.max_batch = 4;
  ro.max_wait_us = 200;
  ro.fusion = fusion;

  // Serial reference: the fused detections every serving path must match —
  // built from the same (scene, K, severity, seed) views the groups carry.
  const auto serial_fused =
      fuse_dataset(fw, clean, task, config, kViews, kSeverity, 7000, fusion);
  const data::Dataset occluded = with_occlusion(clean, kSeverity, 91u + 500u);

  double single_us = 0.0;
  double group_us = 0.0;
  double fuse_us = 0.0;
  std::vector<std::vector<detect::Detection>> server_fused;
  {
    runtime::InferenceServer server(snapshot, ro);
    for (int64_t i = 0; i < lat_scenes; ++i) {
      auto s = server.try_submit(occluded.scene(i).image, task, config);
      if (s.admitted()) single_us += s.future->get().total_us;
      auto g = server.try_submit_group(
          occluded_views(clean.scene(i), kViews, kSeverity,
                         7000 + 100u * static_cast<uint64_t>(i)),
          task, config);
      if (g.admitted()) {
        auto r = g.future->get();
        group_us += r.total_us;
        fuse_us += r.fuse_us;
        server_fused.push_back(std::move(r.fused));
      }
    }
    server.shutdown();
  }

  std::vector<std::vector<detect::Detection>> fleet_fused;
  {
    runtime::FleetOptions fo;
    fo.shards = 2;
    fo.replication = 2;
    fo.shard_options = ro;
    runtime::InferenceFleet fleet(snapshot, fo);
    std::vector<std::future<runtime::GroupInferenceResult>> futures;
    for (int64_t i = 0; i < lat_scenes; ++i) {
      auto g = fleet.try_submit_group(
          occluded_views(clean.scene(i), kViews, kSeverity,
                         7000 + 100u * static_cast<uint64_t>(i)),
          task, config);
      if (g.admitted()) futures.push_back(std::move(*g.future));
    }
    for (auto& f : futures) fleet_fused.push_back(f.get().fused);
    fleet.shutdown();
  }

  const double n = static_cast<double>(lat_scenes);
  std::printf("\n[C] serving latency, %lld requests each "
              "(quantized config, 2 workers)\n",
              static_cast<long long>(lat_scenes));
  std::printf("%-28s | %12s\n", "path", "mean us/req");
  std::printf("%-28s | %12.1f\n", "single view (try_submit)", single_us / n);
  std::printf("%-28s | %12.1f\n", "K=3 group (try_submit_group)",
              group_us / n);
  std::printf("%-28s | %12.1f\n", "  of which gather fusion", fuse_us / n);

  // Identity: fleet (2 shards) == single server == serial fusion, all
  // element-wise. A mismatch is a correctness failure, not a perf shape.
  bool identical = server_fused.size() == static_cast<size_t>(lat_scenes) &&
                   fleet_fused.size() == static_cast<size_t>(lat_scenes);
  for (size_t i = 0; identical && i < server_fused.size(); ++i) {
    identical = same_detections(server_fused[i], serial_fused[i]) &&
                same_detections(fleet_fused[i], serial_fused[i]);
  }
  std::printf("\nfused identity (serial == server == 2-shard fleet): %s\n",
              identical ? "PASS" : "FAIL");

  bench::print_footer_note(
      "shape: [A] both configurations degrade monotonically with severity "
      "(truncation + overlap erase the pixel cues attributes ground to). "
      "[B] each view hides a DIFFERENT part of each object (independent "
      "occlusion seeds), so fusion with 2-view agreement recovers the "
      "TASK-SPECIFIC configuration substantially at K=3 (an object lost in "
      "one view survives in another; phantoms rarely repeat across views) "
      "— but DEGRADES the quantized configuration, whose per-view recall "
      "under heavy occlusion is too low for the same object to clear the "
      "threshold in two views. Multi-view agreement needs per-view "
      "competence; same-image-plus-noise views would show no recovery at "
      "all (fusion cannot de-occlude without vantage diversity). [C] a K=3 "
      "group costs far less than 3x a single request (its views share one "
      "micro-batch) and gather fusion is microseconds — the scatter/gather "
      "API's overhead is admission + fan-out, not fusion. The identity "
      "line must PASS: fusion is deterministic and placement-independent "
      "at any shard count.");
  if (!identical) return 1;
  return 0;
}
