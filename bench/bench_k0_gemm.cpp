// K0 — GEMM kernel layer: old (naive triple-loop) vs new (blocked, packed)
// vs prepacked (weights packed once, as Framework::publish() does for every
// serving model) GFLOP/s on the exact shapes the deployable models emit —
// qkv/proj/fc1/fc2/patch-embed/head weight GEMMs and the attention
// activation bmms at the student (d40) and teacher (d64) widths, batch 1–32,
// fp32 and INT8. The prepacked column exists only for the weight GEMMs
// (fp32_bt / int8_bt, one weight matrix per call) — activation bmms have no
// publish-time weight to prepack.
//
// Every case is parity-checked (packed vs naive, and prepacked bit-exact vs
// packed where it applies) before it is timed; a mismatch fails the run
// (nonzero exit), which is what the ctest smoke entry exercises. Results are
// also written to BENCH_kernels.json so later PRs have a kernel-perf
// baseline to regress against.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "quant/int8_gemm.h"
#include "tensor/format.h"
#include "tensor/gemm.h"
#include "tensor/profile.h"
#include "tensor/rng.h"

namespace itask {
namespace {

enum class Kind { kFp32Nn, kFp32Bt, kFp32At, kInt8Bt };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kFp32Nn: return "fp32_nn";
    case Kind::kFp32Bt: return "fp32_bt";
    case Kind::kFp32At: return "fp32_at";
    case Kind::kInt8Bt: return "int8_bt";
  }
  return "?";
}

struct Case {
  std::string name;
  Kind kind;
  int64_t batch;  // independent GEMMs per call (bmm batch; 1 for 2-D)
  int64_t m, k, n;
  bool d40_deployable;  // counts toward the headline d40 geomean
};

struct Result {
  double naive_gflops = 0.0;
  double packed_gflops = 0.0;
  /// Weights packed once outside the timed region (the serving path after
  /// publish()); 0 when the case has no prepackable weight operand.
  double prepacked_gflops = 0.0;
  double speedup = 0.0;            // packed vs naive
  double prepacked_speedup = 0.0;  // prepacked vs packed (pack-per-call)
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Times fn by doubling the iteration count until the run exceeds
/// `min_seconds`, returning achieved GFLOP/s (2·batch·m·k·n flops per call).
template <typename Fn>
double time_gflops(const Case& c, double min_seconds, Fn&& fn) {
  const double flops_per_call =
      2.0 * static_cast<double>(c.batch) * static_cast<double>(c.m) *
      static_cast<double>(c.k) * static_cast<double>(c.n);
  fn();  // warm-up (and workspace growth)
  for (int64_t iters = 1;; iters *= 2) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double s = seconds_since(t0);
    if (s >= min_seconds || iters > (int64_t{1} << 30))
      return flops_per_call * static_cast<double>(iters) / s / 1e9;
  }
}

Result run_case(const Case& c, double min_seconds, Rng& rng) {
  Result r;
  const int64_t asz = c.batch * c.m * c.k;
  const int64_t bsz = c.batch * c.k * c.n;
  const int64_t csz = c.batch * c.m * c.n;
  if (c.kind == Kind::kInt8Bt) {
    std::vector<int8_t> a(static_cast<size_t>(asz));
    std::vector<int8_t> w(static_cast<size_t>(bsz));
    for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
    for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
    const int32_t zp = 7;
    // The Σw table is built once at finalize() in deployment; precompute it
    // outside the timed region to match.
    const std::vector<int32_t> sums = quant::weight_row_sums(w, c.n, c.k);
    std::vector<int32_t> acc(static_cast<size_t>(csz));
    std::vector<int32_t> ref(static_cast<size_t>(csz));
    quant::int8_gemm_bt(a, zp, w, ref, c.m, c.k, c.n);
    quant::int8_gemm_bt_packed(a, zp, w, sums, acc, c.m, c.k, c.n);
    if (acc != ref) {
      std::fprintf(stderr, "PARITY FAILURE: %s (int8)\n", c.name.c_str());
      std::exit(1);
    }
    // Serving path after publish(): the int16 k-pair panels are built once.
    const quant::PackedWeightInt8 pre = quant::pack_weights_int8(w, c.n, c.k);
    std::vector<int32_t> pacc(static_cast<size_t>(csz));
    quant::int8_gemm_bt_prepacked(a, zp, pre, sums, pacc, c.m);
    if (pacc != ref) {
      std::fprintf(stderr, "PARITY FAILURE: %s (int8 prepacked)\n",
                   c.name.c_str());
      std::exit(1);
    }
    r.naive_gflops = time_gflops(c, min_seconds, [&] {
      quant::int8_gemm_bt(a, zp, w, acc, c.m, c.k, c.n);
    });
    r.packed_gflops = time_gflops(c, min_seconds, [&] {
      quant::int8_gemm_bt_packed(a, zp, w, sums, acc, c.m, c.k, c.n);
    });
    r.prepacked_gflops = time_gflops(c, min_seconds, [&] {
      quant::int8_gemm_bt_prepacked(a, zp, pre, sums, pacc, c.m);
    });
  } else {
    const Tensor a = rng.randn({asz});
    const Tensor b = rng.randn({bsz});
    Tensor out({csz});
    Tensor ref({csz});
    auto dispatch = [&](bool packed, float* dst) {
      for (int64_t i = 0; i < c.batch; ++i) {
        const float* ap = a.data().data() + i * c.m * c.k;
        const float* bp = b.data().data() + i * c.k * c.n;
        float* cp = dst + i * c.m * c.n;
        switch (c.kind) {
          case Kind::kFp32Nn:
            packed ? gemm::gemm_nn(ap, bp, cp, c.m, c.k, c.n)
                   : gemm::reference::gemm_nn(ap, bp, cp, c.m, c.k, c.n);
            break;
          case Kind::kFp32Bt:
            packed ? gemm::gemm_bt(ap, bp, cp, c.m, c.k, c.n)
                   : gemm::reference::gemm_bt(ap, bp, cp, c.m, c.k, c.n);
            break;
          default:
            packed ? gemm::gemm_at(ap, bp, cp, c.m, c.k, c.n)
                   : gemm::reference::gemm_at(ap, bp, cp, c.m, c.k, c.n);
            break;
        }
      }
    };
    out.fill(0.0f);
    ref.fill(0.0f);
    dispatch(true, out.data().data());
    dispatch(false, ref.data().data());
    for (int64_t i = 0; i < csz; ++i) {
      const float tol = 2e-5f * (1.0f + std::abs(ref[i]));
      if (std::abs(out[i] - ref[i]) > tol) {
        std::fprintf(stderr, "PARITY FAILURE: %s element %lld (%g vs %g)\n",
                     c.name.c_str(), static_cast<long long>(i), out[i],
                     ref[i]);
        std::exit(1);
      }
    }
    // Prepacked applies to the weight GEMMs only: one B operand reused across
    // calls, exactly what Linear::infer() sees after prepack_for_serving().
    // Parity must run here, while `out` still holds exactly one dispatch —
    // the fp32 kernels accumulate into C, so after the timing loops `out`
    // holds result x iters.
    gemm::PackedB pre;
    Tensor pout({csz});
    const bool prepackable = c.kind == Kind::kFp32Bt && c.batch == 1;
    if (prepackable) {
      pre = gemm::pack_weights_bt(b.data().data(), c.k, c.n);
      gemm::gemm_bt_prepacked(a.data().data(), pre, pout.data().data(), c.m);
      for (int64_t i = 0; i < csz; ++i) {
        if (pout[i] != out[i]) {  // bit-exact vs pack-per-call by design
          std::fprintf(stderr,
                       "PARITY FAILURE: %s element %lld (prepacked %g vs "
                       "packed %g)\n",
                       c.name.c_str(), static_cast<long long>(i), pout[i],
                       out[i]);
          std::exit(1);
        }
      }
    }
    r.naive_gflops = time_gflops(
        c, min_seconds, [&] { dispatch(false, ref.data().data()); });
    r.packed_gflops = time_gflops(
        c, min_seconds, [&] { dispatch(true, out.data().data()); });
    if (prepackable) {
      r.prepacked_gflops = time_gflops(c, min_seconds, [&] {
        gemm::gemm_bt_prepacked(a.data().data(), pre, pout.data().data(),
                                c.m);
      });
    }
  }
  r.speedup = r.packed_gflops / r.naive_gflops;
  if (r.prepacked_gflops > 0.0)
    r.prepacked_speedup = r.prepacked_gflops / r.packed_gflops;
  return r;
}

}  // namespace
}  // namespace itask

int main() {
  using namespace itask;
  const bool fast = std::getenv("ITASK_BENCH_FAST") != nullptr;
  bench::print_header(
      "K0", "GEMM kernel layer: naive vs blocked/packed GFLOP/s");

  // Deployable-model GEMM shapes. Student d40: rows = B·(tokens+1) = 10B,
  // patch rows = 9B, qkv n = 3·40; teacher d64: dims 64/192/128. Attention
  // bmms run one tiny GEMM per image×head (head_dim = 10, tokens+1 = 10).
  std::vector<Case> cases;
  for (const int64_t b : {int64_t{1}, int64_t{8}, int64_t{32}}) {
    const std::string sb = "_b" + std::to_string(b);
    cases.push_back({"d40_qkv" + sb, Kind::kFp32Bt, 1, 10 * b, 40, 120, true});
    cases.push_back({"d40_fc1" + sb, Kind::kFp32Bt, 1, 10 * b, 40, 80, true});
    cases.push_back({"d40_fc2" + sb, Kind::kFp32Bt, 1, 10 * b, 80, 40, true});
  }
  cases.push_back({"d40_patch_b8", Kind::kFp32Bt, 1, 72, 192, 40, true});
  cases.push_back({"d40_proj_b8", Kind::kFp32Bt, 1, 80, 40, 40, true});
  cases.push_back({"d40_cls_head_b8", Kind::kFp32Bt, 1, 72, 40, 13, true});
  cases.push_back(
      {"d40_attn_scores_b8", Kind::kFp32Bt, 32, 10, 10, 10, false});
  cases.push_back({"d40_attn_values_b8", Kind::kFp32Nn, 32, 10, 10, 10,
                   false});
  // Training-path variants (dx = g·W, dW = gᵀ·x) at d40, batch 8.
  cases.push_back({"d40_dx_qkv_b8", Kind::kFp32Nn, 1, 80, 120, 40, false});
  cases.push_back({"d40_dW_qkv_b8", Kind::kFp32At, 1, 80, 120, 40, false});
  // Teacher width.
  cases.push_back({"d64_qkv_b8", Kind::kFp32Bt, 1, 80, 64, 192, false});
  cases.push_back({"d64_fc1_b8", Kind::kFp32Bt, 1, 80, 64, 128, false});
  cases.push_back({"d64_fc2_b8", Kind::kFp32Bt, 1, 80, 128, 64, false});
  // INT8 deployable path (quantized configuration).
  for (const int64_t b : {int64_t{1}, int64_t{8}, int64_t{32}}) {
    const std::string sb = "_b" + std::to_string(b);
    cases.push_back(
        {"int8_qkv" + sb, Kind::kInt8Bt, 1, 10 * b, 40, 120, true});
  }
  cases.push_back({"int8_fc1_b8", Kind::kInt8Bt, 1, 80, 40, 80, true});
  cases.push_back({"int8_fc2_b8", Kind::kInt8Bt, 1, 80, 80, 40, true});
  cases.push_back({"int8_patch_b8", Kind::kInt8Bt, 1, 72, 192, 40, true});

  const double min_seconds = fast ? 0.002 : 0.05;
  Rng rng(1234);
  std::printf("\n%-22s %-8s %5s %5s %5s %5s  %11s %11s %11s %7s %8s\n",
              "case", "kind", "batch", "M", "K", "N", "naive GF/s",
              "packed GF/s", "prepack GF/s", "pk/nv", "ppk/pk");
  std::vector<Result> results;
  double log_sum = 0.0;
  int64_t d40_count = 0;
  double pre_log_sum = 0.0;
  int64_t pre_count = 0;
  for (const Case& c : cases) {
    const Result r = run_case(c, min_seconds, rng);
    results.push_back(r);
    if (c.d40_deployable) {
      log_sum += std::log(r.speedup);
      ++d40_count;
      if (r.prepacked_speedup > 0.0) {
        pre_log_sum += std::log(r.prepacked_speedup);
        ++pre_count;
      }
    }
    char pre_gf[16];
    char pre_sp[16];
    if (r.prepacked_gflops > 0.0) {
      std::snprintf(pre_gf, sizeof(pre_gf), "%11.2f", r.prepacked_gflops);
      std::snprintf(pre_sp, sizeof(pre_sp), "%7.2fx", r.prepacked_speedup);
    } else {
      std::snprintf(pre_gf, sizeof(pre_gf), "%11s", "-");
      std::snprintf(pre_sp, sizeof(pre_sp), "%8s", "-");
    }
    std::printf(
        "%-22s %-8s %5lld %5lld %5lld %5lld  %11.2f %11.2f %s %6.2fx %s\n",
        c.name.c_str(), kind_name(c.kind), static_cast<long long>(c.batch),
        static_cast<long long>(c.m), static_cast<long long>(c.k),
        static_cast<long long>(c.n), r.naive_gflops, r.packed_gflops, pre_gf,
        r.speedup, pre_sp);
  }
  const double d40_geomean =
      std::exp(log_sum / static_cast<double>(d40_count));
  const double d40_prepacked_geomean =
      pre_count > 0 ? std::exp(pre_log_sum / static_cast<double>(pre_count))
                    : 0.0;
  std::printf("\nd40 deployable-shape geomean speedup: %.2fx (%lld cases)\n",
              d40_geomean, static_cast<long long>(d40_count));
  std::printf(
      "d40 prepacked-over-pack-per-call geomean: %.2fx (%lld weight-GEMM "
      "cases)\n",
      d40_prepacked_geomean, static_cast<long long>(pre_count));

  FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"k0_gemm\",\n  \"mode\": \"%s\",\n",
               fast ? "fast" : "full");
  std::fprintf(json,
               "  \"d40_geomean_speedup\": %.3f,\n"
               "  \"d40_prepacked_geomean_speedup\": %.3f,\n"
               "  \"cases\": [\n",
               d40_geomean, d40_prepacked_geomean);
  for (size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const Result& r = results[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"batch\": %lld, "
        "\"m\": %lld, \"k\": %lld, \"n\": %lld, \"d40_deployable\": %s, "
        "\"naive_gflops\": %.3f, \"packed_gflops\": %.3f, "
        "\"prepacked_gflops\": %.3f, \"speedup\": %.3f, "
        "\"prepacked_speedup\": %.3f}%s\n",
        c.name.c_str(), kind_name(c.kind), static_cast<long long>(c.batch),
        static_cast<long long>(c.m), static_cast<long long>(c.k),
        static_cast<long long>(c.n), c.d40_deployable ? "true" : "false",
        r.naive_gflops, r.packed_gflops, r.prepacked_gflops, r.speedup,
        r.prepacked_speedup, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_kernels.json (%zu cases)\n", cases.size());

  // Where the packed kernels spend their time: the tensor/profile.h scoped
  // timers (normally disabled, zero-cost — the GFLOP/s above are measured
  // hooks-off) attribute wall time to pack vs micro-kernel vs (for int8)
  // the quantize/dequantize edges. Representative d40 shape, batch 8.
  std::printf("\nkernel profile attribution (d40_qkv_b8: fp32_bt 80x40x120 + "
              "int8_qkv_b8)\n\n");
  {
    const int64_t m = 80, k = 40, n = 120;
    const Tensor a = rng.randn({m * k});
    const Tensor b = rng.randn({n * k});
    Tensor out({m * n});
    std::vector<int8_t> qa(static_cast<size_t>(m * k));
    std::vector<int8_t> qw(static_cast<size_t>(n * k));
    for (auto& v : qa) v = static_cast<int8_t>(rng.randint(-128, 127));
    for (auto& v : qw) v = static_cast<int8_t>(rng.randint(-128, 127));
    const std::vector<int32_t> sums = quant::weight_row_sums(qw, n, k);
    std::vector<int32_t> acc(static_cast<size_t>(m * n));
    profile::reset();
    profile::set_enabled(true);
    const int64_t iters = fast ? 200 : 2000;
    for (int64_t i = 0; i < iters; ++i) {
      gemm::gemm_bt(a.data().data(), b.data().data(), out.data().data(), m, k,
                    n);
      quant::int8_gemm_bt_packed(qa, /*zero_point=*/7, qw, sums, acc, m, k, n);
    }
    profile::set_enabled(false);
    const std::vector<profile::SectionStats> sections = profile::snapshot();
    int64_t total_ns = 0;
    for (const profile::SectionStats& s : sections) total_ns += s.total_ns;
    std::printf("%-16s %12s %10s %7s\n", "section", "calls", "us/call",
                "share%");
    for (const profile::SectionStats& s : sections) {
      std::printf("%-16s %12s %10.3f %7.1f\n", s.name,
                  fmt::i64(s.calls).c_str(),
                  static_cast<double>(s.total_ns) * 1e-3 /
                      static_cast<double>(s.calls),
                  total_ns > 0
                      ? 100.0 * static_cast<double>(s.total_ns) /
                            static_cast<double>(total_ns)
                      : 0.0);
    }
    profile::reset();
  }

  bench::print_footer_note(
      "expected shape: packed >= 3x naive geomean on the d40 deployable "
      "weight-GEMM shapes (fp32_bt + int8_bt); prepacked > 1x geomean over "
      "pack-per-call on the d40 weight GEMMs, largest at the thin serving "
      "shapes (m = 10..80, where the per-call B-pack dominates) and "
      "approaching parity by b32 (m = 320 amortizes the pack); bit-exact "
      "against pack-per-call everywhere. Attention bmms (10x10x10 per-head "
      "tiles) gain least and have no prepacked column — no publish-time "
      "weight operand. Parity vs the naive kernels is checked before "
      "timing. Attribution: the micro-kernel sections dominate, pack stays "
      "a minority share at these shapes; GFLOP/s numbers are hooks-off.");
  return 0;
}
