// T1 — "the task-specific configuration achieves a ~15% higher accuracy over
// the quantized configuration in specific scenarios".
//
// Regenerates the dual-configuration accuracy table: for each of the eight
// library tasks, the distilled task-specific student (FP32, relevance head)
// vs the single INT8 quantized multi-task model (knowledge-graph matching).
// Both configurations share the same compact ViT architecture.
#include "bench/bench_util.h"

using namespace itask;

int main() {
  bench::print_header(
      "T1 (table): dual-configuration accuracy per task",
      "claim: task-specific ≈ +15% accuracy on its own task");

  core::FrameworkOptions options = bench::experiment_options(42);
  core::Framework fw(options);
  std::printf("teacher: %s\nstudent: %s\n",
              options.teacher_config.to_string().c_str(),
              options.student_config.to_string().c_str());
  std::printf("pretraining teacher on %lld scenes…\n",
              static_cast<long long>(options.corpus_size));
  fw.pretrain_teacher();
  std::printf("building INT8 multi-task configuration…\n");
  fw.prepare_quantized();

  const data::Dataset eval = bench::make_eval_set(options, 128, 20260707);

  std::printf("\n%-20s | %7s %7s %7s | %7s %7s %7s | %8s\n", "task", "TS-F1",
              "TS-AP", "TS-R", "Q-F1", "Q-AP", "Q-R", "F1 gap");
  std::printf("%.20s-+-%.23s-+-%.23s-+-%.8s\n",
              "--------------------", "-----------------------",
              "-----------------------", "--------");
  double ts_sum = 0.0, q_sum = 0.0;
  const auto& library = data::task_library();
  for (const data::TaskSpec& spec : library) {
    core::TaskHandle task = fw.define_task(spec);
    fw.prepare_task_specific(task);
    const auto ts = fw.evaluate(eval, task, core::ConfigKind::kTaskSpecific);
    const auto q =
        fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask);
    ts_sum += ts.f1;
    q_sum += q.f1;
    std::printf("%-20s | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f | %+8.3f\n",
                spec.name.c_str(), ts.f1, ts.average_precision, ts.recall,
                q.f1, q.average_precision, q.recall, ts.f1 - q.f1);
  }
  const double n = static_cast<double>(library.size());
  std::printf("%.20s-+-%.23s-+-%.23s-+-%.8s\n",
              "--------------------", "-----------------------",
              "-----------------------", "--------");
  std::printf("%-20s | %7.3f %15s | %7.3f %15s | %+8.3f\n", "MEAN",
              ts_sum / n, "", q_sum / n, "", (ts_sum - q_sum) / n);
  std::printf("\nmodel footprints: task-specific %.3f MB/task (FP32) vs "
              "quantized %.3f MB total (INT8)\n",
              fw.task_specific_model_mb(), fw.quantized_model_mb());
  bench::print_footer_note(
      "paper claim shape: TS beats Q by ~0.10-0.20 mean F1 on its own task; "
      "per-task variance is expected ('in specific scenarios').");
  return 0;
}
