// T2 — "the hardware-accelerated iTask system achieves a 3.5x speedup …
// compared to GPU-based implementations".
//
// Regenerates the latency table: single-image inference of the deployed
// student ViT on (a) the GPU cost model (FP32, per-op kernel launches,
// occupancy-derated throughput) and (b) the INT8 weight-stationary systolic
// accelerator, across input resolutions. The deployment point (24 px,
// batch 1) carries the headline number; the sweep shows where the advantage
// erodes (GPU catches up once kernels are large enough to fill the device).
//
// Also registers google-benchmark timers for the two simulators themselves.
#include <benchmark/benchmark.h>

#include "accel/gpu_model.h"
#include "accel/systolic.h"
#include "bench/bench_util.h"
#include "vit/workload.h"

using namespace itask;

namespace {

void print_table() {
  bench::print_header("T2 (table): accelerator vs GPU latency",
                      "claim: ~3.5x speedup at the deployment point");
  const accel::GpuModel gpu;
  const accel::SystolicArray array;
  std::printf("GPU model: %.0f GFLOPS peak, %.1f GB/s, %.1f us/kernel launch\n",
              gpu.config().peak_gflops, gpu.config().mem_bw_gbps,
              gpu.config().kernel_launch_us);
  std::printf("Accelerator: %lldx%lld PEs @ %.0f MHz, %lld KiB SRAM\n\n",
              static_cast<long long>(array.config().rows),
              static_cast<long long>(array.config().cols),
              array.config().freq_mhz,
              static_cast<long long>(array.config().sram_kb));
  std::printf("%8s %6s %12s | %11s %11s | %8s\n", "image", "batch", "MMACs",
              "GPU (us)", "accel (us)", "speedup");
  for (int64_t batch : {1, 4}) {
    for (int64_t img : {24, 32, 48, 64, 96}) {
      vit::ViTConfig c = vit::ViTConfig::student();
      c.image_size = img;
      const auto w = vit::build_workload(c, batch, "student");
      const auto rg = gpu.run(w, 10.0);
      const auto ra = array.run(w, 10.0);
      const auto cmp = accel::compare(rg, ra);
      const bool headline = (img == 24 && batch == 1);
      std::printf("%5lldpx %6lld %12.2f | %11.1f %11.1f | %7.2fx%s\n",
                  static_cast<long long>(img), static_cast<long long>(batch),
                  static_cast<double>(w.total_macs()) / 1e6, rg.total_micros,
                  ra.total_micros, cmp.speedup,
                  headline ? "  <-- deployment point" : "");
    }
  }
  bench::print_footer_note(
      "shape: accelerator wins ~3.5x at small edge workloads (launch-overhead"
      "-dominated GPU regime); crossover as kernels grow to fill the GPU.");
}

void BM_SystolicSimulate(benchmark::State& state) {
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  const accel::SystolicArray array;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.run(w, 10.0).total_micros);
  }
}
BENCHMARK(BM_SystolicSimulate);

void BM_GpuModelSimulate(benchmark::State& state) {
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  const accel::GpuModel gpu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu.run(w, 10.0).total_micros);
  }
}
BENCHMARK(BM_GpuModelSimulate);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
