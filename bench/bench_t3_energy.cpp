// T3 — "… and a 40% reduction in energy consumption compared to GPU-based
// implementations".
//
// Regenerates the energy table at a 30 FPS duty cycle: per-frame system
// energy (idle + active power over the frame period + dynamic compute/memory
// energy) and, separately, the dynamic-only energy of the inference itself.
// The paper-level ~40% figure is the *system* energy ratio — dominated by the
// integrated accelerator's lower board power; dynamic energy alone improves
// by ~50x (INT8 MACs vs FP32 SIMT ops) and is reported for transparency.
#include <benchmark/benchmark.h>

#include "accel/gpu_model.h"
#include "accel/systolic.h"
#include "bench/bench_util.h"

using namespace itask;

namespace {

void print_table() {
  bench::print_header("T3 (table): per-frame energy at 30 FPS",
                      "claim: ~40% system energy reduction vs GPU");
  const accel::GpuModel gpu;
  const accel::SystolicArray array;
  std::printf("system power — GPU board: %.1f W idle + %.1f W active; "
              "accelerator SoC: %.1f W idle + %.1f W active\n\n",
              gpu.config().system.idle_w, gpu.config().system.active_w,
              array.config().system.idle_w, array.config().system.active_w);
  std::printf("%8s | %14s %14s %9s | %13s %13s %9s\n", "image",
              "GPU frame(mJ)", "acc frame(mJ)", "reduction", "GPU dyn(uJ)",
              "acc dyn(uJ)", "dyn ratio");
  for (int64_t img : {24, 32, 48}) {
    vit::ViTConfig c = vit::ViTConfig::student();
    c.image_size = img;
    const auto w = vit::build_workload(c, 1, "student");
    const auto rg = gpu.run(w, 30.0);
    const auto ra = array.run(w, 30.0);
    const auto cmp = accel::compare(rg, ra);
    const bool headline = (img == 24);
    std::printf("%5lldpx | %14.2f %14.2f %8.1f%% | %13.3f %13.3f %9.4f%s\n",
                static_cast<long long>(img), rg.frame_energy_mj,
                ra.frame_energy_mj, 100.0 * (1.0 - cmp.frame_energy_ratio),
                rg.dynamic_energy_uj, ra.dynamic_energy_uj,
                cmp.dynamic_energy_ratio,
                headline ? "  <-- deployment point" : "");
  }
  std::printf("\nper-layer breakdown at the deployment point:\n");
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  std::printf("%s\n", array.run(w, 30.0).to_table().c_str());
  bench::print_footer_note(
      "system-energy reduction ≈ 40% tracks the paper; the dynamic-only "
      "ratio (INT8 MAC vs FP32 + DRAM traffic) is far larger and shown for "
      "transparency.");
}

void BM_EnergyAccounting(benchmark::State& state) {
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  const accel::SystolicArray array;
  for (auto _ : state)
    benchmark::DoNotOptimize(array.run(w, 30.0).frame_energy_mj);
}
BENCHMARK(BM_EnergyAccounting);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
