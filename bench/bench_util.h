// Shared helpers for the experiment harnesses (bench_*). Each binary
// regenerates one table/figure from DESIGN.md §3 and prints it in a fixed
// plain-text format so runs can be diffed across machines.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/itask.h"
#include "detect/decoder.h"
#include "detect/nms.h"

namespace itask::bench {

/// Standard experiment budgets. `ITASK_BENCH_FAST=1` shrinks everything for
/// smoke runs (CI); results keep their shape but get noisier.
inline core::FrameworkOptions experiment_options(uint64_t seed) {
  core::FrameworkOptions o;
  o.seed = seed;
  if (std::getenv("ITASK_BENCH_FAST") != nullptr) {
    o.corpus_size = 256;
    o.task_corpus_size = 96;
    o.multitask_corpus_size = 96;
    o.teacher_training.epochs = 12;
    o.distillation.epochs = 12;
    o.multitask_distillation.epochs = 12;
  }
  return o;
}

inline void print_header(const char* experiment_id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, claim);
  std::printf("==============================================================\n");
}

inline void print_footer_note(const char* note) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("note: %s\n\n", note);
}

/// Builds a fresh evaluation set disjoint (by seed) from all training data.
inline data::Dataset make_eval_set(const core::FrameworkOptions& options,
                                   int64_t scenes, uint64_t seed) {
  Rng rng(seed);
  const data::SceneGenerator generator(options.generator);
  return data::Dataset::generate(generator, scenes, rng);
}

/// Knowledge-graph inference path for an arbitrary forward function
/// (mirrors the framework's quantized-configuration path). Used by ablation
/// benches that swap model runtimes under one matcher.
template <typename ForwardFn>
detect::EvalResult evaluate_kg_path(ForwardFn&& forward,
                                    const core::FrameworkOptions& options,
                                    const data::Dataset& eval,
                                    const core::TaskHandle& task) {
  detect::DecoderOptions dec = options.decoder;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  const kg::TaskMatcher matcher(task.compiled, options.matcher);
  std::vector<std::vector<detect::Detection>> detections;
  const auto indices = eval.all_indices();
  for (int64_t start = 0; start < eval.size(); start += 16) {
    const int64_t end = std::min(eval.size(), start + 16);
    const data::Batch batch = eval.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = forward(batch.images);
    auto candidates = detect::decode(out, dec);
    for (auto& per_image : candidates) {
      std::vector<detect::Detection> kept;
      for (detect::Detection& d : per_image) {
        if (!matcher.relevant(d.attr_probs, d.class_probs)) continue;
        d.confidence =
            d.objectness * matcher.confidence(d.attr_probs, d.class_probs);
        kept.push_back(std::move(d));
      }
      detections.push_back(detect::nms(std::move(kept), options.nms_iou));
    }
  }
  return detect::evaluate(detections,
                          core::Framework::ground_truth(eval, task.spec),
                          options.eval_iou);
}

/// Relevance-head inference path for a student model (mirrors the
/// framework's task-specific path).
inline detect::EvalResult evaluate_rel_path(
    vit::VitModel& student, const core::FrameworkOptions& options,
    const data::Dataset& eval, const data::TaskSpec& spec) {
  student.set_training(false);
  detect::DecoderOptions dec = options.decoder;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  std::vector<std::vector<detect::Detection>> detections;
  const auto indices = eval.all_indices();
  for (int64_t start = 0; start < eval.size(); start += 16) {
    const int64_t end = std::min(eval.size(), start + 16);
    const data::Batch batch = eval.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = student.forward(batch.images);
    auto candidates = detect::decode(out, dec);
    for (size_t bi = 0; bi < candidates.size(); ++bi) {
      std::vector<detect::Detection> kept;
      for (detect::Detection& d : candidates[bi]) {
        const float logit =
            out.relevance.at({static_cast<int64_t>(bi), d.cell, 0});
        const float rel = 1.0f / (1.0f + std::exp(-logit));
        if (rel < options.relevance_threshold) continue;
        d.confidence = d.objectness * rel;
        kept.push_back(std::move(d));
      }
      detections.push_back(detect::nms(std::move(kept), options.nms_iou));
    }
  }
  return detect::evaluate(detections,
                          core::Framework::ground_truth(eval, spec),
                          options.eval_iou);
}

}  // namespace itask::bench
