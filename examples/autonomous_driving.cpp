// Autonomous-driving scenario (the paper's lead motivation): a fixed,
// safety-critical mission → the policy selects the task-specific
// configuration; the detector runs on the accelerator within a real-time
// budget.
//
//   * mission defined from free-form text (LLM-oracle → knowledge graph),
//   * task-specific student distilled for it,
//   * detections visualised on sample scenes,
//   * deployment feasibility checked on the systolic-array simulator.
#include <cstdio>

#include "accel/gpu_model.h"
#include "accel/systolic.h"
#include "core/itask.h"
#include "detect/ascii.h"

using namespace itask;

int main() {
  std::printf("== iTask: autonomous-driving hazard detection ==\n\n");

  core::FrameworkOptions options;
  // Example-sized budgets (the benches use the full ones).
  options.corpus_size = 512;
  options.teacher_training.epochs = 20;
  options.distillation.epochs = 20;
  options.seed = 7;
  core::Framework fw(options);

  std::printf("[1] pretraining the perception teacher…\n");
  fw.pretrain_teacher();

  // Missions arrive as natural language; the library spec doubles as ground
  // truth for the evaluation below.
  const data::TaskSpec& spec = data::task_by_id(0);  // driving_hazards
  std::printf("[2] mission: \"%s\"\n", spec.description.c_str());
  core::TaskHandle task = fw.define_task(spec);
  std::printf("    knowledge graph: %lld nodes, %lld edges; "
              "compiled threshold %.2f\n",
              static_cast<long long>(task.graph.node_count()),
              static_cast<long long>(task.graph.edge_count()),
              task.compiled.threshold);

  // The situation: one known safety-critical task → task-specific config.
  core::SituationProfile situation;
  situation.expected_task_count = 1;
  situation.tasks_known_ahead = true;
  situation.accuracy_critical = true;
  const auto decision = fw.choose_configuration(situation);
  std::printf("[3] policy: %s\n    rationale: %s\n",
              core::config_kind_name(decision.config),
              decision.rationale.c_str());

  std::printf("[4] distilling the task-specific student…\n");
  fw.prepare_task_specific(task);

  // Drive a few frames through the detector and show what it sees.
  Rng rng(2468);
  data::GeneratorOptions road = options.generator;
  road.class_pool = std::vector<data::ObjectClass>{
      data::ObjectClass::kCar, data::ObjectClass::kPedestrian,
      data::ObjectClass::kTrafficCone, data::ObjectClass::kAnimal,
      data::ObjectClass::kCrack, data::ObjectClass::kBolt,
      data::ObjectClass::kBottle};
  const data::SceneGenerator generator(road);
  for (int frame = 0; frame < 3; ++frame) {
    const data::Scene scene = generator.generate(rng);
    const auto detections =
        fw.detect(scene.image, task, core::ConfigKind::kTaskSpecific);
    std::printf("\nframe %d — %zu hazard(s) flagged\n", frame,
                detections.size());
    std::printf("%s", detect::render_ascii(scene, detections).c_str());
    for (const auto& d : detections)
      std::printf("  -> %s\n", detect::describe(d).c_str());
  }

  // Interpretability: which cells ground the most confident detection?
  {
    const data::Scene scene = generator.generate(rng);
    Shape batched = scene.image.shape();
    batched.insert(batched.begin(), 1);
    vit::VitModel& student = fw.student_for(task);
    student.set_training(false);
    (void)student.forward(scene.image.reshape(batched));
    const Tensor rollout = student.attention_rollout();  // [1, T+1, T+1]
    std::printf("\nattention rollout (token 0 = CLS; cells 1..9 = grid):\n");
    for (int64_t cell = 0; cell < 9; ++cell) {
      std::printf("  cell %lld draws on:", static_cast<long long>(cell));
      for (int64_t src = 1; src < 10; ++src) {
        const float v = rollout.at({0, cell + 1, src});
        if (v > 0.12f)
          std::printf(" cell%lld(%.2f)", static_cast<long long>(src - 1), v);
      }
      std::printf("\n");
    }
  }

  // Quantitative check on a held-out road set.
  const data::Dataset eval = data::Dataset::generate(generator, 64, rng);
  const auto result =
      fw.evaluate(eval, task, core::ConfigKind::kTaskSpecific);
  std::printf("\n[5] held-out evaluation: F1 %.3f (P %.3f / R %.3f, AP %.3f)\n",
              result.f1, result.precision, result.recall,
              result.average_precision);

  // Real-time feasibility on the accelerator.
  const auto workload =
      vit::build_workload(options.student_config, 1, "driving_student");
  const accel::SystolicArray array;
  const accel::GpuModel gpu;
  const auto acc_report = array.run(workload, 30.0);
  const auto gpu_report = gpu.run(workload, 30.0);
  const auto cmp = accel::compare(gpu_report, acc_report);
  std::printf("\n[6] deployment: %.1f us/frame on the accelerator "
              "(%.0f FPS capable) vs %.1f us on the GPU — %.2fx speedup, "
              "%.0f%% less energy per frame\n",
              acc_report.total_micros, acc_report.fps_capability,
              gpu_report.total_micros, cmp.speedup,
              100.0 * (1.0 - cmp.frame_energy_ratio));
  return 0;
}
