// Industrial-inspection scenario: one edge device on the factory line must
// serve several inspection missions at once (fastener presence, structural
// defects, marker visibility). The policy selects the quantized multi-task
// configuration; every mission is served by knowledge-graph matching over
// one INT8 model — including a mission defined ad hoc at run time.
#include <cstdio>

#include "core/itask.h"
#include "detect/ascii.h"
#include "detect/decoder.h"
#include "detect/nms.h"
#include "kg/logic.h"
#include "kg/serialize.h"

using namespace itask;

int main() {
  std::printf("== iTask: multi-mission industrial inspection ==\n\n");

  core::FrameworkOptions options;
  options.corpus_size = 512;
  options.teacher_training.epochs = 20;
  options.multitask_distillation.epochs = 24;
  options.seed = 11;
  core::Framework fw(options);

  std::printf("[1] pretraining teacher + building the INT8 multi-task "
              "model…\n");
  fw.pretrain_teacher();
  fw.prepare_quantized();
  std::printf("    deployed model: %.3f MB INT8 (%s)\n",
              fw.quantized_model_mb(),
              options.student_config.to_string().c_str());

  // Three standing missions on the same line.
  const int64_t mission_ids[] = {4, 5, 6};  // fasteners, defects, markers
  core::SituationProfile situation;
  situation.expected_task_count = 3;
  situation.tasks_known_ahead = true;
  situation.accuracy_critical = false;
  const auto decision = fw.choose_configuration(situation);
  std::printf("[2] policy for 3 concurrent missions: %s\n    rationale: %s\n",
              core::config_kind_name(decision.config),
              decision.rationale.c_str());

  Rng rng(1357);
  const data::SceneGenerator generator(options.generator);
  const data::Dataset eval = data::Dataset::generate(generator, 96, rng);

  std::printf("\n[3] serving all missions from the single quantized model:\n");
  std::printf("    %-20s | %6s %6s %6s\n", "mission", "F1", "P", "R");
  for (int64_t id : mission_ids) {
    const data::TaskSpec& spec = data::task_by_id(id);
    core::TaskHandle task = fw.define_task(spec);
    const auto r =
        fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask);
    std::printf("    %-20s | %6.3f %6.3f %6.3f\n", spec.name.c_str(), r.f1,
                r.precision, r.recall);
  }

  // A new mission arrives as free text — no retraining, just a new graph.
  std::printf("\n[4] ad-hoc mission from the shift supervisor:\n");
  const std::string request =
      "Find fragile items near the packing station that need careful "
      "handling.";
  std::printf("    \"%s\"\n", request.c_str());
  core::TaskHandle adhoc = fw.define_task_from_text(request);
  std::printf("    generated knowledge graph (%lld nodes / %lld edges); "
              "serialized form:\n",
              static_cast<long long>(adhoc.graph.node_count()),
              static_cast<long long>(adhoc.graph.edge_count()));
  // Show just the task-level requirements, not the full ontology dump.
  for (const kg::Edge& e : adhoc.graph.edges_from(adhoc.compiled.task_node)) {
    std::printf("      task --%s(%.2f)--> %s\n",
                kg::relation_name(e.relation).c_str(), e.weight,
                adhoc.graph.node(e.dst).label.c_str());
  }

  const data::Scene sample = generator.generate(rng);
  const auto detections =
      fw.detect(sample.image, adhoc, core::ConfigKind::kQuantizedMultiTask);
  std::printf("    sample frame — %zu item(s) flagged:\n%s",
              detections.size(),
              detect::render_ascii(sample, detections).c_str());
  for (const auto& d : detections)
    std::printf("      -> %s\n", detect::describe(d).c_str());

  // Composite mission: soft boolean logic over attributes ("metallic AND
  // (small OR textured) AND NOT sharp") — requirements the linear matcher
  // cannot express.
  std::printf("\n[5] composite mission via soft logic:\n");
  const kg::TaskExpr expr = kg::TaskExpr::parse(
      "(and attr:0 (or attr:5 attr:11) (not attr:1))");
  std::printf("    %s  (metallic AND (small OR textured) AND NOT sharp)\n",
              expr.to_string().c_str());
  const kg::CompositeMatcher composite{expr, 0.35f};
  const data::Scene belt = generator.generate(rng);
  Shape batched = belt.image.shape();
  batched.insert(batched.begin(), 1);
  const vit::VitOutput raw = fw.quantized().forward(belt.image.reshape(batched));
  detect::DecoderOptions dec;
  dec.grid = options.generator.grid;
  dec.image_size = options.generator.image_size;
  auto all = detect::decode(raw, dec);
  std::vector<detect::Detection> kept;
  for (detect::Detection& d : all.front()) {
    if (!composite.relevant(d.attr_probs)) continue;
    d.confidence = d.objectness * expr.evaluate(d.attr_probs);
    kept.push_back(std::move(d));
  }
  kept = detect::nms(std::move(kept), 0.5f);
  std::printf("    %zu match(es) on a sample belt frame\n", kept.size());
  for (const auto& d : kept)
    std::printf("      -> %s\n", detect::describe(d).c_str());

  // The graph is an artifact: persist it for audit / reuse.
  kg::save_graph(adhoc.graph, "/tmp/itask_adhoc_mission.kg");
  std::printf("\n[6] mission graph persisted to "
              "/tmp/itask_adhoc_mission.kg (ITASK-KG v1 format)\n");
  return 0;
}
