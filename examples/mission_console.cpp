// Mission console — a small command-line front end over the framework,
// the shape a downstream user would actually operate:
//
//   mission_console prepare <deployment-dir>
//       trains teacher + quantized multi-task model and persists them.
//   mission_console detect <deployment-dir> "<mission text>" [frames] [outdir]
//       restores the deployment, compiles the mission text into a knowledge
//       graph, runs detection over synthetic frames, writes annotated PPM
//       images, and prints a report.
//
// Run without arguments for a self-contained demo (prepare + detect into
// /tmp/itask_console).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/itask.h"
#include "detect/ascii.h"
#include "detect/ppm.h"

using namespace itask;

namespace {

core::FrameworkOptions console_options() {
  core::FrameworkOptions o;
  o.corpus_size = 512;
  o.teacher_training.epochs = 20;
  o.multitask_distillation.epochs = 24;
  o.seed = 29;
  return o;
}

int cmd_prepare(const std::string& dir) {
  std::printf("[prepare] training deployment into %s …\n", dir.c_str());
  core::Framework fw(console_options());
  fw.pretrain_teacher();
  fw.prepare_quantized();
  fw.save_deployment(dir);
  std::printf("[prepare] saved: teacher + INT8 multi-task model "
              "(%.3f MB quantized)\n",
              fw.quantized_model_mb());
  return 0;
}

int cmd_detect(const std::string& dir, const std::string& mission,
               int64_t frames, const std::string& outdir) {
  std::printf("[detect] restoring deployment from %s …\n", dir.c_str());
  core::Framework fw(console_options());
  fw.load_deployment(dir);
  ITASK_CHECK(fw.quantized_ready(),
              "deployment has no quantized model; run `prepare` first");

  std::printf("[detect] mission: \"%s\"\n", mission.c_str());
  core::TaskHandle task = fw.define_task_from_text(mission);
  std::printf("[detect] compiled graph: %lld nodes, threshold %.2f\n",
              static_cast<long long>(task.graph.node_count()),
              task.compiled.threshold);

  std::filesystem::create_directories(outdir);
  Rng rng(13);
  const data::SceneGenerator gen(fw.options().generator);
  int64_t total = 0;
  for (int64_t f = 0; f < frames; ++f) {
    const data::Scene scene = gen.generate(rng);
    const auto dets =
        fw.detect(scene.image, task, core::ConfigKind::kQuantizedMultiTask);
    total += static_cast<int64_t>(dets.size());
    const std::string path =
        (std::filesystem::path(outdir) /
         ("frame_" + std::to_string(f) + ".ppm"))
            .string();
    detect::save_ppm_with_detections(scene.image, dets, path);
    std::printf("frame %lld: %zu detection(s) -> %s\n",
                static_cast<long long>(f), dets.size(), path.c_str());
    for (const auto& d : dets)
      std::printf("   %s\n", detect::describe(d).c_str());
  }
  std::printf("[detect] %lld detection(s) over %lld frame(s)\n",
              static_cast<long long>(total), static_cast<long long>(frames));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mission_console prepare <deployment-dir>\n"
               "  mission_console detect <deployment-dir> \"<mission text>\" "
               "[frames] [outdir]\n"
               "  mission_console            (self-contained demo)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) {
      // Demo: prepare once (cached across runs), then detect.
      const std::string dir = "/tmp/itask_console";
      if (!std::filesystem::exists(
              std::filesystem::path(dir) / "manifest.txt")) {
        const int rc = cmd_prepare(dir);
        if (rc != 0) return rc;
      } else {
        std::printf("[demo] reusing existing deployment at %s\n",
                    dir.c_str());
      }
      return cmd_detect(dir,
                        "Find sharp metallic surgical instruments on the "
                        "tray before closing.",
                        3, "/tmp/itask_console/frames");
    }
    const std::string cmd = argv[1];
    if (cmd == "prepare" && argc == 3) return cmd_prepare(argv[2]);
    if (cmd == "detect" && (argc == 4 || argc == 5 || argc == 6)) {
      const int64_t frames = argc >= 5 ? std::atoll(argv[4]) : 4;
      const std::string outdir = argc == 6 ? argv[5] : "itask_frames";
      return cmd_detect(argv[2], argv[3], frames, outdir);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mission_console: %s\n", e.what());
    return 1;
  }
}
