// Situational adaptability (the paper's claim 4): the same framework serves
// a deployment whose requirements change — starting as a single
// accuracy-critical mission, then growing into a many-mission deployment
// under a memory budget. The example shows the policy switching
// configurations and quantifies what each choice buys.
#include <cstdio>

#include "core/itask.h"

using namespace itask;

namespace {

void report(const char* phase, const core::PolicyDecision& decision) {
  std::printf("%s\n  -> %s\n  rationale: %s\n\n", phase,
              core::config_kind_name(decision.config),
              decision.rationale.c_str());
}

}  // namespace

int main() {
  std::printf("== iTask: situational adaptability ==\n\n");

  core::FrameworkOptions options;
  options.corpus_size = 512;
  options.teacher_training.epochs = 20;
  options.distillation.epochs = 20;
  options.multitask_distillation.epochs = 24;
  options.seed = 23;
  core::Framework fw(options);
  std::printf("[setup] pretraining teacher…\n\n");
  fw.pretrain_teacher();

  // ---- phase 1: one known, accuracy-critical mission --------------------
  core::SituationProfile p1;
  p1.expected_task_count = 1;
  p1.tasks_known_ahead = true;
  p1.accuracy_critical = true;
  p1.memory_budget_mb = 4.0;
  report("[phase 1] single known mission, accuracy-critical",
         fw.choose_configuration(p1));

  const data::TaskSpec& mission = data::task_by_id(1);  // surgical_sharps
  core::TaskHandle task = fw.define_task(mission);
  fw.prepare_task_specific(task);

  Rng rng(97);
  const data::SceneGenerator generator(options.generator);
  const data::Dataset eval = data::Dataset::generate(generator, 96, rng);
  const auto ts = fw.evaluate(eval, task, core::ConfigKind::kTaskSpecific);
  std::printf("  task-specific F1 on \"%s\": %.3f "
              "(%.3f MB FP32 student)\n\n",
              mission.name.c_str(), ts.f1, fw.task_specific_model_mb());

  // ---- phase 2: the deployment grows to 8 missions -----------------------
  core::SituationProfile p2 = p1;
  p2.expected_task_count = 8;
  p2.accuracy_critical = false;
  report("[phase 2] eight concurrent missions, 4 MB budget",
         fw.choose_configuration(p2));

  fw.prepare_quantized();
  std::printf("  one INT8 model (%.3f MB) now serves every mission via "
              "knowledge-graph matching:\n",
              fw.quantized_model_mb());
  double mean_q = 0.0;
  for (const data::TaskSpec& spec : data::task_library()) {
    core::TaskHandle t = fw.define_task(spec);
    const auto q =
        fw.evaluate(eval, t, core::ConfigKind::kQuantizedMultiTask);
    mean_q += q.f1;
    std::printf("    %-20s F1 %.3f\n", spec.name.c_str(), q.f1);
  }
  mean_q /= static_cast<double>(data::task_library().size());
  std::printf("  mean multi-task F1: %.3f\n\n", mean_q);

  // ---- phase 3: missions not known ahead of time ------------------------
  core::SituationProfile p3;
  p3.tasks_known_ahead = false;
  report("[phase 3] missions arrive at run time",
         fw.choose_configuration(p3));
  core::TaskHandle surprise = fw.define_task_from_text(
      "Track moving entities crossing the secured perimeter.");
  const data::Scene frame = generator.generate(rng);
  const auto dets = fw.detect(frame.image, surprise,
                              core::ConfigKind::kQuantizedMultiTask);
  std::printf("  surprise mission handled zero-shot: %zu detection(s) on the "
              "first frame, no retraining.\n\n",
              dets.size());

  // ---- the trade in one line --------------------------------------------
  std::printf("summary: specialised accuracy when the mission is fixed "
              "(F1 %.3f), graceful breadth when it is not (mean F1 %.3f, "
              "%.1fx smaller model) — the dual-configuration design.\n",
              ts.f1, mean_q,
              fw.task_specific_model_mb() / fw.quantized_model_mb());
  return 0;
}
