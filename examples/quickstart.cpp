// Quickstart: the full iTask lifecycle on one task.
//
//   1. pretrain a teacher ViT on a task-agnostic synthetic corpus,
//   2. define a mission from natural language (LLM-oracle → knowledge graph),
//   3. build both configurations (distilled task-specific student and
//      INT8 quantized multi-task model),
//   4. run detection with both and compare, and
//   5. ask the situational-adaptability policy which to deploy.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "core/itask.h"

using namespace itask;

int main() {
  std::printf("== iTask quickstart ==\n");

  core::FrameworkOptions options;
  options.seed = 42;
  // Example-sized budgets: ~15 s end-to-end. The benches use the full ones.
  options.corpus_size = 512;
  options.teacher_training.epochs = 20;
  options.distillation.epochs = 20;
  options.multitask_distillation.epochs = 20;
  core::Framework fw(options);

  std::printf("[1/5] pretraining teacher (%s) on %lld synthetic scenes…\n",
              options.teacher_config.to_string().c_str(),
              static_cast<long long>(options.corpus_size));
  fw.pretrain_teacher();

  const data::TaskSpec& spec = data::task_by_id(1);  // surgical_sharps
  std::printf("[2/5] defining task \"%s\"\n       \"%s\"\n", spec.name.c_str(),
              spec.description.c_str());
  core::TaskHandle task = fw.define_task(spec);
  std::printf("%s", task.graph.to_text().c_str());

  std::printf("[3/5] distilling task-specific student (%s)…\n",
              options.student_config.to_string().c_str());
  const auto stats = fw.prepare_task_specific(task);
  std::printf("       %lld steps, loss %.3f → %.3f\n",
              static_cast<long long>(stats.steps),
              static_cast<double>(stats.first_total),
              static_cast<double>(stats.last_total));

  std::printf("[4/5] building INT8 quantized multi-task model…\n");
  fw.prepare_quantized();
  std::printf("       footprint: %.3f MB (vs %.3f MB FP32 student/task)\n",
              fw.quantized_model_mb(), fw.task_specific_model_mb());

  // Evaluate both configurations on a fresh evaluation set.
  Rng eval_rng(2026);
  const data::SceneGenerator generator(options.generator);
  const data::Dataset eval =
      data::Dataset::generate(generator, 64, eval_rng);
  const auto r_ts =
      fw.evaluate(eval, task, core::ConfigKind::kTaskSpecific);
  const auto r_q =
      fw.evaluate(eval, task, core::ConfigKind::kQuantizedMultiTask);
  std::printf("[5/5] evaluation on 64 unseen scenes (task: %s)\n",
              spec.name.c_str());
  std::printf("       task-specific : F1 %.3f  (P %.3f, R %.3f, AP %.3f)\n",
              static_cast<double>(r_ts.f1), static_cast<double>(r_ts.precision),
              static_cast<double>(r_ts.recall),
              static_cast<double>(r_ts.average_precision));
  std::printf("       quantized     : F1 %.3f  (P %.3f, R %.3f, AP %.3f)\n",
              static_cast<double>(r_q.f1), static_cast<double>(r_q.precision),
              static_cast<double>(r_q.recall),
              static_cast<double>(r_q.average_precision));

  // Situational adaptability.
  core::SituationProfile profile;
  profile.expected_task_count = 1;
  profile.tasks_known_ahead = true;
  profile.accuracy_critical = true;
  const auto decision = fw.choose_configuration(profile);
  std::printf("policy(single known mission) → %s\n  rationale: %s\n",
              core::config_kind_name(decision.config),
              decision.rationale.c_str());

  core::SituationProfile fleet;
  fleet.expected_task_count = 12;
  fleet.tasks_known_ahead = false;
  const auto decision2 = fw.choose_configuration(fleet);
  std::printf("policy(12 unknown missions) → %s\n  rationale: %s\n",
              core::config_kind_name(decision2.config),
              decision2.rationale.c_str());
  return 0;
}
