// Energy model: per-operation and per-byte energy tables plus system power.
//
// The absolute constants are representative public figures (Horowitz,
// ISSCC'14 scaled to a modern edge node; Jetson-class GPU board numbers) —
// the experiments (T2/T3) compare *ratios*, which derive from counted
// operations, bytes, and cycles, not from these absolutes. Every constant is
// a config field so the ablation benches can sweep them.
#pragma once

#include <cstdint>

namespace itask::accel {

/// Dynamic energy per primitive, in picojoules.
struct EnergyTable {
  double int8_mac_pj = 0.3;     // 8-bit multiply-accumulate in the PE array
  double fp32_flop_pj = 4.6;    // FP32 op in a SIMT lane (datapath only)
  double sram_byte_pj = 1.2;    // on-chip SRAM access per byte
  double dram_byte_pj = 80.0;   // external DRAM access per byte
  double vector_op_pj = 1.0;    // accelerator vector-unit op
};

/// System-level power for the energy-per-frame comparison (T3). Edge systems
/// spend most of a frame period idle; integration (accelerator in the sensor
/// SoC vs a discrete GPU board) chiefly shows up as idle power.
struct SystemPower {
  double idle_w = 1.0;    // board power while waiting for the next frame
  double active_w = 1.0;  // *additional* power while computing
};

inline SystemPower gpu_system_power() { return {3.0, 7.0}; }
inline SystemPower accelerator_system_power() { return {1.8, 0.6}; }

}  // namespace itask::accel
