#include "accel/functional_array.h"

#include <algorithm>

namespace itask::accel {

FunctionalSystolicArray::FunctionalSystolicArray(FunctionalArrayConfig config)
    : config_(config) {
  ITASK_CHECK(config_.rows > 0 && config_.cols > 0,
              "FunctionalSystolicArray: bad PE dimensions");
}

int64_t FunctionalSystolicArray::run_tile(
    std::span<const int8_t> a, int32_t a_zero_point,
    std::span<const int8_t> w, std::span<int32_t> acc, int64_t m, int64_t k,
    int64_t n, int64_t k0, int64_t n0, int64_t kt, int64_t nt) const {
  const int64_t rows = config_.rows;
  const int64_t cols = config_.cols;
  // Resident weight tile, zero-padded to the physical PE grid.
  // PE(r, c) holds the weight connecting input dim (k0 + r) to output
  // (n0 + c); weights are stored transposed as w[n][k].
  std::vector<int32_t> pe_weight(static_cast<size_t>(rows * cols), 0);
  for (int64_t r = 0; r < kt; ++r)
    for (int64_t c = 0; c < nt; ++c)
      pe_weight[static_cast<size_t>(r * cols + c)] =
          static_cast<int32_t>(w[(n0 + c) * k + (k0 + r)]);

  // Registers: activation (east-bound) and partial sum (south-bound).
  std::vector<int32_t> a_reg(static_cast<size_t>(rows * cols), 0);
  std::vector<int32_t> psum_reg(static_cast<size_t>(rows * cols), 0);
  std::vector<int32_t> a_next(a_reg.size(), 0);
  std::vector<int32_t> psum_next(psum_reg.size(), 0);

  // One activation row per cycle enters the west edge, skewed one cycle per
  // PE row; the last output drains after m + rows + cols - 2 cycles.
  const int64_t total_cycles = m + rows + cols - 2;
  for (int64_t t = 0; t < total_cycles; ++t) {
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        int32_t a_in;
        if (c == 0) {
          // West feed: row (t - r) of the activation matrix, element k0 + r.
          const int64_t mi = t - r;
          a_in = (mi >= 0 && mi < m && r < kt)
                     ? static_cast<int32_t>(a[mi * k + (k0 + r)]) -
                           a_zero_point
                     : 0;
        } else {
          a_in = a_reg[static_cast<size_t>(r * cols + c - 1)];
        }
        const int32_t psum_in =
            r == 0 ? 0 : psum_reg[static_cast<size_t>((r - 1) * cols + c)];
        a_next[static_cast<size_t>(r * cols + c)] = a_in;
        psum_next[static_cast<size_t>(r * cols + c)] =
            psum_in + a_in * pe_weight[static_cast<size_t>(r * cols + c)];
      }
    }
    a_reg.swap(a_next);
    psum_reg.swap(psum_next);
    // Drain: at the end of cycle t, column c's south register holds the
    // finished dot product for activation row (t - (rows - 1) - c).
    for (int64_t c = 0; c < nt; ++c) {
      const int64_t mi = t - (rows - 1) - c;
      if (mi >= 0 && mi < m) {
        acc[mi * n + (n0 + c)] +=
            psum_reg[static_cast<size_t>((rows - 1) * cols + c)];
      }
    }
  }
  return total_cycles;
}

FunctionalResult FunctionalSystolicArray::gemm_bt(std::span<const int8_t> a,
                                                  int32_t a_zero_point,
                                                  std::span<const int8_t> w,
                                                  int64_t m, int64_t k,
                                                  int64_t n) const {
  ITASK_CHECK(static_cast<int64_t>(a.size()) == m * k,
              "FunctionalSystolicArray: a size mismatch");
  ITASK_CHECK(static_cast<int64_t>(w.size()) == n * k,
              "FunctionalSystolicArray: w size mismatch");
  FunctionalResult result;
  result.acc.assign(static_cast<size_t>(m * n), 0);
  const int64_t rows = config_.rows;
  const int64_t cols = config_.cols;
  for (int64_t k0 = 0; k0 < k; k0 += rows) {
    const int64_t kt = std::min(rows, k - k0);
    for (int64_t n0 = 0; n0 < n; n0 += cols) {
      const int64_t nt = std::min(cols, n - n0);
      result.cycles +=
          run_tile(a, a_zero_point, w, result.acc, m, k, n, k0, n0, kt, nt);
      result.weight_loads += rows * cols;
      ++result.tiles;
    }
  }
  return result;
}

}  // namespace itask::accel
