// Functional (data-carrying) simulation of the weight-stationary systolic
// array. Where SystolicArray (systolic.h) *counts* cycles analytically, this
// model actually clocks INT8 operands through a PE grid register by
// register, producing both the numeric result and an exact cycle count.
//
// Purpose (DESIGN.md §7): cross-validate the two simulators against each
// other and against the plain int8_gemm kernel —
//   * result(functional) == result(int8_gemm)            (numerics), and
//   * cycles(functional) == compute model of systolic.h  (timing),
// which is the strongest evidence short of RTL that the accelerator model
// faithfully represents the dataflow the paper's circuit implements.
//
// Dataflow (output-stationary within a tile, weight-stationary across m):
//   * a (rows × cols) weight tile W[kr][nc] is preloaded into the PEs;
//   * activation rows stream in from the west, skewed one cycle per row so
//     row r of the tile sees input element k=r with r cycles of delay;
//   * partial sums accumulate along columns and drain south after the
//     pipeline empties.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"  // ITASK_CHECK

namespace itask::accel {

struct FunctionalArrayConfig {
  int64_t rows = 16;  // k dimension of the resident weight tile
  int64_t cols = 16;  // n dimension of the resident weight tile
};

/// Result of one functionally simulated GEMM.
struct FunctionalResult {
  std::vector<int32_t> acc;   // [m, n] INT32 accumulators
  int64_t cycles = 0;         // exact clocked cycles (compute only)
  int64_t tiles = 0;
  int64_t weight_loads = 0;   // PE register writes
};

/// Cycle-by-cycle weight-stationary PE grid.
class FunctionalSystolicArray {
 public:
  explicit FunctionalSystolicArray(FunctionalArrayConfig config = {});

  const FunctionalArrayConfig& config() const { return config_; }

  /// Computes acc[m, n] = sum_k (a[m, k] - a_zero_point) * w[n, k] by
  /// clocking the PE grid; functionally identical to quant::int8_gemm_bt.
  FunctionalResult gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                           std::span<const int8_t> w, int64_t m, int64_t k,
                           int64_t n) const;

 private:
  /// Runs one resident weight tile: streams `m` activation rows through and
  /// accumulates into `acc`. Returns the cycles consumed.
  int64_t run_tile(std::span<const int8_t> a, int32_t a_zero_point,
                   std::span<const int8_t> w, std::span<int32_t> acc,
                   int64_t m, int64_t k, int64_t n, int64_t k0, int64_t n0,
                   int64_t kt, int64_t nt) const;

  FunctionalArrayConfig config_;
};

}  // namespace itask::accel
