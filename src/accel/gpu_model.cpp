#include "accel/gpu_model.h"

#include <algorithm>

#include "tensor/tensor.h"  // ITASK_CHECK

namespace itask::accel {

GpuModel::GpuModel(GpuConfig config) : config_(config) {
  ITASK_CHECK(config_.peak_gflops > 0.0, "GpuModel: bad peak");
  ITASK_CHECK(config_.mem_bw_gbps > 0.0, "GpuModel: bad bandwidth");
}

SimReport GpuModel::run(const vit::InferenceWorkload& workload,
                        double target_fps) const {
  SimReport report;
  report.device = "gpu_fp32";
  double total_us = 0.0;
  double energy_pj = 0.0;

  auto simulate = [&](const std::string& name, double flops, double bytes) {
    const double work = flops;  // occupancy proxy
    const double occupancy = std::clamp(
        work / config_.saturation_work, config_.min_occupancy, 1.0);
    const double compute_us =
        flops / (config_.peak_gflops * occupancy * 1e3);  // GFLOP/s → fl/µs
    const double memory_us = bytes / (config_.mem_bw_gbps * 1e3);
    const double us =
        config_.kernel_launch_us + std::max(compute_us, memory_us);
    LayerTiming lt;
    lt.name = name;
    lt.micros = us;
    lt.macs = static_cast<int64_t>(flops / 2.0);
    lt.dram_bytes = static_cast<int64_t>(bytes);
    const double e = flops * config_.energy.fp32_flop_pj +
                     bytes * config_.energy.dram_byte_pj;
    lt.dynamic_energy_uj = e * 1e-6;
    energy_pj += e;
    total_us += us;
    report.layers.push_back(std::move(lt));
  };

  for (const vit::GemmOp& op : workload.gemms) {
    const double flops = 2.0 * static_cast<double>(op.macs());
    // FP32 traffic: 4 bytes per element for inputs/weights/outputs.
    const double bytes =
        4.0 * static_cast<double>(op.input_bytes_int8() +
                                  op.weight_bytes_int8() +
                                  op.output_bytes_int8());
    simulate(op.name, flops, bytes);
  }
  for (const vit::VectorOp& op : workload.vector_ops) {
    const double flops =
        static_cast<double>(op.elements) * op.flops_per_element;
    const double bytes = 8.0 * static_cast<double>(op.elements);  // r+w FP32
    simulate(op.name, flops, bytes);
  }

  report.total_micros = total_us;
  report.dynamic_energy_uj = energy_pj * 1e-6;
  report.fps_capability = 1e6 / total_us;
  const double frame_us = 1e6 / target_fps;
  ITASK_CHECK(report.total_micros <= frame_us,
              "GpuModel: workload misses the frame deadline");
  report.frame_energy_mj =
      (config_.system.idle_w * frame_us +
       config_.system.active_w * report.total_micros) * 1e-3 +
      report.dynamic_energy_uj * 1e-3;
  return report;
}

}  // namespace itask::accel
