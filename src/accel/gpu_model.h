// Analytic cost model of a GPU-based implementation (the paper's baseline).
//
// Mechanism (this is what produces the paper's ratios, not the absolute
// constants): small-batch edge inference on a GPU is dominated by (a) kernel
// launch overhead — one launch per op — and (b) low SM occupancy, because a
// tiny ViT's GEMMs expose far fewer threads than the device needs to reach
// peak; plus (c) a discrete board's idle power burned over the whole frame
// period. Latency per op = launch + max(compute at occupancy-derated
// throughput, memory roofline).
#pragma once

#include "accel/energy.h"
#include "accel/report.h"
#include "vit/workload.h"

namespace itask::accel {

struct GpuConfig {
  double peak_gflops = 512.0;     // FP32 peak (Jetson-class edge GPU)
  double mem_bw_gbps = 25.6;      // effective DRAM bandwidth
  double kernel_launch_us = 4.0;  // per-kernel dispatch overhead
  /// Work (output elements × k) needed to saturate the device; occupancy is
  /// min(1, work / saturation_work).
  double saturation_work = 2.0e6;
  double min_occupancy = 0.02;    // floor: even one warp makes some progress
  EnergyTable energy;
  SystemPower system = gpu_system_power();

  static GpuConfig jetson_class() { return GpuConfig{}; }
};

class GpuModel {
 public:
  explicit GpuModel(GpuConfig config = GpuConfig::jetson_class());

  const GpuConfig& config() const { return config_; }

  /// Simulates a full FP32 inference at `target_fps`.
  SimReport run(const vit::InferenceWorkload& workload,
                double target_fps = 30.0) const;

 private:
  GpuConfig config_;
};

}  // namespace itask::accel
