#include "accel/report.h"

#include <cstdio>
#include <sstream>

#include "tensor/format.h"

namespace itask::accel {

std::string SimReport::to_table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %10s %10s %8s %10s\n",
                ("[" + device + "] layer").c_str(), "us", "cycles", "util%",
                "energy_uJ");
  os << line;
  for (const LayerTiming& l : layers) {
    std::snprintf(line, sizeof(line), "%-24s %10.3f %10s %8.1f %10.4f\n",
                  l.name.c_str(), l.micros, fmt::i64(l.cycles).c_str(),
                  l.utilization * 100.0, l.dynamic_energy_uj);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "%-24s %10.3f  (%.1f FPS, dyn %.3f uJ, frame %.3f mJ)\n",
                "TOTAL", total_micros, fps_capability, dynamic_energy_uj,
                frame_energy_mj);
  os << line;
  return os.str();
}

Comparison compare(const SimReport& baseline, const SimReport& candidate) {
  Comparison c;
  if (candidate.total_micros > 0.0)
    c.speedup = baseline.total_micros / candidate.total_micros;
  if (baseline.dynamic_energy_uj > 0.0)
    c.dynamic_energy_ratio =
        candidate.dynamic_energy_uj / baseline.dynamic_energy_uj;
  if (baseline.frame_energy_mj > 0.0)
    c.frame_energy_ratio = candidate.frame_energy_mj / baseline.frame_energy_mj;
  return c;
}

}  // namespace itask::accel
