// Simulation result types shared by the systolic-array and GPU models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace itask::accel {

/// Timing/energy of one workload op on a device.
struct LayerTiming {
  std::string name;
  double micros = 0.0;
  int64_t cycles = 0;       // 0 for the analytic GPU model
  int64_t macs = 0;
  double utilization = 0.0; // MACs / (cycles × PEs); 0 for GPU
  double dynamic_energy_uj = 0.0;
  int64_t dram_bytes = 0;
};

/// Full single-inference simulation result.
struct SimReport {
  std::string device;
  std::vector<LayerTiming> layers;
  double total_micros = 0.0;
  double dynamic_energy_uj = 0.0;   // compute + memory energy of the inference
  double frame_energy_mj = 0.0;     // system energy per frame at target FPS
  double fps_capability = 0.0;      // 1e6 / total_micros

  /// Renders an aligned per-layer table plus totals.
  std::string to_table() const;
};

/// Convenience: speedup/energy ratios between two reports.
struct Comparison {
  double speedup = 0.0;               // baseline.total / candidate.total
  double dynamic_energy_ratio = 0.0;  // candidate / baseline
  double frame_energy_ratio = 0.0;    // candidate / baseline
};

Comparison compare(const SimReport& baseline, const SimReport& candidate);

}  // namespace itask::accel
