#include "accel/systolic.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"  // ITASK_CHECK

namespace itask::accel {

SystolicConfig SystolicConfig::edge_asic() { return SystolicConfig{}; }

SystolicArray::SystolicArray(SystolicConfig config) : config_(config) {
  ITASK_CHECK(config_.rows > 0 && config_.cols > 0,
              "SystolicArray: bad PE dimensions");
  ITASK_CHECK(config_.freq_mhz > 0.0, "SystolicArray: bad frequency");
  ITASK_CHECK(config_.vector_lanes > 0, "SystolicArray: bad vector width");
}

GemmTiming SystolicArray::simulate_gemm(const vit::GemmOp& op) const {
  ITASK_CHECK(op.m > 0 && op.k > 0 && op.n > 0, "simulate_gemm: bad dims");
  GemmTiming t;
  const int64_t k_tiles = (op.k + config_.rows - 1) / config_.rows;
  const int64_t n_tiles = (op.n + config_.cols - 1) / config_.cols;
  t.tiles = k_tiles * n_tiles;
  // Streaming m rows through each resident weight tile + pipeline fill/drain.
  t.compute_cycles = t.tiles * (op.m + config_.rows + config_.cols - 2);
  // Weight staging: `rows` cycles per tile through a cols-wide load port.
  const int64_t load = t.tiles * config_.rows;
  if (config_.double_buffered) {
    // Overlapped except the very first tile's load.
    t.weight_load_cycles = std::min<int64_t>(load, config_.rows);
  } else {
    t.weight_load_cycles = load;
  }
  t.total_cycles = t.compute_cycles + t.weight_load_cycles;
  // DRAM: static weights cross once (residency handled by run()); activation
  // inputs/outputs live in SRAM for on-chip-sized models.
  t.dram_bytes = op.weight_bytes_int8();
  // SRAM traffic: inputs re-streamed once per n-tile strip, outputs written
  // once, weights read once.
  t.sram_bytes = op.input_bytes_int8() * n_tiles + op.output_bytes_int8() +
                 op.weight_bytes_int8();
  const double ideal = static_cast<double>(op.macs());
  t.utilization = ideal / (static_cast<double>(t.total_cycles) *
                           static_cast<double>(config_.pe_count()));
  return t;
}

SimReport SystolicArray::run(const vit::InferenceWorkload& workload,
                             double target_fps) const {
  SimReport report;
  report.device = "systolic_" + std::to_string(config_.rows) + "x" +
                  std::to_string(config_.cols);
  const double cycle_us = 1.0 / config_.freq_mhz;
  const int64_t sram_bytes = config_.sram_kb * 1024;
  const bool resident = config_.weights_resident &&
                        workload.total_weight_bytes_int8() <= sram_bytes;

  int64_t total_cycles = 0;
  double dma_us = 0.0;
  double energy_pj = 0.0;

  for (const vit::GemmOp& op : workload.gemms) {
    const GemmTiming t = simulate_gemm(op);
    LayerTiming lt;
    lt.name = op.name;
    lt.cycles = t.total_cycles;
    lt.micros = static_cast<double>(t.total_cycles) * cycle_us;
    lt.macs = op.macs();
    lt.utilization = t.utilization;
    lt.dram_bytes = resident ? 0 : t.dram_bytes;
    double e = static_cast<double>(op.macs()) * config_.energy.int8_mac_pj +
               static_cast<double>(t.sram_bytes) * config_.energy.sram_byte_pj +
               static_cast<double>(lt.dram_bytes) * config_.energy.dram_byte_pj;
    lt.dynamic_energy_uj = e * 1e-6;
    energy_pj += e;
    total_cycles += t.total_cycles;
    if (!resident)
      dma_us += static_cast<double>(t.dram_bytes) /
                (config_.dram_bw_gbps * 1e3);  // bytes / (GB/s) → ns → µs
    report.layers.push_back(std::move(lt));
  }
  for (const vit::VectorOp& op : workload.vector_ops) {
    const int64_t cycles =
        (static_cast<int64_t>(static_cast<double>(op.elements) *
                              op.flops_per_element) +
         config_.vector_lanes - 1) /
        config_.vector_lanes;
    LayerTiming lt;
    lt.name = op.name;
    lt.cycles = cycles;
    lt.micros = static_cast<double>(cycles) * cycle_us;
    const double e = static_cast<double>(op.elements) *
                     op.flops_per_element * config_.energy.vector_op_pj;
    lt.dynamic_energy_uj = e * 1e-6;
    energy_pj += e;
    total_cycles += cycles;
    report.layers.push_back(std::move(lt));
  }

  // Activation I/O over DMA: input image + final outputs cross DRAM once.
  const int64_t io_bytes = workload.batch * 3 * 1024;  // conservative bound
  dma_us += static_cast<double>(io_bytes) / (config_.dram_bw_gbps * 1e3);
  energy_pj += static_cast<double>(io_bytes) * config_.energy.dram_byte_pj;

  report.total_micros =
      static_cast<double>(total_cycles) * cycle_us + dma_us;
  report.dynamic_energy_uj = energy_pj * 1e-6;
  report.fps_capability = 1e6 / report.total_micros;
  const double frame_us = 1e6 / target_fps;
  ITASK_CHECK(report.total_micros <= frame_us,
              "SystolicArray: workload misses the frame deadline");
  report.frame_energy_mj =
      (config_.system.idle_w * frame_us +
       config_.system.active_w * report.total_micros) * 1e-3 +
      report.dynamic_energy_uj * 1e-3;
  return report;
}

}  // namespace itask::accel
