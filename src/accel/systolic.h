// Cycle-level model of a weight-stationary INT8 systolic-array accelerator
// with double-buffered SRAM and a DMA engine (DESIGN.md §4: substitutes the
// paper's "hardware acceleration circuit").
//
// Dataflow model per GEMM [m, k] × [k, n]:
//  * the PE array holds a (rows × cols) tile of the weight matrix
//    (k mapped to rows, n mapped to cols) ⇒ ceil(k/rows)·ceil(n/cols) tiles;
//  * for each weight tile, m activation rows stream through, one per cycle,
//    plus (rows + cols) pipeline fill/drain cycles;
//  * weight loading takes `rows` cycles per tile and overlaps with compute
//    when double buffering is enabled;
//  * DMA traffic: weights cross DRAM once per inference when the model fits
//    in SRAM (weight residency), otherwise once per use; activations cross
//    SRAM once per n-tile strip.
// Vector ops (softmax/LN/GELU) run on a `vector_lanes`-wide SIMD unit.
#pragma once

#include "accel/energy.h"
#include "accel/report.h"
#include "vit/workload.h"

namespace itask::accel {

struct SystolicConfig {
  int64_t rows = 16;            // PE array rows (k dimension)
  int64_t cols = 16;            // PE array cols (n dimension)
  // 225 MHz: a conservative edge-ASIC clock. Together with the Jetson-class
  // GPU constants this lands the 24 px deployment point at ~3.5x speedup —
  // the calibration is documented in EXPERIMENTS.md (T2).
  double freq_mhz = 225.0;
  int64_t sram_kb = 256;        // unified weight/activation SRAM
  double dram_bw_gbps = 4.0;    // DMA bandwidth
  int64_t vector_lanes = 16;
  bool double_buffered = true;
  bool weights_resident = true; // weights staged once, reused across frames
  EnergyTable energy;
  SystemPower system = accelerator_system_power();

  /// Area constants (representative 7 nm figures: INT8 MAC PE ≈ 0.0008 mm²
  /// incl. registers/control, SRAM ≈ 0.012 mm²/KiB, vector lane ≈ 0.001 mm²).
  double pe_area_mm2 = 0.0008;
  double sram_area_mm2_per_kb = 0.012;
  double vector_lane_area_mm2 = 0.001;

  /// Representative edge-ASIC configuration (the iTask circuit).
  static SystolicConfig edge_asic();

  int64_t pe_count() const { return rows * cols; }

  /// Estimated silicon area of the accelerator macro.
  double area_mm2() const {
    return static_cast<double>(pe_count()) * pe_area_mm2 +
           static_cast<double>(sram_kb) * sram_area_mm2_per_kb +
           static_cast<double>(vector_lanes) * vector_lane_area_mm2;
  }
};

/// Per-GEMM simulation detail (also unit-tested against closed forms).
struct GemmTiming {
  int64_t compute_cycles = 0;
  int64_t weight_load_cycles = 0;  // non-overlapped portion
  int64_t total_cycles = 0;
  int64_t tiles = 0;
  int64_t dram_bytes = 0;
  int64_t sram_bytes = 0;
  double utilization = 0.0;
};

class SystolicArray {
 public:
  explicit SystolicArray(SystolicConfig config = SystolicConfig::edge_asic());

  const SystolicConfig& config() const { return config_; }

  /// Simulates one GEMM op.
  GemmTiming simulate_gemm(const vit::GemmOp& op) const;

  /// Simulates a full inference workload at `target_fps` (for the
  /// energy-per-frame metric). Weight DMA is counted once when resident.
  SimReport run(const vit::InferenceWorkload& workload,
                double target_fps = 30.0) const;

 private:
  SystolicConfig config_;
};

}  // namespace itask::accel
