#include "core/itask.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "tensor/ops.h"

namespace itask::core {

namespace {

/// Classes whose typical instances are relevant to the task (estimated by
/// sampling instance parameterisations) — used to bias the distillation
/// corpus toward mission-relevant objects.
std::vector<data::ObjectClass> task_biased_pool(const data::TaskSpec& spec,
                                                Rng& rng) {
  std::vector<data::ObjectClass> pool;
  std::vector<data::ObjectClass> relevant;
  for (int64_t c = 1; c < data::kNumClasses; ++c) {
    const auto cls = static_cast<data::ObjectClass>(c);
    pool.push_back(cls);
    int hits = 0;
    constexpr int kSamples = 16;
    for (int s = 0; s < kSamples; ++s) {
      float r, g, b;
      data::class_base_color(cls, r, g, b);
      const float scale = rng.uniform(0.45f, 1.0f);
      const bool moving = rng.bernoulli(0.3);
      const Tensor attrs =
          data::resolve_instance_attributes(cls, scale, r, g, b, moving);
      if (spec.is_relevant(attrs)) ++hits;
    }
    if (hits * 2 >= kSamples) relevant.push_back(cls);
  }
  // Over-sample relevant classes 3:1 so the student sees its mission often.
  for (int rep = 0; rep < 3; ++rep)
    pool.insert(pool.end(), relevant.begin(), relevant.end());
  return pool;
}

}  // namespace

Framework::Framework(FrameworkOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      oracle_(options_.oracle) {
  Rng init_rng = rng_.fork();
  teacher_ = std::make_unique<vit::VitModel>(options_.teacher_config,
                                             init_rng);
  options_.decoder.grid = options_.generator.grid;
  options_.decoder.image_size = options_.generator.image_size;
}

void Framework::pretrain_teacher() {
  ITASK_CHECK(!teacher_trained_, "Framework: teacher already trained");
  Rng data_rng = rng_.fork();
  const data::SceneGenerator generator(options_.generator);
  corpus_ = data::Dataset::generate(generator, options_.corpus_size, data_rng);
  distill::Trainer trainer(*teacher_, options_.teacher_training);
  trainer.fit(corpus_);
  teacher_trained_ = true;
}

TaskHandle Framework::define_task(const data::TaskSpec& spec) {
  TaskHandle handle;
  handle.slot = next_slot_++;
  handle.id = kg::TaskId{handle.slot};
  handle.spec = spec;
  handle.graph = oracle_.generate(spec.description);
  const kg::NodeId task_node = handle.graph.find("task", kg::NodeType::kTask);
  ITASK_CHECK(task_node != kg::kInvalidNode,
              "Framework: oracle produced no task node");
  handle.compiled =
      kg::compile_task(handle.graph, task_node,
                       options_.teacher_config.num_attributes,
                       options_.teacher_config.num_classes);
  // Register the compiled form so publish() can hand every defined task to
  // serving snapshots — the table only ever grows.
  task_table_.add(handle.id, spec.name, handle.compiled);
  return handle;
}

TaskHandle Framework::define_task_from_text(const std::string& description) {
  data::TaskSpec spec;
  spec.id = -1;
  spec.name = "adhoc";
  spec.description = description;
  spec.positive = Tensor({data::kNumAttributes});
  spec.negative = Tensor({data::kNumAttributes});
  return define_task(spec);
}

distill::DistillStats Framework::prepare_task_specific(
    const TaskHandle& task) {
  ITASK_CHECK(teacher_trained_, "Framework: pretrain_teacher() first");
  Rng fork = rng_.fork();
  // Task-biased corpus: mission-relevant classes over-represented.
  data::GeneratorOptions gen_options = options_.generator;
  gen_options.class_pool = task_biased_pool(task.spec, fork);
  const data::SceneGenerator generator(gen_options);
  const data::Dataset task_corpus =
      data::Dataset::generate(generator, options_.task_corpus_size, fork);

  // A fresh model object every time: published snapshots may still be
  // serving the previous student for this slot, so it is replaced, never
  // retrained in place.
  auto student =
      std::make_shared<vit::VitModel>(options_.student_config, fork);
  distill::Distiller distiller(*teacher_, *student, options_.distillation,
                               fork);
  const distill::DistillStats stats = distiller.run(task_corpus, &task.spec);
  students_[task.slot] = std::move(student);
  return stats;
}

void Framework::prepare_quantized() {
  ITASK_CHECK(teacher_trained_, "Framework: pretrain_teacher() first");
  Rng fork = rng_.fork();
  // 1. Distil a task-agnostic multi-task student (reusing corpus scenes).
  const int64_t subset =
      std::min(options_.multitask_corpus_size, corpus_.size());
  std::vector<data::Scene> scenes;
  scenes.reserve(static_cast<size_t>(subset));
  for (int64_t i = 0; i < subset; ++i) scenes.push_back(corpus_.scene(i));
  const data::Dataset mt_corpus(std::move(scenes));
  // Fresh objects (never retrained/requantized in place): published
  // snapshots may still be serving the previous quantized model.
  multitask_student_ =
      std::make_shared<vit::VitModel>(options_.student_config, fork);
  distill::Distiller distiller(*teacher_, *multitask_student_,
                               options_.multitask_distillation, fork);
  distiller.run(mt_corpus, /*task=*/nullptr);
  // 2. Post-training quantization with calibration.
  auto quantized = std::make_shared<quant::QuantizedVit>(
      quant::QuantizedVit::from_model(*multitask_student_,
                                      options_.quantization));
  const data::SceneGenerator generator(options_.generator);
  const data::Dataset calib =
      data::Dataset::generate(generator, options_.calibration_scenes, fork);
  const auto idx = calib.all_indices();
  const data::Batch batch = calib.make_batch(idx);
  quantized->calibrate(batch.images);
  quantized->finalize();
  quantized_ = std::move(quantized);
}

DetectionPipeline Framework::pipeline() const {
  return DetectionPipeline{options_.decoder, options_.matcher,
                           options_.relevance_threshold, options_.nms_iou};
}

std::vector<std::vector<detect::Detection>> Framework::decode_and_match(
    const vit::VitOutput& output, const TaskHandle& task,
    bool use_rel_head) const {
  // Shared with DeploymentSnapshot::infer_batch — the element-wise identity
  // between the serial paths and the published serving path is by
  // construction, not by parallel maintenance of two copies.
  return core::decode_and_match(output, task.compiled, use_rel_head,
                                pipeline());
}

std::vector<std::vector<detect::Detection>> Framework::detect_batch(
    const Tensor& images, const TaskHandle& task, ConfigKind config) {
  ITASK_CHECK(images.ndim() == 4, "detect_batch: need [B, C, H, W]");
  if (config == ConfigKind::kTaskSpecific) {
    auto it = students_.find(task.slot);
    ITASK_CHECK(it != students_.end(),
                "detect_batch: prepare_task_specific() first");
    it->second->set_training(false);
    const vit::VitOutput out = it->second->forward(images);
    return decode_and_match(out, task, /*use_rel_head=*/true);
  }
  ITASK_CHECK(quantized_ != nullptr,
              "detect_batch: prepare_quantized() first");
  const vit::VitOutput out = quantized_->forward(images);
  return decode_and_match(out, task, /*use_rel_head=*/false);
}

std::vector<std::vector<detect::Detection>> Framework::infer_batch(
    const Tensor& images, const TaskHandle& task, ConfigKind config) const {
  ITASK_CHECK(images.ndim() == 4, "infer_batch: need [B, C, H, W]");
  if (config == ConfigKind::kTaskSpecific) {
    const auto it = students_.find(task.slot);
    ITASK_CHECK(it != students_.end(),
                "infer_batch: prepare_task_specific() first");
    const vit::VitOutput out = it->second->infer(images);
    return decode_and_match(out, task, /*use_rel_head=*/true);
  }
  ITASK_CHECK(quantized_ != nullptr,
              "infer_batch: prepare_quantized() first");
  const vit::VitOutput out = quantized_->forward(images);
  return decode_and_match(out, task, /*use_rel_head=*/false);
}

std::vector<detect::Detection> Framework::detect(const Tensor& image,
                                                 const TaskHandle& task,
                                                 ConfigKind config) {
  ITASK_CHECK(image.ndim() == 3, "detect: need [C, H, W]");
  Shape batched = image.shape();
  batched.insert(batched.begin(), 1);
  auto result = detect_batch(image.reshape(batched), task, config);
  return std::move(result.front());
}

std::vector<std::vector<detect::GroundTruthObject>> Framework::ground_truth(
    const data::Dataset& dataset, const data::TaskSpec& spec) {
  std::vector<std::vector<detect::GroundTruthObject>> truth;
  truth.reserve(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    std::vector<detect::GroundTruthObject> per_scene;
    for (const data::ObjectInstance& o : dataset.scene(i).objects) {
      detect::GroundTruthObject g;
      g.box = o.box;
      g.cls = data::class_index(o.cls);
      g.task_relevant = spec.is_relevant(o.attributes);
      per_scene.push_back(std::move(g));
    }
    truth.push_back(std::move(per_scene));
  }
  return truth;
}

detect::EvalResult Framework::evaluate(const data::Dataset& dataset,
                                       const TaskHandle& task,
                                       ConfigKind config) {
  ITASK_CHECK(dataset.size() > 0, "evaluate: empty dataset");
  std::vector<std::vector<detect::Detection>> detections;
  detections.reserve(static_cast<size_t>(dataset.size()));
  constexpr int64_t kChunk = 16;
  const auto indices = dataset.all_indices();
  for (int64_t start = 0; start < dataset.size(); start += kChunk) {
    const int64_t end = std::min(dataset.size(), start + kChunk);
    const data::Batch batch = dataset.make_batch(
        std::span<const int64_t>(indices.data() + start,
                                 static_cast<size_t>(end - start)));
    auto chunk = detect_batch(batch.images, task, config);
    for (auto& d : chunk) detections.push_back(std::move(d));
  }
  return detect::evaluate(detections, ground_truth(dataset, task.spec),
                          options_.eval_iou);
}

Shape Framework::expected_input_shape() const {
  const vit::ViTConfig& c = options_.student_config;
  return Shape{c.channels, c.image_size, c.image_size};
}

bool Framework::is_prepared(const TaskHandle& task, ConfigKind config) const {
  if (config == ConfigKind::kTaskSpecific) {
    return students_.find(task.slot) != students_.end();
  }
  return quantized_ != nullptr;
}

std::shared_ptr<const DeploymentSnapshot> Framework::publish() {
  // Publish-time weight pre-packing: snapshots are immutable and shared, so
  // every captured model's weights are packed into the kernels' panel
  // layout once here, and requests served from the snapshot skip the
  // per-call B/W pack entirely. Safe by construction: a model's first
  // prepack happens before any snapshot holding it exists, prepack is a
  // write-free no-op once packed (so re-publishing a model an installed
  // snapshot already serves races with nothing), and prepare_* replaces
  // model objects rather than retraining them, so a cache never goes stale
  // on the serving path.
  for (auto& [slot, student] : students_) student->prepack_for_serving();
  if (quantized_ != nullptr) quantized_->prepack();
  std::map<kg::TaskId, std::shared_ptr<const vit::VitModel>> students;
  for (const auto& [slot, student] : students_) {
    students.emplace(kg::TaskId{slot}, student);
  }
  return std::make_shared<const DeploymentSnapshot>(
      ++next_version_, expected_input_shape(), task_table_,
      std::move(students), quantized_, pipeline());
}

PolicyDecision Framework::choose_configuration(
    const SituationProfile& profile) const {
  return itask::core::choose_configuration(profile, task_specific_model_mb(),
                                           quantized_model_mb());
}

vit::VitModel& Framework::teacher() {
  ITASK_CHECK(teacher_ != nullptr, "Framework: no teacher");
  return *teacher_;
}

vit::VitModel& Framework::student_for(const TaskHandle& task) {
  auto it = students_.find(task.slot);
  ITASK_CHECK(it != students_.end(), "Framework: no student for task");
  return *it->second;
}

vit::VitModel& Framework::multitask_student() {
  ITASK_CHECK(multitask_student_ != nullptr,
              "Framework: prepare_quantized() first");
  return *multitask_student_;
}

quant::QuantizedVit& Framework::quantized() {
  ITASK_CHECK(quantized_ != nullptr, "Framework: no quantized model");
  return *quantized_;
}

namespace {

/// Rebuilds the quantized runtime from a trained multi-task student.
void calibrate_quantized(quant::QuantizedVit& qvit,
                         const FrameworkOptions& options, Rng& rng) {
  const data::SceneGenerator generator(options.generator);
  const data::Dataset calib =
      data::Dataset::generate(generator, options.calibration_scenes, rng);
  const auto idx = calib.all_indices();
  const data::Batch batch = calib.make_batch(idx);
  qvit.calibrate(batch.images);
  qvit.finalize();
}

}  // namespace

void Framework::save_deployment(const std::string& directory) const {
  ITASK_CHECK(teacher_trained_, "save_deployment: pretrain_teacher() first");
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  io::save_state_dict(teacher_->state_dict(),
                      (fs::path(directory) / "teacher.itsk").string());
  std::ofstream manifest(fs::path(directory) / "manifest.txt");
  ITASK_CHECK(manifest.good(), "save_deployment: cannot write manifest");
  manifest << "ITASK-DEPLOYMENT v1" << '\n';
  if (multitask_student_ != nullptr) {
    io::save_state_dict(multitask_student_->state_dict(),
                        (fs::path(directory) / "multitask.itsk").string());
    manifest << "multitask 1" << '\n';
  }
  for (const auto& [slot, student] : students_) {
    io::save_state_dict(
        student->state_dict(),
        (fs::path(directory) / ("student_" + std::to_string(slot) + ".itsk"))
            .string());
    manifest << "student " << slot << '\n';
  }
}

void Framework::load_deployment(const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream manifest(fs::path(directory) / "manifest.txt");
  ITASK_CHECK(manifest.good(), "load_deployment: missing manifest in " +
                                   directory);
  std::string header;
  std::getline(manifest, header);
  ITASK_CHECK(header == "ITASK-DEPLOYMENT v1",
              "load_deployment: bad manifest header");
  teacher_->load_state_dict(io::load_state_dict(
      (fs::path(directory) / "teacher.itsk").string()));
  teacher_trained_ = true;

  std::string kind;
  while (manifest >> kind) {
    if (kind == "multitask") {
      int present = 0;
      manifest >> present;
      if (present != 1) continue;
      Rng fork = rng_.fork();
      multitask_student_ =
          std::make_shared<vit::VitModel>(options_.student_config, fork);
      multitask_student_->load_state_dict(io::load_state_dict(
          (fs::path(directory) / "multitask.itsk").string()));
      auto quantized = std::make_shared<quant::QuantizedVit>(
          quant::QuantizedVit::from_model(*multitask_student_,
                                          options_.quantization));
      calibrate_quantized(*quantized, options_, fork);
      quantized_ = std::move(quantized);
    } else if (kind == "student") {
      int64_t slot = -1;
      manifest >> slot;
      ITASK_CHECK(slot >= 0, "load_deployment: bad student slot");
      Rng fork = rng_.fork();
      auto student =
          std::make_shared<vit::VitModel>(options_.student_config, fork);
      student->load_state_dict(io::load_state_dict(
          (fs::path(directory) /
           ("student_" + std::to_string(slot) + ".itsk"))
              .string()));
      // Deliberately do NOT advance next_slot_: the caller re-defines tasks
      // in the original order, so define_task() must hand out the same slot
      // numbers the saved students were keyed under.
      students_[slot] = std::move(student);
    } else {
      ITASK_CHECK(false, "load_deployment: unknown manifest entry " + kind);
    }
  }
}

double Framework::task_specific_model_mb() const {
  // FP32 student parameter footprint.
  Rng probe(1);
  vit::VitModel tmp(options_.student_config, probe);
  return static_cast<double>(tmp.parameter_count()) * 4.0 / (1024.0 * 1024.0);
}

double Framework::quantized_model_mb() const {
  if (quantized_ != nullptr) {
    return static_cast<double>(quantized_->quantized_weight_bytes()) /
           (1024.0 * 1024.0);
  }
  Rng probe(1);
  vit::VitModel tmp(options_.student_config, probe);
  return static_cast<double>(tmp.parameter_count()) / (1024.0 * 1024.0);
}

}  // namespace itask::core
