// The iTask framework facade — the paper's system in one object.
//
// Lifecycle:
//   Framework fw(options);
//   fw.pretrain_teacher();                       // task-agnostic corpus
//   TaskHandle t = fw.define_task(spec);         // LLM-oracle → KG → matcher
//   fw.prepare_task_specific(t);                 // distilled student
//   fw.prepare_quantized();                      // INT8 multi-task model
//   auto dets = fw.detect_batch(images, t, ConfigKind::kTaskSpecific);
//   auto snap = fw.publish();                    // immutable serving bundle
//   // ...hand `snap` to runtime::InferenceServer; keep defining/preparing
//   // and publish() again — serving swaps snapshots with zero downtime.
//
// The two inference paths embody the paper's dual configuration:
//  * task-specific: per-task distilled student; relevance comes from its
//    dedicated relevance head (trained for exactly this mission);
//  * quantized: one INT8 model for all tasks; relevance comes from
//    knowledge-graph matching of predicted attributes/classes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "detect/decoder.h"
#include "detect/metrics.h"
#include "detect/nms.h"
#include "distill/distiller.h"
#include "distill/trainer.h"
#include "kg/matcher.h"
#include "kg/task_table.h"
#include "llm/oracle.h"
#include "quant/qvit.h"
#include "vit/model.h"

namespace itask::core {

struct FrameworkOptions {
  vit::ViTConfig teacher_config = vit::ViTConfig::teacher();
  vit::ViTConfig student_config = vit::ViTConfig::student();
  data::GeneratorOptions generator;
  int64_t corpus_size = 960;          // task-agnostic pretraining scenes
  int64_t task_corpus_size = 192;     // scenes for per-task distillation
  int64_t calibration_scenes = 24;    // PTQ calibration set
  distill::TrainerOptions teacher_training{.epochs = 30, .seed = 7};
  distill::DistillOptions distillation{.epochs = 30, .seed = 11};
  /// Distillation budget for the multi-task student that becomes the
  /// quantized configuration (trained once, task-agnostic, no relevance
  /// supervision).
  distill::DistillOptions multitask_distillation{.epochs = 30, .seed = 13};
  int64_t multitask_corpus_size = 256;  // subset of the corpus reused for it
  quant::QuantOptions quantization;
  llm::OracleOptions oracle;
  kg::MatcherOptions matcher;
  detect::DecoderOptions decoder;
  float relevance_threshold = 0.5f;   // task-specific path cut-off
  float nms_iou = 0.5f;
  /// Matching IoU for evaluation. 0.4 rather than the COCO 0.5 because the
  /// synthetic objects are 4-10 px — at that size a 1 px regression error
  /// swings IoU by ~0.2, which would measure box jitter, not detection.
  float eval_iou = 0.4f;
  uint64_t seed = 42;
};

/// A defined mission: its spec (ground truth for evaluation), the oracle's
/// knowledge graph, and the compiled matcher. `id` is the task's stable
/// serving identity — what the runtime submits against and what deployment
/// snapshots key their task tables by; `slot` is the storage key for the
/// per-task distilled student (the same number today, but only `id` is part
/// of the serving contract).
struct TaskHandle {
  int64_t slot = -1;
  kg::TaskId id;
  data::TaskSpec spec;
  kg::KnowledgeGraph graph;
  kg::CompiledTask compiled;
};

class Framework {
 public:
  explicit Framework(FrameworkOptions options = {});

  /// Generates the task-agnostic corpus and trains the teacher on it.
  /// Must be called before any prepare_* or detect_* call.
  void pretrain_teacher();

  /// Defines a task from a library spec (its description feeds the oracle).
  TaskHandle define_task(const data::TaskSpec& spec);

  /// Defines a task from free-form text only (no ground-truth spec; such
  /// handles can run detection but not ground-truth evaluation).
  TaskHandle define_task_from_text(const std::string& description);

  /// Distils a task-specific student for this task (stored per slot).
  distill::DistillStats prepare_task_specific(const TaskHandle& task);

  /// Builds the quantized configuration: distils a *multi-task* student
  /// (same compact architecture as the task-specific students) from the
  /// teacher on task-agnostic data, then post-training-quantizes it to INT8
  /// with calibration. Both deployable configurations therefore share the
  /// same compute envelope — the paper's comparison.
  void prepare_quantized();

  /// Batched detection. images: [B, C, H, W]. Returns per-image detections
  /// (already task-filtered and NMS-ed, sorted by confidence).
  std::vector<std::vector<detect::Detection>> detect_batch(
      const Tensor& images, const TaskHandle& task, ConfigKind config);

  /// Thread-safe batched detection over a *prepared* deployment: const,
  /// cache-free, and numerically identical to detect_batch, so many runtime
  /// workers may call it concurrently on one Framework. The deployment must
  /// not be mutated (prepare_*/load_deployment) while calls are in flight.
  std::vector<std::vector<detect::Detection>> infer_batch(
      const Tensor& images, const TaskHandle& task, ConfigKind config) const;

  /// Single-image convenience overload ([C, H, W]).
  std::vector<detect::Detection> detect(const Tensor& image,
                                        const TaskHandle& task,
                                        ConfigKind config);

  /// Evaluates a configuration on a dataset against the task's ground truth.
  detect::EvalResult evaluate(const data::Dataset& dataset,
                              const TaskHandle& task, ConfigKind config);

  /// Ground truth extraction (exposed for custom experiment loops).
  static std::vector<std::vector<detect::GroundTruthObject>> ground_truth(
      const data::Dataset& dataset, const data::TaskSpec& spec);

  /// Situational adaptability (DESIGN.md claim 4).
  PolicyDecision choose_configuration(const SituationProfile& profile) const;

  /// Per-image input shape [C, H, W] every deployed model expects — the
  /// admission contract the serving runtime validates requests against.
  /// (Both deployable configurations share the student architecture.)
  Shape expected_input_shape() const;

  /// Whether `config` can serve `task` right now: task-specific needs a
  /// student distilled for the task's slot, quantized needs the finalized
  /// INT8 model (which serves any defined task via KG matching). Lets the
  /// runtime fail malformed requests at admission instead of inside a
  /// worker.
  bool is_prepared(const TaskHandle& task, ConfigKind config) const;

  /// Publishes the current deployment as an immutable, versioned snapshot —
  /// the unit the serving runtime swaps in atomically (zero-downtime task
  /// onboarding). Cheap: the snapshot *shares* the prepared model objects
  /// (no weight copies) and copies only the compiled task table, so it can
  /// be called after every define_task / prepare_* step. Re-preparing the
  /// Framework afterwards replaces models rather than mutating them, so
  /// published snapshots keep serving exactly the weights they captured.
  /// Versions start at 1 and increase by 1 per publish.
  std::shared_ptr<const DeploymentSnapshot> publish();

  /// Version number the next publish() will stamp, minus one — i.e. how
  /// many snapshots this Framework has published so far.
  int64_t published_snapshots() const { return next_version_; }

  // --- accessors used by benches/tests ---
  vit::VitModel& teacher();
  vit::VitModel& student_for(const TaskHandle& task);
  /// The FP32 multi-task student the quantized model was built from
  /// (useful for isolating quantization error in ablations).
  vit::VitModel& multitask_student();
  quant::QuantizedVit& quantized();
  const data::Dataset& corpus() const { return corpus_; }
  const FrameworkOptions& options() const { return options_; }
  bool teacher_ready() const { return teacher_trained_; }
  bool quantized_ready() const { return quantized_ != nullptr; }

  /// Model footprints in MB (FP32 student vs INT8 quantized).
  double task_specific_model_mb() const;
  double quantized_model_mb() const;

  /// Persists the prepared deployment (teacher, per-slot students, the
  /// multi-task student) into `directory` as ITSK checkpoints plus a
  /// manifest. Requires a trained teacher.
  void save_deployment(const std::string& directory) const;

  /// Restores a deployment saved by save_deployment into a Framework built
  /// with the *same options*. Re-runs quantization calibration (synthetic
  /// calibration data is regenerated deterministically); re-define tasks in
  /// the original order so slots line up with the saved students.
  void load_deployment(const std::string& directory);

 private:
  std::vector<std::vector<detect::Detection>> decode_and_match(
      const vit::VitOutput& output, const TaskHandle& task,
      bool use_rel_head) const;

  DetectionPipeline pipeline() const;

  FrameworkOptions options_;
  Rng rng_;
  std::unique_ptr<vit::VitModel> teacher_;
  bool teacher_trained_ = false;
  data::Dataset corpus_;
  llm::Oracle oracle_;
  int64_t next_slot_ = 0;
  int64_t next_version_ = 0;
  /// Every defined task's compiled form — what publish() hands to snapshots.
  kg::TaskTable task_table_;
  // Models are held via shared_ptr so publish() can share them with
  // immutable snapshots; prepare_* REPLACES the pointee (never mutates a
  // model that a snapshot may be serving from).
  std::map<int64_t, std::shared_ptr<vit::VitModel>> students_;
  std::shared_ptr<vit::VitModel> multitask_student_;
  std::shared_ptr<quant::QuantizedVit> quantized_;
};

}  // namespace itask::core
