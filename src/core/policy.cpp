#include "core/policy.h"

namespace itask::core {

const char* config_kind_name(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::kTaskSpecific: return "task_specific";
    case ConfigKind::kQuantizedMultiTask: return "quantized_multi_task";
  }
  return "?";
}

PolicyDecision choose_configuration(const SituationProfile& profile,
                                    double task_specific_model_mb,
                                    double quantized_model_mb) {
  PolicyDecision d;
  if (!profile.tasks_known_ahead) {
    d.config = ConfigKind::kQuantizedMultiTask;
    d.rationale = "tasks arrive at run time; only the quantized model can "
                  "serve unseen missions via knowledge-graph matching";
    return d;
  }
  const double fleet_mb =
      task_specific_model_mb * static_cast<double>(profile.expected_task_count);
  if (fleet_mb > profile.memory_budget_mb) {
    d.config = ConfigKind::kQuantizedMultiTask;
    d.rationale = "a distilled student per task exceeds the memory budget (" +
                  std::to_string(fleet_mb) + " MB > " +
                  std::to_string(profile.memory_budget_mb) + " MB)";
    return d;
  }
  if (profile.accuracy_critical || profile.expected_task_count == 1) {
    d.config = ConfigKind::kTaskSpecific;
    d.rationale = "missions are fixed and fit in memory; per-task distilled "
                  "students maximise accuracy";
    return d;
  }
  d.config = ConfigKind::kQuantizedMultiTask;
  d.rationale = "many concurrent tasks with no accuracy criticality; a "
                "single quantized model (" +
                std::to_string(quantized_model_mb) +
                " MB) is the efficient choice";
  return d;
}

}  // namespace itask::core
