// Situational-adaptability policy: picks between the task-specific and
// quantized configurations from a deployment profile (the paper's "dual
// configuration" selection).
#pragma once

#include <cstdint>
#include <string>

namespace itask::core {

enum class ConfigKind {
  kTaskSpecific,       // distilled per-task student (highest accuracy)
  kQuantizedMultiTask, // one INT8 model serving every task via the KG
};

const char* config_kind_name(ConfigKind kind);

/// What the deployment looks like.
struct SituationProfile {
  int64_t expected_task_count = 1;
  bool tasks_known_ahead = true;   // can we distill before deployment?
  double memory_budget_mb = 8.0;   // model storage available on-device
  bool accuracy_critical = true;   // single-task accuracy over flexibility
};

struct PolicyDecision {
  ConfigKind config = ConfigKind::kQuantizedMultiTask;
  std::string rationale;
};

/// `task_specific_model_mb` is the per-task student footprint;
/// `quantized_model_mb` the one-off INT8 model footprint.
PolicyDecision choose_configuration(const SituationProfile& profile,
                                    double task_specific_model_mb,
                                    double quantized_model_mb);

}  // namespace itask::core
