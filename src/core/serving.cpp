#include "core/serving.h"

#include <algorithm>

#include "data/attributes.h"
#include "tensor/format.h"
#include "tensor/rng.h"
#include "vit/workload.h"

namespace itask::core {

const char* serving_strategy_name(ServingStrategy s) {
  switch (s) {
    case ServingStrategy::kTaskSpecificFleet: return "task_specific_fleet";
    case ServingStrategy::kQuantizedSingle: return "quantized_single";
  }
  return "?";
}

ServingReport simulate_serving(ServingStrategy strategy,
                               const ServingOptions& options) {
  ITASK_CHECK(options.num_tasks >= 1, "simulate_serving: need >= 1 task");
  ITASK_CHECK(options.frames >= 1, "simulate_serving: need >= 1 frame");
  ServingReport report;
  report.strategy = strategy;
  report.frames = options.frames;

  const accel::SystolicArray array(options.accelerator);
  const auto workload = vit::build_workload(options.model, 1, "serving");
  // Steady-state inference latency (weights resident).
  report.inference_us = array.run(workload, 10.0).total_micros;

  // Mission-switch cost.
  if (strategy == ServingStrategy::kTaskSpecificFleet) {
    // Stage the incoming student's weights from DRAM into SRAM. Task-
    // specific students deploy in FP32 (that is what buys their accuracy
    // edge, see T1), so 4 bytes per weight cross the DMA.
    const double bytes =
        4.0 * static_cast<double>(workload.total_weight_bytes_int8());
    report.swap_us = options.switch_flush_us +
                     bytes / (options.accelerator.dram_bw_gbps * 1e3);
  } else {
    // Only the compiled task vectors move: (A attributes + C classes + 1
    // threshold) FP32 values.
    const double bytes = 4.0 * static_cast<double>(
        options.model.num_attributes + options.model.num_classes + 1);
    report.swap_us = options.switch_flush_us +
                     bytes / (options.accelerator.dram_bw_gbps * 1e3);
  }

  // Markov mission stream.
  Rng rng(options.seed);
  int64_t active = 0;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(options.frames));
  double total_us = 0.0;
  constexpr double kDeadlineUs = 1e6 / 30.0;
  int64_t misses = 0;
  for (int64_t f = 0; f < options.frames; ++f) {
    double latency = report.inference_us;
    if (options.num_tasks > 1 &&
        rng.bernoulli(options.task_switch_probability)) {
      int64_t next = rng.randint(0, options.num_tasks - 2);
      if (next >= active) ++next;  // uniform over the other tasks
      active = next;
      ++report.switches;
      latency += report.swap_us;
    }
    latencies.push_back(latency);
    total_us += latency;
    if (latency > kDeadlineUs) ++misses;
  }

  report.mean_latency_us = total_us / static_cast<double>(options.frames);
  std::sort(latencies.begin(), latencies.end());
  const size_t p99_index = static_cast<size_t>(
      0.99 * static_cast<double>(latencies.size() - 1));
  report.p99_latency_us = latencies[p99_index];
  report.worst_latency_us = latencies.back();
  report.effective_fps = 1e6 * static_cast<double>(options.frames) / total_us;
  report.deadline_miss_rate =
      static_cast<double>(misses) / static_cast<double>(options.frames);
  return report;
}

std::string serving_switch_sweep_row(double switch_probability,
                                     const ServingReport& fleet,
                                     const ServingReport& single_model) {
  // Layout: "%8.2f | %9.1f / %9.1f | %9.1f / %9.1f" (the original printf).
  return fmt::pad_left(fmt::f64(switch_probability, 2), 8) + " | " +
         fmt::pad_left(fmt::f64(fleet.mean_latency_us, 1), 9) + " / " +
         fmt::pad_left(fmt::f64(fleet.p99_latency_us, 1), 9) + " | " +
         fmt::pad_left(fmt::f64(single_model.mean_latency_us, 1), 9) + " / " +
         fmt::pad_left(fmt::f64(single_model.p99_latency_us, 1), 9);
}

std::string serving_task_sweep_row(int64_t num_tasks,
                                   const ServingReport& fleet,
                                   const ServingReport& single_model) {
  // Layout: "%8lld | %12.0f | %12.0f | %7.1f us" (the original printf).
  return fmt::pad_left(fmt::i64(num_tasks), 8) + " | " +
         fmt::pad_left(fmt::f64(fleet.effective_fps, 0), 12) + " | " +
         fmt::pad_left(fmt::f64(single_model.effective_fps, 0), 12) + " | " +
         fmt::pad_left(fmt::f64(fleet.swap_us, 1), 7) + " us";
}

}  // namespace itask::core
