// Multi-task serving simulation: what latency does a stream of frames with
// interleaved missions actually see on the accelerator?
//
// Strategies:
//  * kTaskSpecificFleet — one (quantized) student per task resides in DRAM;
//    a mission change stages the new student's weights into accelerator
//    SRAM over DMA before the frame can run (weight-swap penalty).
//  * kQuantizedSingle  — one multi-task model stays resident; a mission
//    change only swaps the compiled task vectors (a few hundred bytes).
//
// This quantifies the run-time half of the dual-configuration trade-off
// (bench F4); the accuracy half is T1/F1.
//
// Time-unit boundary (the one place it is documented): this module and the
// accelerator simulator report *analog* quantities — cycle counts divided by
// clock frequency — as `double` microseconds, because sub-µs fractions are
// real there and rounding them would bias the sweep tables. The serving
// *runtime* (runtime/clock.h) is the opposite convention: monotonic integer
// microsecond timestamps, because wall-clock readings are inherently
// integral ticks and integer spans compare exactly in tests. The two meet
// only in reports: runtime::span_us converts timestamp pairs to double µs
// durations for histograms, and the render helpers below format both kinds
// through tensor/format.h. Do not "unify" the types — each side's choice is
// load-bearing; convert at the report boundary only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/systolic.h"
#include "vit/config.h"

namespace itask::core {

enum class ServingStrategy {
  kTaskSpecificFleet,
  kQuantizedSingle,
};

const char* serving_strategy_name(ServingStrategy s);

struct ServingOptions {
  accel::SystolicConfig accelerator;
  vit::ViTConfig model = vit::ViTConfig::student();
  int64_t num_tasks = 4;
  int64_t frames = 2000;
  /// Per-frame probability that the active mission changes.
  double task_switch_probability = 0.1;
  /// Pipeline flush cost charged on any mission change (both strategies).
  double switch_flush_us = 2.0;
  uint64_t seed = 99;
};

struct ServingReport {
  ServingStrategy strategy{};
  int64_t frames = 0;
  int64_t switches = 0;
  double inference_us = 0.0;      // steady-state per-frame latency
  double swap_us = 0.0;           // cost charged per mission change
  double mean_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double worst_latency_us = 0.0;
  double effective_fps = 0.0;     // frames / total time
  /// Fraction of frames that missed a 30 FPS deadline (33.3 ms).
  double deadline_miss_rate = 0.0;
};

/// Simulates `options.frames` frames with a Markov mission process.
ServingReport simulate_serving(ServingStrategy strategy,
                               const ServingOptions& options);

/// Fixed-width bench-F4 table rows, rendered through the portable fmt
/// helpers (tensor/format.h) — byte-identical to the historical printf
/// layouts, so the recorded EXPERIMENTS.md tables stay comparable.
/// Switch-rate sweep: "       p |  fleet mean / p99 | single mean / p99".
std::string serving_switch_sweep_row(double switch_probability,
                                     const ServingReport& fleet,
                                     const ServingReport& single_model);
/// Task-count sweep: "   tasks |    fleet fps |   single fps |  swap us".
std::string serving_task_sweep_row(int64_t num_tasks,
                                   const ServingReport& fleet,
                                   const ServingReport& single_model);

}  // namespace itask::core
