#include "core/snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/arena.h"
#include "tensor/format.h"

namespace itask::core {

std::vector<std::vector<detect::Detection>> decode_and_match(
    const vit::VitOutput& output, const kg::CompiledTask& task,
    bool use_rel_head, const DetectionPipeline& pipeline) {
  auto candidates = detect::decode(output, pipeline.decoder);
  const kg::TaskMatcher matcher(task, pipeline.matcher);
  std::vector<std::vector<detect::Detection>> result;
  result.reserve(candidates.size());
  for (size_t bi = 0; bi < candidates.size(); ++bi) {
    std::vector<detect::Detection> kept;
    for (detect::Detection& d : candidates[bi]) {
      if (use_rel_head) {
        const float rel_logit = output.relevance.at(
            {static_cast<int64_t>(bi), d.cell, 0});
        const float rel = 1.0f / (1.0f + std::exp(-rel_logit));
        d.task_score = rel;
        if (rel < pipeline.relevance_threshold) continue;
        d.confidence = d.objectness * rel;
      } else {
        d.task_score = matcher.score(d.attr_probs, d.class_probs);
        if (!matcher.relevant(d.attr_probs, d.class_probs)) continue;
        d.confidence =
            d.objectness * matcher.confidence(d.attr_probs, d.class_probs);
      }
      kept.push_back(std::move(d));
    }
    result.push_back(detect::nms(std::move(kept), pipeline.nms_iou));
  }
  return result;
}

DeploymentSnapshot::DeploymentSnapshot(
    int64_t version, Shape expected_input_shape, kg::TaskTable tasks,
    std::map<kg::TaskId, std::shared_ptr<const vit::VitModel>> students,
    std::shared_ptr<const quant::QuantizedVit> quantized,
    DetectionPipeline pipeline)
    : version_(version),
      expected_input_shape_(std::move(expected_input_shape)),
      tasks_(std::move(tasks)),
      students_(std::move(students)),
      quantized_(std::move(quantized)),
      pipeline_(std::move(pipeline)) {
  ITASK_CHECK(version_ >= 1, "DeploymentSnapshot: version must be >= 1");
  ITASK_CHECK(expected_input_shape_.size() == 3,
              "DeploymentSnapshot: expected_input_shape must be [C, H, W]");
  for (const auto& [id, student] : students_) {
    ITASK_CHECK(student != nullptr,
                "DeploymentSnapshot: null student for " +
                    kg::task_id_to_string(id));
    ITASK_CHECK(tasks_.contains(id),
                "DeploymentSnapshot: student without a task table entry for " +
                    kg::task_id_to_string(id));
  }
}

bool DeploymentSnapshot::servable(kg::TaskId id, ConfigKind config) const {
  if (!tasks_.contains(id)) return false;
  if (config == ConfigKind::kTaskSpecific) {
    return students_.find(id) != students_.end();
  }
  return quantized_ != nullptr;
}

std::vector<std::vector<detect::Detection>> DeploymentSnapshot::infer_batch(
    const Tensor& images, kg::TaskId id, ConfigKind config) const {
  return decode_batch(infer_raw(images, id, config), id, config);
}

vit::VitOutput DeploymentSnapshot::infer_raw(const Tensor& images,
                                             kg::TaskId id,
                                             ConfigKind config) const {
  ITASK_CHECK(images.ndim() == 4, "DeploymentSnapshot: need [B, C, H, W]");
  ITASK_CHECK(tasks_.find(id) != nullptr,
              "DeploymentSnapshot: " + kg::task_id_to_string(id) +
                  " is not in snapshot v" + fmt::i64(version_) +
                  " (publish a snapshot containing it first)");
  if (config == ConfigKind::kTaskSpecific) {
    const auto it = students_.find(id);
    ITASK_CHECK(it != students_.end(),
                "DeploymentSnapshot: no task-specific student for " +
                    kg::task_id_to_string(id) + " in snapshot v" +
                    fmt::i64(version_));
    return it->second->infer(images);
  }
  ITASK_CHECK(quantized_ != nullptr,
              "DeploymentSnapshot: snapshot v" + fmt::i64(version_) +
                  " has no quantized model (prepare_quantized before "
                  "publish)");
  return quantized_->forward(images);
}

std::vector<std::vector<detect::Detection>> DeploymentSnapshot::decode_batch(
    const vit::VitOutput& output, kg::TaskId id, ConfigKind config) const {
  const kg::TaskTable::Entry* entry = tasks_.find(id);
  ITASK_CHECK(entry != nullptr,
              "DeploymentSnapshot: " + kg::task_id_to_string(id) +
                  " is not in snapshot v" + fmt::i64(version_));
  return decode_and_match(output, entry->compiled,
                          /*use_rel_head=*/config == ConfigKind::kTaskSpecific,
                          pipeline_);
}

std::optional<kg::TaskId> DeploymentSnapshot::first_missing_task(
    const DeploymentSnapshot& older) const {
  for (const kg::TaskId id : older.tasks().ids()) {
    if (!tasks_.contains(id)) return id;
  }
  return std::nullopt;
}

int64_t DeploymentSnapshot::plan_workspace(int64_t max_batch) const {
  ITASK_CHECK(max_batch >= 1, "plan_workspace: max_batch must be >= 1");
  Shape batched = expected_input_shape_;
  batched.insert(batched.begin(), max_batch);
  int64_t bytes = 0;
  const auto probe_one = [&](const auto& run_model) {
    // Zero-capacity probe arena: every allocation overflows (individually
    // heap'd, freed on destruction) while used() accumulates the exact
    // rounded footprint the real arena must cover.
    Arena probe(0);
    const ArenaScope scope(probe);
    const Tensor images(batched);  // the worker's stacked batch counts too
    const vit::VitOutput out = run_model(images);
    (void)out;
    bytes = std::max(bytes, probe.used());
  };
  for (const auto& [id, student] : students_) {
    (void)id;
    probe_one([&](const Tensor& images) { return student->infer(images); });
  }
  if (quantized_ != nullptr) {
    probe_one(
        [&](const Tensor& images) { return quantized_->forward(images); });
  }
  return bytes;
}

}  // namespace itask::core
