// Versioned, immutable deployment snapshots — the Framework↔runtime boundary.
//
// A DeploymentSnapshot is a value-semantic bundle of everything needed to
// *serve*: the INT8 multi-task model, the per-slot distilled students, the
// compiled task table keyed by stable kg::TaskId, the expected input shape,
// and a monotonically increasing version number. Framework::publish()
// produces one; runtime::InferenceServer holds the current one behind an
// atomically swapped std::shared_ptr and each micro-batch acquires it once
// (RCU-style — an old snapshot retires when the last in-flight batch
// releases its reference), so define_task / prepare_* / publish can run
// concurrently with serving and a task becomes servable the instant a
// snapshot containing it is installed.
//
// Immutability contract: a snapshot never changes after construction. The
// model objects inside it are shared with the Framework that published it
// (publish() is cheap — no weight copies), and re-preparing the Framework
// replaces those objects rather than mutating them, so published snapshots
// keep serving the weights they were published with. Inference goes through
// the const, cache-free model entry points only.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy.h"
#include "detect/decoder.h"
#include "detect/nms.h"
#include "kg/task_table.h"
#include "quant/qvit.h"
#include "vit/model.h"

namespace itask::core {

/// Options for the shared decode → relevance → NMS pipeline. One struct so
/// the Framework's serial paths and a snapshot's serving path run literally
/// the same code — the element-wise identity test_runtime asserts.
struct DetectionPipeline {
  detect::DecoderOptions decoder;
  kg::MatcherOptions matcher;
  float relevance_threshold = 0.5f;
  float nms_iou = 0.5f;
};

/// Decodes raw model outputs, applies task relevance (the dedicated
/// relevance head when `use_rel_head`, KG matching of the compiled task
/// otherwise), and NMS-filters per image.
std::vector<std::vector<detect::Detection>> decode_and_match(
    const vit::VitOutput& output, const kg::CompiledTask& task,
    bool use_rel_head, const DetectionPipeline& pipeline);

class DeploymentSnapshot {
 public:
  DeploymentSnapshot(
      int64_t version, Shape expected_input_shape, kg::TaskTable tasks,
      std::map<kg::TaskId, std::shared_ptr<const vit::VitModel>> students,
      std::shared_ptr<const quant::QuantizedVit> quantized,
      DetectionPipeline pipeline);

  /// Monotonically increasing per-Framework publish counter (first
  /// publish() is version 1). The serving runtime rejects installing a
  /// snapshot whose version does not increase.
  int64_t version() const { return version_; }

  /// Per-image [C, H, W] shape every model in this snapshot expects — the
  /// admission contract the runtime validates requests against.
  const Shape& expected_input_shape() const { return expected_input_shape_; }

  /// The compiled task table (kg-owned form). Tables only grow across
  /// versions, so any task servable under version n is servable under n+k.
  const kg::TaskTable& tasks() const { return tasks_; }

  bool has_task(kg::TaskId id) const { return tasks_.contains(id); }
  int64_t task_count() const { return tasks_.size(); }

  /// Whether `config` can serve `id` from this snapshot: task-specific
  /// needs a distilled student published for the task, quantized needs the
  /// finalized INT8 model plus the task's compiled graph vectors.
  bool servable(kg::TaskId id, ConfigKind config) const;

  /// Thread-safe batched detection ([B, C, H, W]), element-wise identical
  /// to Framework::detect_batch over the same weights: const, cache-free,
  /// any number of workers may call it concurrently on one snapshot.
  /// Throws std::invalid_argument when (id, config) is not servable.
  /// Equivalent to decode_batch(infer_raw(...)).
  std::vector<std::vector<detect::Detection>> infer_batch(
      const Tensor& images, kg::TaskId id, ConfigKind config) const;

  /// The model half of infer_batch: runs the (id, config) model and returns
  /// its raw outputs, no decoding. This is the region a runtime worker wraps
  /// in an ArenaScope — every intermediate (and the returned VitOutput's
  /// tensors) then lives in the worker's arena. Same validation and
  /// arithmetic as infer_batch.
  vit::VitOutput infer_raw(const Tensor& images, kg::TaskId id,
                           ConfigKind config) const;

  /// The decode half: decode → task relevance → NMS over infer_raw's output.
  /// Runs OUTSIDE the arena scope, because the returned Detections carry
  /// tensors that escape into results — they must be heap-backed. Only reads
  /// `output`, so arena-resident outputs are fine as long as the arena has
  /// not been reset yet.
  std::vector<std::vector<detect::Detection>> decode_batch(
      const vit::VitOutput& output, kg::TaskId id, ConfigKind config) const;

  /// The version-skew tolerance contract behind staged fleet rollouts: a
  /// newer snapshot must contain every task of `older` (task tables only
  /// grow), so shards at mixed versions serve identical results for any
  /// task the older version knew and a request admitted against one shard's
  /// version is servable on any other. Returns the first task of `older`
  /// missing from this snapshot, or nullopt when fully covered — the fleet
  /// asserts nullopt before rolling a snapshot onto any shard.
  std::optional<kg::TaskId> first_missing_task(
      const DeploymentSnapshot& older) const;

  /// Peak arena bytes one serving worker needs for any micro-batch of up to
  /// `max_batch` images on any (task, config) this snapshot serves — the
  /// capacity InferenceServer sizes per-worker arenas with at install time.
  /// Measured, not estimated: probes each deployable model once on a
  /// zero-filled [max_batch, C, H, W] batch (stacked batch included) under a
  /// zero-capacity arena, whose used() is exactly the required capacity by
  /// the bump-accounting rule (tensor/arena.h).
  int64_t plan_workspace(int64_t max_batch) const;

 private:
  int64_t version_ = 0;
  Shape expected_input_shape_;
  kg::TaskTable tasks_;
  std::map<kg::TaskId, std::shared_ptr<const vit::VitModel>> students_;
  std::shared_ptr<const quant::QuantizedVit> quantized_;
  DetectionPipeline pipeline_;
};

}  // namespace itask::core
