#include "data/attributes.h"

namespace itask::data {

namespace {

const std::array<std::string, kNumAttributes> kAttributeNames = {
    "metallic", "sharp",  "round",    "elongated", "large",  "small",
    "bright",   "dark",   "red_hue",  "green_hue", "blue_hue", "textured",
    "moving",   "fragile", "hazardous", "organic"};

const std::array<std::string, kNumClasses> kClassNames = {
    "background", "car",   "pedestrian", "traffic_cone", "scalpel",
    "gauze",      "syringe", "bolt",     "crack",        "gear",
    "fruit",      "bottle", "animal"};

// Prototype rows indexed by attribute order above. These encode the
// "commonsense" the simulated LLM draws on: e.g. scalpels are metallic,
// sharp, elongated, small and hazardous; gauze is bright and fragile.
struct Proto {
  ObjectClass cls;
  std::array<float, kNumAttributes> attrs;
};

constexpr float H = 1.0f;  // attribute definitely holds
constexpr float S = 0.6f;  // attribute usually holds (soft)

const Proto kPrototypes[] = {
    // metallic sharp round elong large small bright dark red grn blu text mov frag haz org
    {ObjectClass::kBackground,
     {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
    {ObjectClass::kCar,
     {H, 0, 0, S, H, 0, 0, 0, 0, 0, S, 0, S, 0, S, 0}},
    {ObjectClass::kPedestrian,
     {0, 0, 0, S, 0, 0, 0, 0, S, 0, 0, 0, S, H, S, H}},
    {ObjectClass::kTrafficCone,
     {0, S, 0, 0, 0, S, H, 0, H, 0, 0, S, 0, 0, S, 0}},
    {ObjectClass::kScalpel,
     {H, H, 0, H, 0, H, S, 0, 0, 0, 0, 0, 0, 0, H, 0}},
    {ObjectClass::kGauze,
     {0, 0, 0, 0, 0, 0, H, 0, 0, 0, 0, S, 0, H, 0, 0}},
    {ObjectClass::kSyringe,
     {S, H, 0, H, 0, H, S, 0, 0, 0, 0, 0, 0, H, S, 0}},
    {ObjectClass::kBolt,
     {H, 0, S, 0, 0, H, 0, S, 0, 0, 0, S, 0, 0, 0, 0}},
    {ObjectClass::kCrack,
     {0, S, 0, H, 0, 0, 0, H, 0, 0, 0, S, 0, 0, H, 0}},
    {ObjectClass::kGear,
     {H, 0, H, 0, 0, 0, 0, S, 0, 0, 0, H, 0, 0, 0, 0}},
    {ObjectClass::kFruit,
     {0, 0, H, 0, 0, S, S, 0, S, S, 0, 0, 0, S, 0, H}},
    {ObjectClass::kBottle,
     {0, 0, 0, H, 0, 0, S, 0, 0, S, 0, 0, 0, H, 0, 0}},
    {ObjectClass::kAnimal,
     {0, 0, S, 0, 0, 0, 0, S, 0, 0, 0, S, H, 0, S, H}},
};

}  // namespace

const std::string& attribute_name(Attribute a) {
  const int64_t i = attr_index(a);
  ITASK_CHECK(i >= 0 && i < kNumAttributes, "attribute index out of range");
  return kAttributeNames[static_cast<size_t>(i)];
}

const std::string& class_name(ObjectClass c) {
  const int64_t i = class_index(c);
  ITASK_CHECK(i >= 0 && i < kNumClasses, "class index out of range");
  return kClassNames[static_cast<size_t>(i)];
}

Tensor class_attribute_prototype(ObjectClass c) {
  const int64_t i = class_index(c);
  ITASK_CHECK(i >= 0 && i < kNumClasses, "class index out of range");
  const Proto& p = kPrototypes[i];
  ITASK_CHECK(p.cls == c, "prototype table order mismatch");
  Tensor out({kNumAttributes});
  for (int64_t j = 0; j < kNumAttributes; ++j)
    out[j] = p.attrs[static_cast<size_t>(j)];
  return out;
}

}  // namespace itask::data
