// The abstract attribute vocabulary and object-class ontology of the
// synthetic iTask domain (DESIGN.md §4: substitutes the paper's real-world
// datasets while preserving exact attribute ground truth).
//
// Every object class has a prototype attribute vector; instance-level
// attributes (size, hue, motion) are derived from the rendered instance so
// the vision model can actually ground them in pixels.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace itask::data {

/// Abstract, task-level attributes. Each is visually grounded by the
/// renderer (e.g. kMetallic objects get a specular streak, kMoving objects a
/// motion-blur trail) so a detector can learn them from pixels.
enum class Attribute : int64_t {
  kMetallic = 0,
  kSharp,
  kRound,
  kElongated,
  kLarge,
  kSmall,
  kBright,
  kDark,
  kRedHue,
  kGreenHue,
  kBlueHue,
  kTextured,
  kMoving,
  kFragile,
  kHazardous,
  kOrganic,
  kCount  // sentinel
};

inline constexpr int64_t kNumAttributes =
    static_cast<int64_t>(Attribute::kCount);

/// Object classes; kBackground occupies logit 0 so empty cells are a class.
enum class ObjectClass : int64_t {
  kBackground = 0,
  kCar,
  kPedestrian,
  kTrafficCone,
  kScalpel,
  kGauze,
  kSyringe,
  kBolt,
  kCrack,
  kGear,
  kFruit,
  kBottle,
  kAnimal,
  kCount  // sentinel
};

inline constexpr int64_t kNumClasses = static_cast<int64_t>(ObjectClass::kCount);

const std::string& attribute_name(Attribute a);
const std::string& class_name(ObjectClass c);

/// Index helpers.
inline int64_t attr_index(Attribute a) { return static_cast<int64_t>(a); }
inline int64_t class_index(ObjectClass c) { return static_cast<int64_t>(c); }

/// The class-level prototype attribute vector (values in [0,1]; instance
/// attributes refine size/hue/motion entries). Background is all zeros.
Tensor class_attribute_prototype(ObjectClass c);

}  // namespace itask::data
