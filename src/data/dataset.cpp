#include "data/dataset.h"

#include <algorithm>
#include <cmath>

namespace itask::data {

void encode_box(const BoxPx& box, int64_t cell, int64_t grid, float cell_px,
                float* out4) {
  const int64_t gy = cell / grid;
  const int64_t gx = cell % grid;
  const float cell_cx = (static_cast<float>(gx) + 0.5f) * cell_px;
  const float cell_cy = (static_cast<float>(gy) + 0.5f) * cell_px;
  out4[0] = (box.cx - cell_cx) / cell_px;
  out4[1] = (box.cy - cell_cy) / cell_px;
  out4[2] = std::log(std::max(box.w, 1e-3f) / cell_px);
  out4[3] = std::log(std::max(box.h, 1e-3f) / cell_px);
}

BoxPx decode_box(const float* delta4, int64_t cell, int64_t grid,
                 float cell_px) {
  const int64_t gy = cell / grid;
  const int64_t gx = cell % grid;
  BoxPx box;
  box.cx = (static_cast<float>(gx) + 0.5f) * cell_px + delta4[0] * cell_px;
  box.cy = (static_cast<float>(gy) + 0.5f) * cell_px + delta4[1] * cell_px;
  box.w = std::exp(std::clamp(delta4[2], -4.0f, 4.0f)) * cell_px;
  box.h = std::exp(std::clamp(delta4[3], -4.0f, 4.0f)) * cell_px;
  return box;
}

Dataset::Dataset(std::vector<Scene> scenes) : scenes_(std::move(scenes)) {}

Dataset Dataset::generate(const SceneGenerator& generator, int64_t count,
                          Rng& rng) {
  return Dataset(generator.generate_many(count, rng));
}

const Scene& Dataset::scene(int64_t i) const {
  ITASK_CHECK(i >= 0 && i < size(), "Dataset: scene index out of range");
  return scenes_[static_cast<size_t>(i)];
}

Batch Dataset::make_batch(std::span<const int64_t> indices,
                          const TaskSpec* task) const {
  ITASK_CHECK(!indices.empty(), "Dataset: empty batch");
  const Scene& first = scene(indices[0]);
  const int64_t grid = first.grid;
  const int64_t t = grid * grid;
  const int64_t img = first.image_size;
  const float cell_px = static_cast<float>(img) / static_cast<float>(grid);
  const int64_t b = static_cast<int64_t>(indices.size());

  Batch batch;
  batch.images = Tensor({b, 3, img, img});
  batch.objectness = Tensor({b, t, 1});
  batch.cell_class.assign(static_cast<size_t>(b * t), 0);
  batch.attributes = Tensor({b, t, kNumAttributes});
  batch.attr_mask = Tensor({b, t, kNumAttributes});
  batch.boxes = Tensor({b, t, 4});
  batch.box_mask = Tensor({b, t, 4});
  batch.relevance = Tensor({b, t, 1});

  for (int64_t bi = 0; bi < b; ++bi) {
    const Scene& s = scene(indices[static_cast<size_t>(bi)]);
    ITASK_CHECK(s.grid == grid && s.image_size == img,
                "Dataset: mixed scene geometry in one batch");
    batch.images.set_index(bi, s.image);
    for (const ObjectInstance& o : s.objects) {
      const int64_t cell = o.cell;
      ITASK_CHECK(cell >= 0 && cell < t, "Dataset: object cell out of range");
      batch.objectness.at({bi, cell, 0}) = 1.0f;
      batch.cell_class[static_cast<size_t>(bi * t + cell)] =
          class_index(o.cls);
      for (int64_t a = 0; a < kNumAttributes; ++a) {
        batch.attributes.at({bi, cell, a}) = o.attributes[a];
        batch.attr_mask.at({bi, cell, a}) = 1.0f;
      }
      float enc[4];
      encode_box(o.box, cell, grid, cell_px, enc);
      for (int64_t j = 0; j < 4; ++j) {
        batch.boxes.at({bi, cell, j}) = enc[j];
        batch.box_mask.at({bi, cell, j}) = 1.0f;
      }
      if (task != nullptr && task->is_relevant(o.attributes))
        batch.relevance.at({bi, cell, 0}) = 1.0f;
    }
  }
  return batch;
}

std::vector<int64_t> Dataset::all_indices() const {
  std::vector<int64_t> out(static_cast<size_t>(size()));
  for (int64_t i = 0; i < size(); ++i) out[static_cast<size_t>(i)] = i;
  return out;
}

std::vector<int64_t> sample_few_shot(const Dataset& dataset,
                                     const TaskSpec& task, int64_t shots,
                                     Rng& rng) {
  std::vector<int64_t> positives;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    for (const ObjectInstance& o : dataset.scene(i).objects) {
      if (task.is_relevant(o.attributes)) {
        positives.push_back(i);
        break;
      }
    }
  }
  ITASK_CHECK(!positives.empty(),
              "sample_few_shot: no scene contains a task-relevant object");
  rng.shuffle(positives);
  if (static_cast<int64_t>(positives.size()) > shots)
    positives.resize(static_cast<size_t>(shots));
  std::sort(positives.begin(), positives.end());
  return positives;
}

}  // namespace itask::data
