// Datasets: scene collections with batch/label extraction for training the
// detection ViT, plus the few-shot sampler used by experiment F2.
#pragma once

#include <span>
#include <vector>

#include "data/generator.h"
#include "data/scene.h"
#include "data/tasks.h"

namespace itask::data {

/// Supervision for one batch, aligned with VitModel outputs.
/// T = grid*grid cells per image.
struct Batch {
  Tensor images;      // [B, C, H, W]
  Tensor objectness;  // [B, T, 1] 1 where the cell holds an object
  std::vector<int64_t> cell_class;  // B*T class labels (background = 0)
  Tensor attributes;  // [B, T, A] instance attribute targets (0 on empty)
  Tensor attr_mask;   // [B, T, A] 1 on object cells (supervise only there)
  Tensor boxes;       // [B, T, 4] encoded deltas (dx, dy, log w, log h)
  Tensor box_mask;    // [B, T, 4] 1 on object cells
  /// Per-cell task relevance (only filled by task-specific datasets):
  Tensor relevance;   // [B, T, 1] 1 where the object is relevant to the task
};

/// Encodes an object's box relative to its grid cell.
void encode_box(const BoxPx& box, int64_t cell, int64_t grid, float cell_px,
                float* out4);

/// Decodes head predictions back to a pixel box.
BoxPx decode_box(const float* delta4, int64_t cell, int64_t grid,
                 float cell_px);

/// A collection of scenes with deterministic batching.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Scene> scenes);

  /// Convenience: generate `count` scenes with the given generator.
  static Dataset generate(const SceneGenerator& generator, int64_t count,
                          Rng& rng);

  int64_t size() const { return static_cast<int64_t>(scenes_.size()); }
  const Scene& scene(int64_t i) const;
  const std::vector<Scene>& scenes() const { return scenes_; }

  /// Builds supervision for the given scene indices. When `task` is non-null
  /// the `relevance` tensor is filled from the task's ground-truth predicate.
  Batch make_batch(std::span<const int64_t> indices,
                   const TaskSpec* task = nullptr) const;

  /// All indices [0, size), convenient for full-dataset evaluation.
  std::vector<int64_t> all_indices() const;

 private:
  std::vector<Scene> scenes_;
};

/// Draws K scenes per task such that each drawn scene contains at least one
/// task-relevant object (the paper's "limited samples" regime).
std::vector<int64_t> sample_few_shot(const Dataset& dataset,
                                     const TaskSpec& task, int64_t shots,
                                     Rng& rng);

}  // namespace itask::data
