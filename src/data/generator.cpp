#include "data/generator.h"

#include <algorithm>

namespace itask::data {

SceneGenerator::SceneGenerator(GeneratorOptions options)
    : options_(std::move(options)) {
  ITASK_CHECK(options_.image_size % options_.grid == 0,
              "SceneGenerator: image_size must be divisible by grid");
  ITASK_CHECK(options_.min_objects >= 0 &&
                  options_.max_objects >= options_.min_objects,
              "SceneGenerator: bad object count range");
  ITASK_CHECK(options_.max_objects <= options_.grid * options_.grid,
              "SceneGenerator: more objects than cells");
  if (options_.class_pool.has_value()) {
    pool_ = *options_.class_pool;
    ITASK_CHECK(!pool_.empty(), "SceneGenerator: empty class pool");
  } else {
    for (int64_t c = 1; c < kNumClasses; ++c)
      pool_.push_back(static_cast<ObjectClass>(c));
  }
}

ObjectInstance SceneGenerator::make_object(int64_t cell, Rng& rng) const {
  ObjectInstance o;
  o.cls = pool_[static_cast<size_t>(
      rng.randint(0, static_cast<int64_t>(pool_.size()) - 1))];
  o.cell = cell;
  float r, g, b;
  class_base_color(o.cls, r, g, b);
  const float j = options_.color_jitter;
  o.r = std::clamp(r + rng.uniform(-j, j), 0.0f, 1.0f);
  o.g = std::clamp(g + rng.uniform(-j, j), 0.0f, 1.0f);
  o.b = std::clamp(b + rng.uniform(-j, j), 0.0f, 1.0f);
  o.scale = rng.uniform(options_.min_scale, options_.max_scale);
  // Classes whose prototype allows motion may move (cars, people, animals…).
  const Tensor proto = class_attribute_prototype(o.cls);
  const float moving_prior = proto[attr_index(Attribute::kMoving)];
  o.moving = moving_prior > 0.0f && rng.bernoulli(0.5 * moving_prior);

  const float cell_px =
      static_cast<float>(options_.image_size) / static_cast<float>(options_.grid);
  const int64_t gy = cell / options_.grid;
  const int64_t gx = cell % options_.grid;
  float aw, ah;
  class_aspect(o.cls, aw, ah);
  const float cj = options_.center_jitter * cell_px;
  o.box.cx = (static_cast<float>(gx) + 0.5f) * cell_px + rng.uniform(-cj, cj);
  o.box.cy = (static_cast<float>(gy) + 0.5f) * cell_px + rng.uniform(-cj, cj);
  o.box.w = std::max(2.0f, o.scale * aw * cell_px);
  o.box.h = std::max(2.0f, o.scale * ah * cell_px);
  o.attributes =
      resolve_instance_attributes(o.cls, o.scale, o.r, o.g, o.b, o.moving);
  return o;
}

Scene SceneGenerator::generate(Rng& rng) const {
  Scene scene;
  scene.image_size = options_.image_size;
  scene.grid = options_.grid;
  const int64_t cells = options_.grid * options_.grid;
  const int64_t count =
      rng.randint(options_.min_objects, options_.max_objects);
  const std::vector<int64_t> chosen = rng.sample_indices(cells, count);
  scene.objects.reserve(static_cast<size_t>(count));
  for (int64_t cell : chosen) scene.objects.push_back(make_object(cell, rng));
  render_scene(scene, rng);
  return scene;
}

std::vector<Scene> SceneGenerator::generate_many(int64_t count,
                                                 Rng& rng) const {
  std::vector<Scene> scenes;
  scenes.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) scenes.push_back(generate(rng));
  return scenes;
}

}  // namespace itask::data
