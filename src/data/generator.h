// Random scene generation with exact ground truth.
#pragma once

#include <optional>
#include <vector>

#include "data/renderer.h"
#include "data/scene.h"
#include "tensor/rng.h"

namespace itask::data {

struct GeneratorOptions {
  int64_t image_size = 24;
  int64_t grid = 3;              // detection cells per side
  int64_t min_objects = 1;
  int64_t max_objects = 4;
  float color_jitter = 0.08f;    // uniform jitter on the base colour
  float min_scale = 0.45f;
  float max_scale = 1.0f;
  float center_jitter = 0.12f;   // centre offset as a fraction of the cell
  /// When set, only these classes are sampled (used for class-skewed
  /// corpora, e.g. domain-specific examples).
  std::optional<std::vector<ObjectClass>> class_pool;
};

/// Generates labelled scenes: objects in distinct grid cells, instance
/// attributes resolved via resolve_instance_attributes, image rasterized.
class SceneGenerator {
 public:
  explicit SceneGenerator(GeneratorOptions options = {});

  Scene generate(Rng& rng) const;

  /// Generates a batch of scenes.
  std::vector<Scene> generate_many(int64_t count, Rng& rng) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  ObjectInstance make_object(int64_t cell, Rng& rng) const;

  GeneratorOptions options_;
  std::vector<ObjectClass> pool_;
};

}  // namespace itask::data
