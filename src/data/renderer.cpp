#include "data/renderer.h"

#include <algorithm>
#include <cmath>

namespace itask::data {

Canvas::Canvas(Tensor& image) : image_(&image) {
  ITASK_CHECK(image.ndim() == 3 && image.dim(0) == 3,
              "Canvas: need a [3, H, W] image");
  h_ = image.dim(1);
  w_ = image.dim(2);
}

void Canvas::blend(int64_t x, int64_t y, float r, float g, float b,
                   float alpha) {
  if (x < 0 || x >= w_ || y < 0 || y >= h_) return;
  auto px = image_->data();
  const int64_t plane = h_ * w_;
  const int64_t off = y * w_ + x;
  px[off] = px[off] * (1.0f - alpha) + r * alpha;
  px[plane + off] = px[plane + off] * (1.0f - alpha) + g * alpha;
  px[2 * plane + off] = px[2 * plane + off] * (1.0f - alpha) + b * alpha;
}

void Canvas::fill_rect(float x0, float y0, float x1, float y1, float r,
                       float g, float b, float alpha) {
  const int64_t ix0 = static_cast<int64_t>(std::floor(x0));
  const int64_t iy0 = static_cast<int64_t>(std::floor(y0));
  const int64_t ix1 = static_cast<int64_t>(std::ceil(x1));
  const int64_t iy1 = static_cast<int64_t>(std::ceil(y1));
  for (int64_t y = iy0; y < iy1; ++y)
    for (int64_t x = ix0; x < ix1; ++x) blend(x, y, r, g, b, alpha);
}

void Canvas::fill_circle(float cx, float cy, float radius, float r, float g,
                         float b, float alpha) {
  const int64_t ix0 = static_cast<int64_t>(std::floor(cx - radius));
  const int64_t iy0 = static_cast<int64_t>(std::floor(cy - radius));
  const int64_t ix1 = static_cast<int64_t>(std::ceil(cx + radius));
  const int64_t iy1 = static_cast<int64_t>(std::ceil(cy + radius));
  const float r2 = radius * radius;
  for (int64_t y = iy0; y <= iy1; ++y)
    for (int64_t x = ix0; x <= ix1; ++x) {
      const float dx = static_cast<float>(x) + 0.5f - cx;
      const float dy = static_cast<float>(y) + 0.5f - cy;
      if (dx * dx + dy * dy <= r2) blend(x, y, r, g, b, alpha);
    }
}

void Canvas::fill_triangle(float x0, float y0, float x1, float y1, float r,
                           float g, float b, float alpha) {
  // Apex at top-centre, base along the bottom edge of the box.
  const float apex_x = 0.5f * (x0 + x1);
  const int64_t iy0 = static_cast<int64_t>(std::floor(y0));
  const int64_t iy1 = static_cast<int64_t>(std::ceil(y1));
  const float height = std::max(y1 - y0, 1e-3f);
  for (int64_t y = iy0; y < iy1; ++y) {
    const float t =
        std::clamp((static_cast<float>(y) + 0.5f - y0) / height, 0.0f, 1.0f);
    const float half = 0.5f * (x1 - x0) * t;
    const int64_t xs = static_cast<int64_t>(std::floor(apex_x - half));
    const int64_t xe = static_cast<int64_t>(std::ceil(apex_x + half));
    for (int64_t x = xs; x < xe; ++x) blend(x, y, r, g, b, alpha);
  }
}

void Canvas::draw_line(float x0, float y0, float x1, float y1, float r,
                       float g, float b, float thickness, float alpha) {
  const float dx = x1 - x0, dy = y1 - y0;
  const float len = std::max(std::sqrt(dx * dx + dy * dy), 1e-3f);
  const int64_t steps = static_cast<int64_t>(std::ceil(len * 2.0f));
  const float half = 0.5f * thickness;
  for (int64_t s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / static_cast<float>(steps);
    const float px = x0 + dx * t;
    const float py = y0 + dy * t;
    if (thickness <= 1.0f) {
      blend(static_cast<int64_t>(px), static_cast<int64_t>(py), r, g, b,
            alpha);
    } else {
      fill_circle(px, py, half, r, g, b, alpha);
    }
  }
}

void class_base_color(ObjectClass cls, float& r, float& g, float& b) {
  switch (cls) {
    case ObjectClass::kCar:         r = 0.20f; g = 0.30f; b = 0.85f; return;
    case ObjectClass::kPedestrian:  r = 0.80f; g = 0.40f; b = 0.30f; return;
    case ObjectClass::kTrafficCone: r = 0.95f; g = 0.60f; b = 0.15f; return;
    case ObjectClass::kScalpel:     r = 0.82f; g = 0.84f; b = 0.88f; return;
    case ObjectClass::kGauze:       r = 0.92f; g = 0.92f; b = 0.88f; return;
    case ObjectClass::kSyringe:     r = 0.75f; g = 0.80f; b = 0.86f; return;
    case ObjectClass::kBolt:        r = 0.42f; g = 0.42f; b = 0.48f; return;
    case ObjectClass::kCrack:       r = 0.14f; g = 0.12f; b = 0.10f; return;
    case ObjectClass::kGear:        r = 0.45f; g = 0.45f; b = 0.50f; return;
    case ObjectClass::kFruit:       r = 0.30f; g = 0.80f; b = 0.30f; return;
    case ObjectClass::kBottle:      r = 0.40f; g = 0.75f; b = 0.52f; return;
    case ObjectClass::kAnimal:      r = 0.48f; g = 0.32f; b = 0.20f; return;
    default:                        r = 0.5f;  g = 0.5f;  b = 0.5f;  return;
  }
}

void class_aspect(ObjectClass cls, float& aspect_w, float& aspect_h) {
  switch (cls) {
    case ObjectClass::kCar:         aspect_w = 1.0f; aspect_h = 0.6f; return;
    case ObjectClass::kPedestrian:  aspect_w = 0.45f; aspect_h = 1.0f; return;
    case ObjectClass::kTrafficCone: aspect_w = 0.8f; aspect_h = 0.9f; return;
    case ObjectClass::kScalpel:     aspect_w = 1.0f; aspect_h = 1.0f; return;
    case ObjectClass::kGauze:       aspect_w = 0.9f; aspect_h = 0.9f; return;
    case ObjectClass::kSyringe:     aspect_w = 0.3f; aspect_h = 1.0f; return;
    case ObjectClass::kBolt:        aspect_w = 0.6f; aspect_h = 0.6f; return;
    case ObjectClass::kCrack:       aspect_w = 1.0f; aspect_h = 1.0f; return;
    case ObjectClass::kGear:        aspect_w = 0.9f; aspect_h = 0.9f; return;
    case ObjectClass::kFruit:       aspect_w = 0.7f; aspect_h = 0.7f; return;
    case ObjectClass::kBottle:      aspect_w = 0.5f; aspect_h = 1.0f; return;
    case ObjectClass::kAnimal:      aspect_w = 0.9f; aspect_h = 0.7f; return;
    default:                        aspect_w = 0.8f; aspect_h = 0.8f; return;
  }
}

namespace {

/// Attribute-cue overlays shared by all classes.
void render_cues(Canvas& canvas, const ObjectInstance& o) {
  const BoxPx& bx = o.box;
  const float metallic =
      o.attributes[attr_index(Attribute::kMetallic)];
  if (metallic > 0.5f) {
    // Specular streak: a bright diagonal highlight.
    canvas.draw_line(bx.x0() + 0.2f * bx.w, bx.y0() + 0.2f * bx.h,
                     bx.x0() + 0.6f * bx.w, bx.y0() + 0.6f * bx.h, 1.0f, 1.0f,
                     1.0f, 1.0f, 0.8f);
  }
  const float textured = o.attributes[attr_index(Attribute::kTextured)];
  if (textured > 0.5f) {
    // Dot pattern.
    for (float fy = 0.25f; fy < 1.0f; fy += 0.35f)
      for (float fx = 0.25f; fx < 1.0f; fx += 0.35f)
        canvas.blend(static_cast<int64_t>(bx.x0() + fx * bx.w),
                     static_cast<int64_t>(bx.y0() + fy * bx.h), 0.05f, 0.05f,
                     0.05f, 0.9f);
  }
  if (o.moving) {
    // Motion cue: bright horizontal speed-lines streaking through the
    // object plus a fading ghost bar trailing left — the pixel-level
    // grounding of the abstract "moving" attribute.
    const float lr = std::min(1.0f, o.r + 0.45f);
    const float lg = std::min(1.0f, o.g + 0.45f);
    const float lb = std::min(1.0f, o.b + 0.45f);
    canvas.draw_line(bx.x0() - 2.0f, bx.y0() + 0.33f * bx.h, bx.x1(),
                     bx.y0() + 0.33f * bx.h, lr, lg, lb, 1.0f, 0.9f);
    canvas.draw_line(bx.x0() - 2.0f, bx.y0() + 0.66f * bx.h, bx.x1(),
                     bx.y0() + 0.66f * bx.h, lr, lg, lb, 1.0f, 0.9f);
    for (int s = 1; s <= 2; ++s) {
      const float alpha = 0.5f / static_cast<float>(s);
      const float x = bx.x0() - 1.2f * static_cast<float>(s);
      canvas.fill_rect(x, bx.y0(), x + 1.2f, bx.y1(), o.r, o.g, o.b, alpha);
    }
  }
}

}  // namespace

void render_object(Canvas& canvas, const ObjectInstance& o) {
  const BoxPx& bx = o.box;
  switch (o.cls) {
    case ObjectClass::kCar: {
      canvas.fill_rect(bx.x0(), bx.y0() + 0.25f * bx.h, bx.x1(), bx.y1(), o.r,
                       o.g, o.b);
      canvas.fill_rect(bx.x0() + 0.2f * bx.w, bx.y0(), bx.x1() - 0.2f * bx.w,
                       bx.y0() + 0.4f * bx.h, o.r * 0.7f, o.g * 0.7f,
                       o.b * 0.7f);
      break;
    }
    case ObjectClass::kPedestrian: {
      canvas.fill_circle(bx.cx, bx.y0() + 0.18f * bx.h, 0.16f * bx.h, o.r, o.g,
                         o.b);
      canvas.fill_rect(bx.cx - 0.18f * bx.w, bx.y0() + 0.32f * bx.h,
                       bx.cx + 0.18f * bx.w, bx.y1(), o.r, o.g, o.b);
      break;
    }
    case ObjectClass::kTrafficCone:
      canvas.fill_triangle(bx.x0(), bx.y0(), bx.x1(), bx.y1(), o.r, o.g, o.b);
      break;
    case ObjectClass::kScalpel:
      canvas.draw_line(bx.x0(), bx.y1(), bx.x1(), bx.y0(), o.r, o.g, o.b,
                       1.2f);
      break;
    case ObjectClass::kGauze:
      canvas.fill_rect(bx.x0(), bx.y0(), bx.x1(), bx.y1(), o.r, o.g, o.b,
                       0.85f);
      break;
    case ObjectClass::kSyringe:
      canvas.draw_line(bx.cx, bx.y0(), bx.cx, bx.y1(), o.r, o.g, o.b, 1.6f);
      canvas.draw_line(bx.cx, bx.y1() - 0.2f * bx.h, bx.cx,
                       bx.y1(), o.r * 0.6f, o.g * 0.6f, o.b * 0.6f, 0.8f);
      break;
    case ObjectClass::kBolt:
      canvas.fill_circle(bx.cx, bx.cy, 0.45f * std::min(bx.w, bx.h), o.r, o.g,
                         o.b);
      break;
    case ObjectClass::kCrack: {
      // Zig-zag dark line.
      const float seg = bx.h / 3.0f;
      float x = bx.x0(), y = bx.y0();
      for (int s = 0; s < 3; ++s) {
        const float nx = (s % 2 == 0) ? bx.x1() : bx.x0();
        canvas.draw_line(x, y, nx, y + seg, o.r, o.g, o.b, 1.0f);
        x = nx;
        y += seg;
      }
      break;
    }
    case ObjectClass::kGear: {
      const float rad = 0.42f * std::min(bx.w, bx.h);
      canvas.fill_circle(bx.cx, bx.cy, rad, o.r, o.g, o.b);
      for (int s = 0; s < 4; ++s) {
        const float a = static_cast<float>(s) * 0.785398f;
        canvas.draw_line(bx.cx - rad * std::cos(a), bx.cy - rad * std::sin(a),
                         bx.cx + rad * std::cos(a), bx.cy + rad * std::sin(a),
                         o.r * 1.4f, o.g * 1.4f, o.b * 1.4f, 0.8f);
      }
      break;
    }
    case ObjectClass::kFruit:
      canvas.fill_circle(bx.cx, bx.cy, 0.48f * std::min(bx.w, bx.h), o.r, o.g,
                         o.b);
      canvas.draw_line(bx.cx, bx.y0(), bx.cx, bx.y0() + 0.2f * bx.h, 0.3f,
                       0.2f, 0.1f, 0.8f);
      break;
    case ObjectClass::kBottle:
      canvas.fill_rect(bx.x0(), bx.y0() + 0.25f * bx.h, bx.x1(), bx.y1(), o.r,
                       o.g, o.b, 0.9f);
      canvas.fill_rect(bx.cx - 0.15f * bx.w, bx.y0(), bx.cx + 0.15f * bx.w,
                       bx.y0() + 0.3f * bx.h, o.r, o.g, o.b, 0.9f);
      break;
    case ObjectClass::kAnimal:
      canvas.fill_circle(bx.cx, bx.cy + 0.1f * bx.h,
                         0.4f * std::min(bx.w, bx.h), o.r, o.g, o.b);
      canvas.fill_circle(bx.x0() + 0.25f * bx.w, bx.y0() + 0.25f * bx.h,
                         0.18f * std::min(bx.w, bx.h), o.r, o.g, o.b);
      break;
    default:
      break;
  }
  render_cues(canvas, o);
}

void apply_occlusion(Scene& scene, const OcclusionOptions& options, Rng& rng) {
  ITASK_CHECK(options.severity >= 0.0f && options.severity < 1.0f,
              "apply_occlusion: severity must be in [0, 1)");
  ITASK_CHECK(
      options.truncation_prob >= 0.0f && options.truncation_prob <= 1.0f,
      "apply_occlusion: truncation_prob must be in [0, 1]");
  ITASK_CHECK(options.occlude_prob >= 0.0f && options.occlude_prob <= 1.0f,
              "apply_occlusion: occlude_prob must be in [0, 1]");
  if (options.severity == 0.0f) return;  // exact no-op, image untouched
  ITASK_CHECK(scene.image.ndim() == 3, "apply_occlusion: scene not rendered");
  Canvas canvas(scene.image);
  const float size = static_cast<float>(scene.image_size);
  for (const ObjectInstance& o : scene.objects) {
    if (!rng.bernoulli(options.occlude_prob)) continue;
    const BoxPx& bx = o.box;
    const bool truncate = rng.bernoulli(options.truncation_prob);
    // Sides: 0 = left, 1 = top, 2 = right, 3 = bottom. Truncation eats from
    // the box's nearest image border (that is what leaving the frame looks
    // like); overlap picks a random side.
    int64_t side;
    if (truncate) {
      const float margins[4] = {bx.x0(), bx.y0(), size - bx.x1(),
                                size - bx.y1()};
      side = 0;
      for (int64_t s = 1; s < 4; ++s)
        if (margins[s] < margins[side]) side = s;
    } else {
      side = rng.randint(0, 3);
    }
    // The covered slice: `severity` of the box, measured from `side`.
    float x0 = bx.x0(), y0 = bx.y0(), x1 = bx.x1(), y1 = bx.y1();
    switch (side) {
      case 0: x1 = x0 + options.severity * bx.w; break;
      case 1: y1 = y0 + options.severity * bx.h; break;
      case 2: x0 = x1 - options.severity * bx.w; break;
      default: y0 = y1 - options.severity * bx.h; break;
    }
    if (truncate) {
      // Revert to background: per-pixel noise drawn from render_scene's own
      // background distribution, so a truncated slice is indistinguishable
      // from never-rendered canvas.
      const int64_t ix0 = static_cast<int64_t>(std::floor(x0));
      const int64_t iy0 = static_cast<int64_t>(std::floor(y0));
      const int64_t ix1 = static_cast<int64_t>(std::ceil(x1));
      const int64_t iy1 = static_cast<int64_t>(std::ceil(y1));
      for (int64_t y = iy0; y < iy1; ++y)
        for (int64_t x = ix0; x < ix1; ++x)
          canvas.blend(x, y, rng.uniform(0.05f, 0.15f),
                       rng.uniform(0.05f, 0.15f), rng.uniform(0.05f, 0.15f));
    } else {
      // Foreign occluder: a matte gray slab with a slight cool tint, opaque
      // enough to erase the cues underneath.
      const float shade = rng.uniform(0.25f, 0.45f);
      canvas.fill_rect(x0, y0, x1, y1, shade, shade,
                       std::min(1.0f, shade + rng.uniform(0.0f, 0.06f)));
    }
  }
}

void render_scene(Scene& scene, Rng& rng) {
  ITASK_CHECK(scene.image_size > 0, "render_scene: scene not initialised");
  scene.image = Tensor({3, scene.image_size, scene.image_size});
  // Low-amplitude background noise so "empty" is not exactly zero.
  for (float& v : scene.image.data()) v = rng.uniform(0.05f, 0.15f);
  Canvas canvas(scene.image);
  for (const ObjectInstance& o : scene.objects) render_object(canvas, o);
}

}  // namespace itask::data
