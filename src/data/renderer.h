// Tiny software rasterizer that draws object instances into scene images.
// Every abstract attribute has a pixel-level cue (metallic → specular streak,
// moving → motion trail, textured → dot pattern, …) so the detector can
// ground attributes visually — the property the iTask evaluation relies on.
#pragma once

#include "data/scene.h"
#include "tensor/rng.h"

namespace itask::data {

/// Mutable view over a [3, H, W] image tensor with drawing primitives.
class Canvas {
 public:
  explicit Canvas(Tensor& image);

  int64_t width() const { return w_; }
  int64_t height() const { return h_; }

  /// Alpha-blends a pixel; coordinates outside the canvas are ignored.
  void blend(int64_t x, int64_t y, float r, float g, float b,
             float alpha = 1.0f);

  void fill_rect(float x0, float y0, float x1, float y1, float r, float g,
                 float b, float alpha = 1.0f);
  void fill_circle(float cx, float cy, float radius, float r, float g, float b,
                   float alpha = 1.0f);
  /// Upward-pointing triangle inscribed in the given box.
  void fill_triangle(float x0, float y0, float x1, float y1, float r, float g,
                     float b, float alpha = 1.0f);
  void draw_line(float x0, float y0, float x1, float y1, float r, float g,
                 float b, float thickness = 1.0f, float alpha = 1.0f);

 private:
  Tensor* image_;
  int64_t h_;
  int64_t w_;
};

/// Draws one object (shape chosen by its class) into the canvas, including
/// the attribute cues derived from the instance (specular, trail, texture).
void render_object(Canvas& canvas, const ObjectInstance& object);

/// Fills the background with low-amplitude noise, then renders all objects.
void render_scene(Scene& scene, Rng& rng);

/// Seeded partial-occlusion corruption for the F8 scenario family. Applied
/// AFTER render_scene, purely on pixels: ground truth (scene.objects) is
/// untouched, so occlusion degrades what the detector can see without moving
/// the evaluation targets — the same contract as F5's additive noise.
struct OcclusionOptions {
  /// Fraction of each occluded object's box that gets covered, in [0, 1).
  /// 0 is an exact no-op (the image tensor is not touched at all).
  float severity = 0.0f;
  /// Probability an occluded object is truncated at its nearest image border
  /// (the covered slice reverts to background noise, as if the object left
  /// the frame) instead of overlapped by a foreign gray slab.
  float truncation_prob = 0.35f;
  /// Probability each object is occluded at all.
  float occlude_prob = 1.0f;
};

/// Covers `severity` of each selected object's box from one side: border
/// truncation repaints the slice with the renderer's own background noise,
/// object overlap drops a matte occluder slab over it. Deterministic in
/// (scene, options, rng state).
void apply_occlusion(Scene& scene, const OcclusionOptions& options, Rng& rng);

/// Canonical base colour for a class (pre-jitter).
void class_base_color(ObjectClass cls, float& r, float& g, float& b);

/// Width/height aspect (relative to the cell) the renderer uses per class.
void class_aspect(ObjectClass cls, float& aspect_w, float& aspect_h);

}  // namespace itask::data
