#include "data/scene.h"

#include <algorithm>

namespace itask::data {

Tensor resolve_instance_attributes(ObjectClass cls, float scale, float r,
                                   float g, float b, bool moving) {
  Tensor attrs = class_attribute_prototype(cls);
  if (cls == ObjectClass::kBackground) return attrs;
  // Size attributes follow the rendered instance, not the class.
  attrs[attr_index(Attribute::kLarge)] = scale > 0.85f ? 1.0f : 0.0f;
  attrs[attr_index(Attribute::kSmall)] = scale < 0.55f ? 1.0f : 0.0f;
  // Hue attributes follow the dominant rendered channel.
  const float mx = std::max({r, g, b});
  attrs[attr_index(Attribute::kRedHue)] =
      (r == mx && r > 0.45f) ? 1.0f : 0.0f;
  attrs[attr_index(Attribute::kGreenHue)] =
      (g == mx && g > 0.45f) ? 1.0f : 0.0f;
  attrs[attr_index(Attribute::kBlueHue)] =
      (b == mx && b > 0.45f) ? 1.0f : 0.0f;
  // Brightness attributes follow overall luminance.
  const float lum = 0.299f * r + 0.587f * g + 0.114f * b;
  attrs[attr_index(Attribute::kBright)] = lum > 0.65f ? 1.0f : 0.0f;
  attrs[attr_index(Attribute::kDark)] = lum < 0.3f ? 1.0f : 0.0f;
  // Motion is purely per-instance.
  attrs[attr_index(Attribute::kMoving)] = moving ? 1.0f : 0.0f;
  return attrs;
}

}  // namespace itask::data
