// Scene model: object instances with exact attribute ground truth, plus the
// rendered image. One scene is one detection sample.
#pragma once

#include <vector>

#include "data/attributes.h"
#include "tensor/tensor.h"

namespace itask::data {

/// Geometry in pixel coordinates (origin top-left), boxes centre-based.
struct BoxPx {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;

  float x0() const { return cx - 0.5f * w; }
  float y0() const { return cy - 0.5f * h; }
  float x1() const { return cx + 0.5f * w; }
  float y1() const { return cy + 0.5f * h; }
  float area() const { return w * h; }
};

/// One placed object with its instance-resolved attribute vector.
struct ObjectInstance {
  ObjectClass cls = ObjectClass::kBackground;
  int64_t cell = -1;      // grid cell index (row-major) the centre falls in
  BoxPx box;              // pixel-space box
  float r = 0.5f, g = 0.5f, b = 0.5f;  // base colour
  float scale = 1.0f;     // relative size within the cell
  bool moving = false;    // rendered with a motion trail
  Tensor attributes;      // [kNumAttributes] instance ground truth in [0,1]
};

/// A full sample: image plus labelled objects.
struct Scene {
  Tensor image;                         // [C, H, W]
  std::vector<ObjectInstance> objects;  // at most one per grid cell
  int64_t image_size = 0;
  int64_t grid = 0;                     // cells per side
};

/// Resolves the instance attribute vector from the class prototype plus
/// instance properties (size / hue / motion overrides).
Tensor resolve_instance_attributes(ObjectClass cls, float scale, float r,
                                   float g, float b, bool moving);

}  // namespace itask::data
