#include "data/tasks.h"

namespace itask::data {

namespace {

Tensor weights(std::initializer_list<std::pair<Attribute, float>> entries) {
  Tensor w({kNumAttributes});
  for (const auto& [attr, value] : entries) w[attr_index(attr)] = value;
  return w;
}

std::vector<TaskSpec> build_library() {
  std::vector<TaskSpec> tasks;
  auto add = [&](std::string name, std::string description, Tensor pos,
                 Tensor neg, float threshold) {
    TaskSpec t;
    t.id = static_cast<int64_t>(tasks.size());
    t.name = std::move(name);
    t.description = std::move(description);
    t.positive = std::move(pos);
    t.negative = std::move(neg);
    t.threshold = threshold;
    tasks.push_back(std::move(t));
  };

  add("driving_hazards",
      "Detect hazardous obstacles and moving traffic participants that an "
      "autonomous vehicle must avoid on the road.",
      weights({{Attribute::kHazardous, 1.0f}, {Attribute::kMoving, 0.6f}}),
      weights({{Attribute::kSmall, 0.4f}}), 0.9f);

  add("surgical_sharps",
      "Find sharp metallic surgical instruments laid out on the operating "
      "tray before closing.",
      weights({{Attribute::kSharp, 0.6f},
               {Attribute::kMetallic, 0.5f},
               {Attribute::kSmall, 0.3f}}),
      Tensor({kNumAttributes}), 1.0f);

  add("fragile_items",
      "Identify fragile items that require careful handling and protective "
      "packaging in the warehouse.",
      weights({{Attribute::kFragile, 1.0f}}), Tensor({kNumAttributes}), 0.9f);

  add("organic_produce",
      "Pick out round organic produce items for the automated harvest "
      "sorting line.",
      weights({{Attribute::kOrganic, 0.7f}, {Attribute::kRound, 0.5f}}),
      Tensor({kNumAttributes}), 1.05f);

  add("metal_fasteners",
      "Locate small metallic fasteners and textured machine parts on the "
      "factory inspection belt.",
      weights({{Attribute::kMetallic, 0.7f},
               {Attribute::kSmall, 0.5f},
               {Attribute::kTextured, 0.35f}}),
      weights({{Attribute::kSharp, 0.4f}}), 0.9f);

  add("structural_defects",
      "Find dark elongated structural defects such as cracks in the "
      "inspected surface.",
      weights({{Attribute::kHazardous, 0.4f},
               {Attribute::kDark, 0.4f},
               {Attribute::kElongated, 0.4f}}),
      Tensor({kNumAttributes}), 0.9f);

  add("bright_markers",
      "Detect bright high-visibility markers and signage in the work zone.",
      weights({{Attribute::kBright, 1.0f}}),
      weights({{Attribute::kOrganic, 0.3f}}), 0.9f);

  add("moving_entities",
      "Track moving entities passing through the monitored area in "
      "real time.",
      weights({{Attribute::kMoving, 1.0f}}), Tensor({kNumAttributes}), 0.9f);

  return tasks;
}

}  // namespace

float TaskSpec::score(const Tensor& attributes) const {
  ITASK_CHECK(attributes.numel() == kNumAttributes,
              "TaskSpec::score: attribute vector size mismatch");
  float s = 0.0f;
  for (int64_t i = 0; i < kNumAttributes; ++i)
    s += attributes[i] * (positive[i] - negative[i]);
  return s;
}

const std::vector<TaskSpec>& task_library() {
  static const std::vector<TaskSpec> kLibrary = build_library();
  return kLibrary;
}

const TaskSpec& task_by_id(int64_t id) {
  const auto& lib = task_library();
  ITASK_CHECK(id >= 0 && id < static_cast<int64_t>(lib.size()),
              "task_by_id: unknown task id");
  return lib[static_cast<size_t>(id)];
}

}  // namespace itask::data
