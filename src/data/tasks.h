// Task specifications: the "missions" iTask detects objects for.
//
// A task is defined at the *attribute* level: positive/negative weights over
// the abstract attribute vocabulary plus a relevance threshold. Ground-truth
// relevance of an object is a deterministic predicate on its instance
// attributes — this is what makes the evaluation of knowledge-graph-guided
// detection exact. The natural-language `description` is what the simulated
// LLM (llm::Oracle) consumes to regenerate an approximate knowledge graph.
#pragma once

#include <string>
#include <vector>

#include "data/attributes.h"
#include "tensor/tensor.h"

namespace itask::data {

struct TaskSpec {
  int64_t id = -1;
  std::string name;
  std::string description;  // natural-language mission statement
  Tensor positive;          // [kNumAttributes] importance weights
  Tensor negative;          // [kNumAttributes] exclusion weights
  float threshold = 0.9f;

  /// Relevance score of an attribute vector under this task.
  float score(const Tensor& attributes) const;

  /// Ground-truth relevance predicate.
  bool is_relevant(const Tensor& attributes) const {
    return score(attributes) >= threshold;
  }
};

/// The eight canonical evaluation tasks (stable ids 0..7).
const std::vector<TaskSpec>& task_library();

/// Lookup by id; throws when out of range.
const TaskSpec& task_by_id(int64_t id);

}  // namespace itask::data
