#include "detect/ascii.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "data/attributes.h"

namespace itask::detect {

namespace {

// Dark → bright luminance ramp.
constexpr char kRamp[] = " .:-=+*%@";
constexpr int kRampMax = 8;

}  // namespace

std::string render_ascii(const data::Scene& scene,
                         const std::vector<Detection>& detections) {
  const int64_t h = scene.image.dim(1);
  const int64_t w = scene.image.dim(2);
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  auto px = scene.image.data();
  const int64_t plane = h * w;
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const float lum = 0.299f * px[y * w + x] +
                        0.587f * px[plane + y * w + x] +
                        0.114f * px[2 * plane + y * w + x];
      const int level = std::clamp(
          static_cast<int>(std::lround(lum * kRampMax)), 0, kRampMax);
      grid[static_cast<size_t>(y)][static_cast<size_t>(x)] = kRamp[level];
    }
  }
  // Overlay detection boxes.
  for (const Detection& d : detections) {
    const int64_t x0 = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(d.box.x0())), 0, w - 1);
    const int64_t x1 = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(d.box.x1())) - 1, 0, w - 1);
    const int64_t y0 = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(d.box.y0())), 0, h - 1);
    const int64_t y1 = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(d.box.y1())) - 1, 0, h - 1);
    for (int64_t x = x0; x <= x1; ++x) {
      grid[static_cast<size_t>(y0)][static_cast<size_t>(x)] = '#';
      grid[static_cast<size_t>(y1)][static_cast<size_t>(x)] = '#';
    }
    for (int64_t y = y0; y <= y1; ++y) {
      grid[static_cast<size_t>(y)][static_cast<size_t>(x0)] = '#';
      grid[static_cast<size_t>(y)][static_cast<size_t>(x1)] = '#';
    }
  }
  std::ostringstream os;
  os << '+' << std::string(static_cast<size_t>(w), '-') << "+\n";
  for (const std::string& row : grid) os << '|' << row << "|\n";
  os << '+' << std::string(static_cast<size_t>(w), '-') << "+\n";
  os << "ground truth:";
  for (const data::ObjectInstance& o : scene.objects)
    os << ' ' << data::class_name(o.cls) << "@cell" << o.cell;
  os << '\n';
  return os.str();
}

std::string describe(const Detection& detection) {
  std::ostringstream os;
  os << "cell " << detection.cell << " class="
     << data::class_name(
            static_cast<data::ObjectClass>(detection.predicted_class))
     << " obj=" << detection.objectness
     << " task_score=" << detection.task_score
     << " conf=" << detection.confidence;
  return os.str();
}

}  // namespace itask::detect
