// Terminal visualisation of scenes and detections — lets examples (and
// humans debugging the pipeline) see what the detector sees without an
// image viewer.
#pragma once

#include <string>
#include <vector>

#include "data/scene.h"
#include "detect/detection.h"

namespace itask::detect {

/// Renders the image as an ASCII luminance map (one char per pixel) with
/// detection boxes overlaid as '#' corners/edges. Ground-truth objects are
/// annotated below the map.
std::string render_ascii(const data::Scene& scene,
                         const std::vector<Detection>& detections);

/// One-line description of a detection ("cell 4 class=scalpel conf=0.93").
std::string describe(const Detection& detection);

}  // namespace itask::detect
