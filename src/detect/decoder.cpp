#include "detect/decoder.h"

#include <cmath>

#include "data/dataset.h"
#include "tensor/ops.h"

namespace itask::detect {

std::vector<std::vector<Detection>> decode(const vit::VitOutput& output,
                                            const DecoderOptions& options) {
  const Tensor& obj = output.objectness;  // [B, T, 1]
  ITASK_CHECK(obj.ndim() == 3, "decode: unexpected objectness shape");
  const int64_t b = obj.dim(0);
  const int64_t t = obj.dim(1);
  ITASK_CHECK(t == options.grid * options.grid,
              "decode: grid does not match token count");
  const int64_t c = output.class_logits.dim(2);
  const int64_t a = output.attr_logits.dim(2);
  const float cell_px = static_cast<float>(options.image_size) /
                        static_cast<float>(options.grid);

  Tensor class_probs = ops::softmax_lastdim(output.class_logits);
  Tensor attr_probs = ops::sigmoid(output.attr_logits);

  std::vector<std::vector<Detection>> result(static_cast<size_t>(b));
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t cell = 0; cell < t; ++cell) {
      const float logit = obj.at({bi, cell, 0});
      const float p_obj = 1.0f / (1.0f + std::exp(-logit));
      if (p_obj < options.objectness_threshold) continue;
      Detection d;
      d.cell = cell;
      d.objectness = p_obj;
      d.confidence = p_obj;  // pipeline refines with the task confidence
      float delta[4];
      for (int64_t j = 0; j < 4; ++j)
        delta[j] = output.box_deltas.at({bi, cell, j});
      d.box = data::decode_box(delta, cell, options.grid, cell_px);
      d.attr_probs = Tensor({a});
      for (int64_t j = 0; j < a; ++j)
        d.attr_probs[j] = attr_probs.at({bi, cell, j});
      d.class_probs = Tensor({c});
      float best = -1.0f;
      for (int64_t j = 0; j < c; ++j) {
        const float p = class_probs.at({bi, cell, j});
        d.class_probs[j] = p;
        if (p > best) {
          best = p;
          d.predicted_class = j;
        }
      }
      result[static_cast<size_t>(bi)].push_back(std::move(d));
    }
  }
  return result;
}

}  // namespace itask::detect
