// Decodes raw ViT head outputs into candidate detections (one grid cell at a
// time), applying the activation functions and box decoding.
#pragma once

#include <vector>

#include "detect/detection.h"
#include "vit/model.h"

namespace itask::detect {

struct DecoderOptions {
  float objectness_threshold = 0.5f;
  int64_t grid = 3;
  int64_t image_size = 24;
};

/// Decodes one batch of model outputs into per-image candidate lists.
/// Detections below the objectness threshold are dropped; task scoring and
/// NMS are applied later by the pipeline.
std::vector<std::vector<Detection>> decode(const vit::VitOutput& output,
                                           const DecoderOptions& options);

}  // namespace itask::detect
