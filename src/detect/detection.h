// Detection types shared by the decoder, NMS, metrics, and the core pipeline.
#pragma once

#include <vector>

#include "data/scene.h"
#include "tensor/tensor.h"

namespace itask::detect {

using data::BoxPx;

/// One decoded candidate detection.
struct Detection {
  BoxPx box;
  int64_t cell = -1;
  int64_t predicted_class = 0;
  float objectness = 0.0f;   // sigmoid(objectness logit)
  float task_score = 0.0f;   // knowledge-graph relevance score
  float confidence = 0.0f;   // ranking key (objectness × task confidence)
  Tensor attr_probs;         // [A]
  Tensor class_probs;        // [C]
};

/// Ground truth for evaluation: a box plus its task-relevance flag.
struct GroundTruthObject {
  BoxPx box;
  int64_t cls = 0;
  bool task_relevant = false;
};

}  // namespace itask::detect
