#include "detect/fusion.h"

#include <algorithm>
#include <utility>

#include "tensor/shape.h"

namespace itask::detect {
namespace {

// Lexicographic order over two probability vectors; empty sorts first so a
// decoder that omits attributes still gets a total order.
int compare_probs(const Tensor& a, const Tensor& b) {
  const auto av = a.data();
  const auto bv = b.data();
  const size_t n = std::min(av.size(), bv.size());
  for (size_t i = 0; i < n; ++i) {
    if (av[i] != bv[i]) return av[i] < bv[i] ? -1 : 1;
  }
  if (av.size() != bv.size()) return av.size() < bv.size() ? -1 : 1;
  return 0;
}

}  // namespace

bool fusion_order(const Detection& a, const Detection& b) {
  if (detection_order(a, b)) return true;
  if (detection_order(b, a)) return false;
  if (a.objectness != b.objectness) return a.objectness > b.objectness;
  if (a.task_score != b.task_score) return a.task_score > b.task_score;
  const int attr = compare_probs(a.attr_probs, b.attr_probs);
  if (attr != 0) return attr < 0;
  return compare_probs(a.class_probs, b.class_probs) < 0;
}

std::vector<Detection> fuse_views(
    const std::vector<std::vector<Detection>>& views,
    const FusionOptions& options) {
  ITASK_CHECK(options.merge_iou >= 0.0f && options.merge_iou < 1.0f,
              "fuse_views: merge_iou must be in [0, 1)");
  ITASK_CHECK(options.min_views >= 1, "fuse_views: min_views must be >= 1");
  const int64_t k = static_cast<int64_t>(views.size());
  ITASK_CHECK(k >= 1, "fuse_views: need at least one view");

  // Flatten, remembering which view each candidate came from, then sort into
  // the canonical order. From here on nothing depends on the order views (or
  // equal-confidence boxes within a view) arrived in.
  struct Tagged {
    const Detection* det;
    int64_t view;
  };
  std::vector<Tagged> all;
  for (int64_t v = 0; v < k; ++v) {
    for (const Detection& d : views[static_cast<size_t>(v)]) {
      all.push_back({&d, v});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (fusion_order(*a.det, *b.det)) return true;
    if (fusion_order(*b.det, *a.det)) return false;
    // Byte-identical detections from different views: order by view index so
    // the representative choice below is still deterministic.
    return a.view < b.view;
  });

  // Greedy clustering against cluster seeds (the highest-ranked member), the
  // same shape as greedy NMS: each candidate joins the first existing
  // same-class cluster it overlaps, else opens its own.
  struct Cluster {
    std::vector<Tagged> members;  // canonical order preserved
  };
  std::vector<Cluster> clusters;
  for (const Tagged& t : all) {
    bool joined = false;
    for (Cluster& c : clusters) {
      const Detection& seed = *c.members.front().det;
      if (seed.predicted_class == t.det->predicted_class &&
          iou(seed.box, t.det->box) > options.merge_iou) {
        c.members.push_back(t);
        joined = true;
        break;
      }
    }
    if (!joined) clusters.push_back(Cluster{{t}});
  }

  // Reduce each cluster. Per view only the highest-ranked member counts as
  // that view's evidence (a view cannot vouch for the same object twice);
  // support below the (clamped) min_views floor drops the cluster.
  const int64_t need = std::min(options.min_views, k);
  std::vector<Detection> fused;
  std::vector<const Detection*> rep(static_cast<size_t>(k));
  for (const Cluster& c : clusters) {
    std::fill(rep.begin(), rep.end(), nullptr);
    int64_t support = 0;
    for (const Tagged& t : c.members) {
      const Detection*& slot = rep[static_cast<size_t>(t.view)];
      if (slot == nullptr) {
        slot = t.det;
        ++support;
      }
    }
    if (support < need) continue;

    Detection out = *c.members.front().det;  // strongest evidence wins fields
    // Confidence-weighted mean box over the per-view representatives,
    // accumulated in canonical (view-index) order in double precision.
    double wsum = 0.0, cx = 0.0, cy = 0.0, w = 0.0, h = 0.0, csum = 0.0;
    for (int64_t v = 0; v < k; ++v) {
      const Detection* r = rep[static_cast<size_t>(v)];
      if (r == nullptr) continue;
      const double wt = static_cast<double>(r->confidence);
      wsum += wt;
      cx += wt * static_cast<double>(r->box.cx);
      cy += wt * static_cast<double>(r->box.cy);
      w += wt * static_cast<double>(r->box.w);
      h += wt * static_cast<double>(r->box.h);
      csum += static_cast<double>(r->confidence);
    }
    if (wsum > 0.0) {
      out.box.cx = static_cast<float>(cx / wsum);
      out.box.cy = static_cast<float>(cy / wsum);
      out.box.w = static_cast<float>(w / wsum);
      out.box.h = static_cast<float>(h / wsum);
    }
    // Missing views contribute zero evidence: dividing by K (not support)
    // is what de-weights single-view phantoms relative to well-seen objects.
    out.confidence = static_cast<float>(csum / static_cast<double>(k));
    fused.push_back(std::move(out));
  }

  // The fused list can still contain cross-class overlaps (clusters never
  // merge across classes); finish with the pipeline's own greedy NMS, which
  // also returns the list in detection_order.
  return nms(std::move(fused), options.nms_iou);
}

std::vector<Tensor> jittered_views(const Tensor& image, int64_t views,
                                   float sigma, uint64_t seed) {
  ITASK_CHECK(views >= 1, "jittered_views: need at least one view");
  ITASK_CHECK(sigma >= 0.0f, "jittered_views: sigma must be >= 0");
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(views));
  out.push_back(Tensor(image));  // view 0 is the clean image
  Rng rng(seed);
  for (int64_t v = 1; v < views; ++v) {
    Tensor noisy(image);
    for (float& x : noisy.data()) x += rng.normal(0.0f, sigma);
    out.push_back(std::move(noisy));
  }
  return out;
}

}  // namespace itask::detect
