// Cross-view detection fusion for occlusion-robust collaborative inference
// (DESIGN.md §2, bench F8): K cheap students look at jittered views of one
// scene and their detections are merged at the box level. An object occluded
// into ambiguity in one view survives through the views that still see it,
// while a single-view phantom is de-weighted by its missing support — the
// "Tiny Collaborative Inference" counter to the occlusion degradation F5/F8
// measure.
//
// Determinism contract: fused output is a pure function of the MULTISET of
// input detections — invariant to view arrival order and to the order of
// equal-confidence boxes. fuse_views canonicalizes every candidate through
// fusion_order (detect::detection_order refined to a strict total order over
// all scored fields) before greedy clustering, and every merge reduction
// accumulates in that canonical order, so byte-identical inputs give
// byte-identical outputs on any gather path: serial fusion, the single
// server's scatter/gather, or the fleet at any shard count (test_runtime's
// Fusion/Group suites assert it).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/detection.h"
#include "detect/nms.h"
#include "tensor/rng.h"

namespace itask::detect {

struct FusionOptions {
  /// Same-class candidates from different views merge into one cluster when
  /// their IoU with the cluster seed exceeds this.
  float merge_iou = 0.5f;
  /// Clusters supported by fewer distinct views are dropped (clamped to the
  /// actual view count, so K = 1 degenerates to the single-view result).
  int64_t min_views = 1;
  /// Final cross-class NMS over the fused boxes — the same greedy rule a
  /// single view's pipeline ends with.
  float nms_iou = 0.5f;
};

/// The canonical strict total order behind fusion determinism:
/// detection_order first, ties refined by objectness, task_score, then the
/// attribute and class probability vectors lexicographically. Two detections
/// equal under fusion_order are byte-identical in every field fusion reads,
/// so any input permutation reduces to the same result.
bool fusion_order(const Detection& a, const Detection& b);

/// Merges per-view detection lists (views[v] = view v's NMS output, all in
/// one image coordinate frame) into one fused list, sorted by
/// detection_order. Per cluster: the box is the confidence-weighted mean of
/// each view's best member, the confidence is the sum of those members'
/// confidences divided by the TOTAL view count (absent views count as zero
/// evidence — that is the de-weighting that suppresses single-view
/// phantoms), and the remaining fields come from the highest-ranked member.
std::vector<Detection> fuse_views(
    const std::vector<std::vector<Detection>>& views,
    const FusionOptions& options = {});

/// Synthesizes the K views of one collaborative request: view 0 is the clean
/// image, views 1..k-1 add seeded N(0, sigma) sensor jitter — the same
/// corruption model as F5, so per-view errors decorrelate while every box
/// stays in the source image's coordinate frame. Pure function of
/// (image, views, sigma, seed); LoadGen group requests carry the seed so the
/// serial, single-server, and fleet paths materialize identical views.
std::vector<Tensor> jittered_views(const Tensor& image, int64_t views,
                                   float sigma, uint64_t seed);

}  // namespace itask::detect
