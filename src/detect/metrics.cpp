#include "detect/metrics.h"

#include <algorithm>

#include "detect/nms.h"
#include "tensor/tensor.h"  // ITASK_CHECK

namespace itask::detect {

namespace {

struct ScoredMatch {
  float confidence = 0.0f;
  bool is_tp = false;
  float iou_value = 0.0f;
};

/// Greedy-matches one scene's detections (visited in detection_order, the
/// deterministic confidence ranking) against its task-relevant ground truth,
/// appending one ScoredMatch per detection. Invariant shared by evaluate()
/// and pr_curve(): an unmatched detection records iou_value == 0, never the
/// iou_threshold search sentinel.
void match_scene(const std::vector<Detection>& detections,
                 const std::vector<GroundTruthObject>& gt, float iou_threshold,
                 std::vector<ScoredMatch>& matches) {
  std::vector<Detection> dets = detections;
  std::sort(dets.begin(), dets.end(), detection_order);
  std::vector<bool> taken(gt.size(), false);
  for (const Detection& d : dets) {
    int best = -1;
    float best_iou = iou_threshold;
    for (size_t gi = 0; gi < gt.size(); ++gi) {
      if (taken[gi] || !gt[gi].task_relevant) continue;
      const float v = iou(d.box, gt[gi].box);
      if (v >= best_iou) {
        best_iou = v;
        best = static_cast<int>(gi);
      }
    }
    if (best >= 0) {
      taken[static_cast<size_t>(best)] = true;
      matches.push_back({d.confidence, true, best_iou});
    } else {
      matches.push_back({d.confidence, false, 0.0f});
    }
  }
}

/// Deterministic confidence sweep order: ties put true positives first so
/// the PR curve / AP are reproducible across platforms and input orders.
bool sweep_order(const ScoredMatch& a, const ScoredMatch& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.is_tp != b.is_tp) return a.is_tp;
  return a.iou_value > b.iou_value;
}

}  // namespace

EvalResult evaluate(const std::vector<std::vector<Detection>>& detections,
                    const std::vector<std::vector<GroundTruthObject>>& truth,
                    float iou_threshold) {
  ITASK_CHECK(detections.size() == truth.size(),
              "evaluate: scene count mismatch");
  EvalResult result;
  std::vector<ScoredMatch> matches;
  int64_t total_relevant = 0;

  for (size_t s = 0; s < detections.size(); ++s) {
    for (const GroundTruthObject& g : truth[s])
      if (g.task_relevant) ++total_relevant;
    match_scene(detections[s], truth[s], iou_threshold, matches);
  }

  // Operating-point statistics (all returned detections count).
  double iou_sum = 0.0;
  for (const ScoredMatch& m : matches) {
    if (m.is_tp) {
      ++result.true_positives;
      iou_sum += m.iou_value;
    } else {
      ++result.false_positives;
    }
  }
  result.false_negatives = total_relevant - result.true_positives;
  const int64_t det_count = result.true_positives + result.false_positives;
  result.precision =
      det_count > 0
          ? static_cast<float>(result.true_positives) /
                static_cast<float>(det_count)
          : (total_relevant == 0 ? 1.0f : 0.0f);
  result.recall = total_relevant > 0
                      ? static_cast<float>(result.true_positives) /
                            static_cast<float>(total_relevant)
                      : 1.0f;
  result.f1 = (result.precision + result.recall) > 0.0f
                  ? 2.0f * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0f;
  result.mean_iou = result.true_positives > 0
                        ? static_cast<float>(iou_sum) /
                              static_cast<float>(result.true_positives)
                        : 0.0f;

  // All-point interpolated AP over the confidence sweep.
  if (total_relevant == 0) {
    result.average_precision = det_count == 0 ? 1.0f : 0.0f;
    return result;
  }
  std::sort(matches.begin(), matches.end(), sweep_order);
  std::vector<float> precisions, recalls;
  int64_t tp = 0, fp = 0;
  for (const ScoredMatch& m : matches) {
    if (m.is_tp) ++tp; else ++fp;
    precisions.push_back(static_cast<float>(tp) /
                         static_cast<float>(tp + fp));
    recalls.push_back(static_cast<float>(tp) /
                      static_cast<float>(total_relevant));
  }
  // Make precision monotone non-increasing from the right.
  for (int64_t i = static_cast<int64_t>(precisions.size()) - 2; i >= 0; --i)
    precisions[static_cast<size_t>(i)] =
        std::max(precisions[static_cast<size_t>(i)],
                 precisions[static_cast<size_t>(i + 1)]);
  float ap = 0.0f;
  float prev_recall = 0.0f;
  for (size_t i = 0; i < precisions.size(); ++i) {
    ap += (recalls[i] - prev_recall) * precisions[i];
    prev_recall = recalls[i];
  }
  result.average_precision = ap;
  return result;
}

std::vector<PrPoint> pr_curve(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GroundTruthObject>>& truth,
    float iou_threshold) {
  ITASK_CHECK(detections.size() == truth.size(),
              "pr_curve: scene count mismatch");
  // The same greedy matching evaluate() uses labels each detection TP/FP
  // (match_scene keeps the two paths agreeing by construction).
  std::vector<ScoredMatch> matches;
  int64_t total_relevant = 0;
  for (size_t s = 0; s < detections.size(); ++s) {
    for (const GroundTruthObject& g : truth[s])
      if (g.task_relevant) ++total_relevant;
    match_scene(detections[s], truth[s], iou_threshold, matches);
  }
  std::sort(matches.begin(), matches.end(), sweep_order);
  std::vector<PrPoint> curve;
  int64_t tp = 0, fp = 0;
  for (const ScoredMatch& m : matches) {
    if (m.is_tp) ++tp; else ++fp;
    PrPoint point;
    point.confidence = m.confidence;
    point.precision = static_cast<float>(tp) / static_cast<float>(tp + fp);
    point.recall = total_relevant > 0
                       ? static_cast<float>(tp) /
                             static_cast<float>(total_relevant)
                       : 1.0f;
    curve.push_back(point);
  }
  return curve;
}

std::map<int64_t, EvalResult> evaluate_per_class(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GroundTruthObject>>& truth,
    float iou_threshold) {
  ITASK_CHECK(detections.size() == truth.size(),
              "evaluate_per_class: scene count mismatch");
  // Collect the class universe.
  std::map<int64_t, bool> classes;
  for (const auto& scene : detections)
    for (const Detection& d : scene) classes[d.predicted_class] = true;
  for (const auto& scene : truth)
    for (const GroundTruthObject& g : scene)
      if (g.task_relevant) classes[g.cls] = true;

  std::map<int64_t, EvalResult> results;
  for (const auto& [cls, _] : classes) {
    std::vector<std::vector<Detection>> d_cls(detections.size());
    std::vector<std::vector<GroundTruthObject>> t_cls(truth.size());
    for (size_t s = 0; s < detections.size(); ++s) {
      for (const Detection& d : detections[s])
        if (d.predicted_class == cls) d_cls[s].push_back(d);
      for (const GroundTruthObject& g : truth[s])
        if (g.cls == cls) t_cls[s].push_back(g);
    }
    results.emplace(cls, evaluate(d_cls, t_cls, iou_threshold));
  }
  return results;
}

}  // namespace itask::detect
