// Detection evaluation: greedy IoU matching, precision/recall/F1 at a fixed
// operating point, and all-point-interpolated average precision.
#pragma once

#include <map>
#include <vector>

#include "detect/detection.h"

namespace itask::detect {

struct EvalResult {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  float precision = 0.0f;
  float recall = 0.0f;
  float f1 = 0.0f;
  float average_precision = 0.0f;  // AP over the confidence sweep
  float mean_iou = 0.0f;           // mean IoU of matched pairs
};

/// Evaluates per-scene detections against per-scene ground truth. Only
/// ground-truth objects with `task_relevant == true` count as targets; a
/// detection matching a non-relevant object is a false positive (the
/// task-oriented part of the metric). Matching is greedy in confidence
/// order at the given IoU threshold.
EvalResult evaluate(const std::vector<std::vector<Detection>>& detections,
                    const std::vector<std::vector<GroundTruthObject>>& truth,
                    float iou_threshold = 0.5f);

/// One operating point of the precision/recall curve.
struct PrPoint {
  float confidence = 0.0f;  // threshold at/above which detections count
  float precision = 0.0f;
  float recall = 0.0f;
};

/// The full precision/recall sweep (sorted by descending confidence, one
/// point per detection). Integrating the monotone-envelope of this curve
/// yields EvalResult::average_precision (tested).
std::vector<PrPoint> pr_curve(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GroundTruthObject>>& truth,
    float iou_threshold = 0.5f);

/// Per-predicted-class evaluation: splits detections by predicted_class and
/// ground truth by cls, then evaluates each class independently. Classes
/// with neither detections nor relevant truth are omitted.
std::map<int64_t, EvalResult> evaluate_per_class(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GroundTruthObject>>& truth,
    float iou_threshold = 0.5f);

}  // namespace itask::detect
