#include "detect/nms.h"

#include <algorithm>

namespace itask::detect {

float iou(const BoxPx& a, const BoxPx& b) {
  if (a.w <= 0.0f || a.h <= 0.0f || b.w <= 0.0f || b.h <= 0.0f) return 0.0f;
  const float ix0 = std::max(a.x0(), b.x0());
  const float iy0 = std::max(a.y0(), b.y0());
  const float ix1 = std::min(a.x1(), b.x1());
  const float iy1 = std::min(a.y1(), b.y1());
  const float iw = std::max(0.0f, ix1 - ix0);
  const float ih = std::max(0.0f, iy1 - iy0);
  const float inter = iw * ih;
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

bool detection_order(const Detection& a, const Detection& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.predicted_class != b.predicted_class)
    return a.predicted_class < b.predicted_class;
  if (a.box.cx != b.box.cx) return a.box.cx < b.box.cx;
  if (a.box.cy != b.box.cy) return a.box.cy < b.box.cy;
  if (a.box.w != b.box.w) return a.box.w < b.box.w;
  if (a.box.h != b.box.h) return a.box.h < b.box.h;
  return a.cell < b.cell;
}

std::vector<Detection> nms(std::vector<Detection> detections,
                           float iou_threshold) {
  std::sort(detections.begin(), detections.end(), detection_order);
  std::vector<Detection> kept;
  for (Detection& d : detections) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (iou(d.box, k.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace itask::detect
