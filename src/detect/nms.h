// Intersection-over-union and greedy non-maximum suppression.
#pragma once

#include <vector>

#include "detect/detection.h"

namespace itask::detect {

/// IoU of two centre-based pixel boxes; 0 when either is degenerate.
float iou(const BoxPx& a, const BoxPx& b);

/// Greedy NMS: keeps detections in descending confidence order, suppressing
/// any detection whose IoU with an already-kept one exceeds `iou_threshold`.
/// Returns the kept detections, still sorted by confidence.
std::vector<Detection> nms(std::vector<Detection> detections,
                           float iou_threshold = 0.5f);

}  // namespace itask::detect
