// Intersection-over-union and greedy non-maximum suppression.
#pragma once

#include <vector>

#include "detect/detection.h"

namespace itask::detect {

/// IoU of two centre-based pixel boxes; 0 when either is degenerate.
float iou(const BoxPx& a, const BoxPx& b);

/// Deterministic ranking order for detections: descending confidence, ties
/// broken by class, then box coordinates, then cell. Confidence alone is not
/// a strict order — with an unstable std::sort, equal-confidence detections
/// would keep a platform-dependent survivor set through greedy NMS/matching.
bool detection_order(const Detection& a, const Detection& b);

/// Greedy NMS: keeps detections in descending confidence order (ties broken
/// by detection_order, so the survivor set is input-order- and
/// platform-independent), suppressing any detection whose IoU with an
/// already-kept one exceeds `iou_threshold`. Returns the kept detections,
/// still sorted by confidence.
std::vector<Detection> nms(std::vector<Detection> detections,
                           float iou_threshold = 0.5f);

}  // namespace itask::detect
