#include "detect/ppm.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace itask::detect {

namespace {

uint8_t to_byte(float v) {
  return static_cast<uint8_t>(
      std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f));
}

void write_ppm(const std::vector<uint8_t>& rgb, int64_t w, int64_t h,
               const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_ppm: cannot open " + path);
  os << "P6\n" << w << ' ' << h << "\n255\n";
  os.write(reinterpret_cast<const char*>(rgb.data()),
           static_cast<std::streamsize>(rgb.size()));
  if (!os) throw std::runtime_error("save_ppm: write failure " + path);
}

std::vector<uint8_t> rasterize(const Tensor& image, int64_t upscale) {
  ITASK_CHECK(image.ndim() == 3 && image.dim(0) == 3,
              "save_ppm: need [3, H, W]");
  ITASK_CHECK(upscale >= 1, "save_ppm: upscale must be >= 1");
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  const int64_t plane = h * w;
  auto px = image.data();
  std::vector<uint8_t> rgb(static_cast<size_t>(3 * h * upscale * w * upscale));
  for (int64_t y = 0; y < h * upscale; ++y) {
    for (int64_t x = 0; x < w * upscale; ++x) {
      const int64_t sy = y / upscale;
      const int64_t sx = x / upscale;
      const size_t out = static_cast<size_t>(3 * (y * w * upscale + x));
      rgb[out + 0] = to_byte(px[sy * w + sx]);
      rgb[out + 1] = to_byte(px[plane + sy * w + sx]);
      rgb[out + 2] = to_byte(px[2 * plane + sy * w + sx]);
    }
  }
  return rgb;
}

}  // namespace

void save_ppm(const Tensor& image, const std::string& path, int64_t upscale) {
  const int64_t h = image.dim(1) * upscale;
  const int64_t w = image.dim(2) * upscale;
  write_ppm(rasterize(image, upscale), w, h, path);
}

void save_ppm_with_detections(
    const Tensor& image, const std::vector<Detection>& detections,
    const std::string& path, int64_t upscale) {
  std::vector<uint8_t> rgb = rasterize(image, upscale);
  const int64_t h = image.dim(1) * upscale;
  const int64_t w = image.dim(2) * upscale;
  auto put_red = [&](int64_t x, int64_t y) {
    if (x < 0 || x >= w || y < 0 || y >= h) return;
    const size_t out = static_cast<size_t>(3 * (y * w + x));
    rgb[out + 0] = 255;
    rgb[out + 1] = 32;
    rgb[out + 2] = 32;
  };
  for (const Detection& d : detections) {
    const int64_t x0 = static_cast<int64_t>(
        std::lround(d.box.x0() * static_cast<double>(upscale)));
    const int64_t x1 = static_cast<int64_t>(
        std::lround(d.box.x1() * static_cast<double>(upscale)));
    const int64_t y0 = static_cast<int64_t>(
        std::lround(d.box.y0() * static_cast<double>(upscale)));
    const int64_t y1 = static_cast<int64_t>(
        std::lround(d.box.y1() * static_cast<double>(upscale)));
    for (int64_t x = x0; x <= x1; ++x) {
      put_red(x, y0);
      put_red(x, y1);
    }
    for (int64_t y = y0; y <= y1; ++y) {
      put_red(x0, y);
      put_red(x1, y);
    }
  }
  write_ppm(rgb, w, h, path);
}

}  // namespace itask::detect
