// PPM (portable pixmap) export of scenes and detection overlays — produces
// real image artifacts from the synthetic domain for inspection and papers.
#pragma once

#include <string>
#include <vector>

#include "data/scene.h"
#include "detect/detection.h"

namespace itask::detect {

/// Writes a [3, H, W] image tensor (values clamped to [0, 1]) as binary PPM.
/// `upscale` repeats each pixel to make 24 px scenes viewable.
void save_ppm(const Tensor& image, const std::string& path,
              int64_t upscale = 8);

/// Same, with detection boxes burned in as red outlines.
void save_ppm_with_detections(
    const Tensor& image, const std::vector<Detection>& detections,
    const std::string& path, int64_t upscale = 8);

}  // namespace itask::detect
