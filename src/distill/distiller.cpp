#include "distill/distiller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/ops.h"

namespace itask::distill {

namespace {

/// Per-scene teacher outputs (leading batch dim stripped).
struct TeacherSlice {
  Tensor objectness, class_logits, attr_logits, box_deltas, features;
};

/// The teacher is frozen during distillation, so its outputs per scene are
/// computed once up front instead of once per epoch — this is the dominant
/// cost of distillation otherwise (the teacher is the big model).
std::vector<TeacherSlice> precompute_teacher(vit::VitModel& teacher,
                                             const data::Dataset& dataset) {
  teacher.set_training(false);
  std::vector<TeacherSlice> cache(static_cast<size_t>(dataset.size()));
  const auto indices = dataset.all_indices();
  constexpr int64_t kChunk = 16;
  for (int64_t start = 0; start < dataset.size(); start += kChunk) {
    const int64_t end = std::min(dataset.size(), start + kChunk);
    const data::Batch batch = dataset.make_batch(std::span<const int64_t>(
        indices.data() + start, static_cast<size_t>(end - start)));
    const vit::VitOutput out = teacher.forward(batch.images);
    for (int64_t i = start; i < end; ++i) {
      TeacherSlice& s = cache[static_cast<size_t>(i)];
      const int64_t bi = i - start;
      s.objectness = out.objectness.index(bi);
      s.class_logits = out.class_logits.index(bi);
      s.attr_logits = out.attr_logits.index(bi);
      s.box_deltas = out.box_deltas.index(bi);
      s.features = out.features.index(bi);
    }
  }
  return cache;
}

/// Re-assembles cached teacher outputs for a shuffled batch.
vit::VitOutput gather_teacher(const std::vector<TeacherSlice>& cache,
                              std::span<const int64_t> indices) {
  std::vector<Tensor> obj, cls, attr, box, feat;
  for (int64_t i : indices) {
    const TeacherSlice& s = cache[static_cast<size_t>(i)];
    obj.push_back(s.objectness);
    cls.push_back(s.class_logits);
    attr.push_back(s.attr_logits);
    box.push_back(s.box_deltas);
    feat.push_back(s.features);
  }
  vit::VitOutput out;
  out.objectness = ops::stack(obj);
  out.class_logits = ops::stack(cls);
  out.attr_logits = ops::stack(attr);
  out.box_deltas = ops::stack(box);
  out.features = ops::stack(feat);
  return out;
}

}  // namespace

Distiller::Distiller(vit::VitModel& teacher, vit::VitModel& student,
                     DistillOptions options, Rng& rng)
    : teacher_(teacher),
      student_(student),
      options_(options),
      rng_(options.seed) {
  ITASK_CHECK(teacher_.config().tokens() == student_.config().tokens(),
              "Distiller: teacher/student grid mismatch");
  std::vector<nn::Parameter*> params = student_.parameters();
  if (options_.gamma_features > 0.0f) {
    feature_proj_ = std::make_unique<nn::Linear>(
        student_.config().dim, teacher_.config().dim, rng);
    const auto proj_params = feature_proj_->parameters();
    params.insert(params.end(), proj_params.begin(), proj_params.end());
  }
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), options_.lr,
                                          0.9f, 0.999f, 1e-8f,
                                          options_.weight_decay);
}

DistillStats Distiller::run(const data::Dataset& dataset,
                            const data::TaskSpec* task) {
  ITASK_CHECK(dataset.size() > 0, "Distiller: empty dataset");
  const std::vector<TeacherSlice> teacher_cache =
      precompute_teacher(teacher_, dataset);
  student_.set_training(true);
  DistillStats stats;

  TrainerOptions hard_options;
  hard_options.w_objectness = options_.alpha_hard;
  hard_options.w_class = options_.alpha_hard;
  hard_options.w_attributes = 1.5f * options_.alpha_hard;
  hard_options.w_box = 2.5f * options_.alpha_hard;
  hard_options.w_relevance = task != nullptr ? options_.w_relevance : 0.0f;

  std::vector<int64_t> order = dataset.all_indices();
  const int64_t steps_per_epoch = static_cast<int64_t>(
      (order.size() + options_.batch_size - 1) / options_.batch_size);
  const int64_t total_steps = steps_per_epoch * options_.epochs;
  bool first_recorded = false;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const float warmup_steps = std::max(
          1.0f, options_.warmup_fraction * static_cast<float>(total_steps));
      float lr = options_.lr;
      const float s = static_cast<float>(stats.steps);
      if (s < warmup_steps) {
        lr = options_.lr * (s + 1.0f) / warmup_steps;
      } else {
        const float progress =
            (s - warmup_steps) /
            std::max(1.0f, static_cast<float>(total_steps) - warmup_steps);
        const float cosine = 0.5f * (1.0f + std::cos(3.14159265f * progress));
        lr = options_.lr *
             (options_.lr_min_fraction +
              (1.0f - options_.lr_min_fraction) * cosine);
      }
      optimizer_->set_lr(lr);
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      const std::span<const int64_t> batch_ids(order.data() + start,
                                               end - start);
      const data::Batch batch = dataset.make_batch(batch_ids, task);
      const vit::VitOutput t_out = gather_teacher(teacher_cache, batch_ids);

      student_.zero_grad();
      if (feature_proj_) feature_proj_->zero_grad();
      const vit::VitOutput s_out = student_.forward(batch.images);

      vit::VitOutputGrads grads;
      const StepLosses hard =
          supervised_losses(s_out, batch, hard_options, grads);

      // Logit distillation.
      float kd_total = 0.0f;
      const float b = options_.beta_logits;
      if (b > 0.0f) {
        auto kd_cls =
            nn::kd_kl(s_out.class_logits, t_out.class_logits,
                      options_.temperature);
        kd_total += b * kd_cls.value;
        ops::axpy_inplace(grads.class_logits, b, kd_cls.grad);
        auto kd_obj = nn::mse(s_out.objectness, t_out.objectness);
        kd_total += 0.5f * b * kd_obj.value;
        ops::axpy_inplace(grads.objectness, 0.5f * b, kd_obj.grad);
        auto kd_attr = nn::mse(s_out.attr_logits, t_out.attr_logits);
        kd_total += b * kd_attr.value;
        ops::axpy_inplace(grads.attr_logits, b, kd_attr.grad);
        auto kd_box = nn::mse(s_out.box_deltas, t_out.box_deltas);
        kd_total += b * kd_box.value;
        ops::axpy_inplace(grads.box_deltas, b, kd_box.grad);
      }

      // Feature distillation through the learned projection.
      float feat_loss = 0.0f;
      if (feature_proj_) {
        const Tensor projected = feature_proj_->forward(s_out.features);
        auto fd = nn::mse(projected, t_out.features);
        feat_loss = options_.gamma_features * fd.value;
        const Tensor d_proj_in = feature_proj_->backward(
            ops::mul_scalar(fd.grad, options_.gamma_features));
        grads.features = d_proj_in;
      }

      student_.backward(grads);
      nn::clip_grad_norm(student_.parameters(), options_.grad_clip);
      optimizer_->step();

      const float total = hard.total() + kd_total + feat_loss;
      if (!first_recorded) {
        stats.first_total = total;
        first_recorded = true;
      }
      stats.last_total = total;
      stats.last_hard = hard.total();
      stats.last_kd = kd_total;
      stats.last_feature = feat_loss;
      ++stats.steps;
      if (options_.verbose && stats.steps % 20 == 0) {
        std::printf("  [distill] step %lld lr=%.5f total=%.4f hard=%.4f "
                    "kd=%.4f feat=%.4f\n",
                    static_cast<long long>(stats.steps),
                    static_cast<double>(lr), static_cast<double>(total),
                    static_cast<double>(hard.total()),
                    static_cast<double>(kd_total),
                    static_cast<double>(feat_loss));
      }
    }
  }
  student_.set_training(false);
  return stats;
}

}  // namespace itask::distill
