// Teacher→student knowledge distillation for task-specific models.
//
// The student learns from three signals (all ablated in A2):
//  * hard labels (the supervised losses from trainer.h),
//  * temperature-scaled KL on the teacher's class logits + MSE on the
//    teacher's other head outputs (logit distillation), and
//  * optional feature distillation through a learned projection from
//    student to teacher width.
#pragma once

#include <memory>

#include "distill/trainer.h"

namespace itask::distill {

struct DistillOptions {
  int64_t epochs = 8;
  int64_t batch_size = 16;
  float lr = 3e-3f;
  float lr_min_fraction = 0.05f;
  float warmup_fraction = 0.05f;
  float weight_decay = 1e-4f;
  float grad_clip = 5.0f;
  float temperature = 2.0f;
  float alpha_hard = 0.5f;     // weight on supervised (hard-label) losses
  float beta_logits = 1.0f;    // weight on teacher-logit distillation
  float gamma_features = 0.3f; // weight on feature distillation (0 disables)
  float w_relevance = 1.5f;    // hard relevance supervision (task-specific)
  uint64_t seed = 11;
  bool verbose = false;
};

struct DistillStats {
  int64_t steps = 0;
  float first_total = 0.0f;
  float last_total = 0.0f;
  float last_hard = 0.0f;
  float last_kd = 0.0f;
  float last_feature = 0.0f;
};

/// Distills `teacher` into `student` on `dataset`, optionally specialising
/// for `task` (relevance head supervision + task-focused data is the
/// caller's responsibility).
class Distiller {
 public:
  Distiller(vit::VitModel& teacher, vit::VitModel& student,
            DistillOptions options, Rng& rng);

  DistillStats run(const data::Dataset& dataset,
                   const data::TaskSpec* task = nullptr);

 private:
  vit::VitModel& teacher_;
  vit::VitModel& student_;
  DistillOptions options_;
  /// Projects student features to teacher width for feature distillation;
  /// null when widths match or gamma_features == 0.
  std::unique_ptr<nn::Linear> feature_proj_;
  std::unique_ptr<nn::Adam> optimizer_;
  Rng rng_;
};

}  // namespace itask::distill
