#include "distill/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/ops.h"

namespace itask::distill {

namespace {

/// Masked MSE: loss = sum(mask * (pred - target)^2) / max(1, sum(mask)).
nn::LossResult masked_mse(const Tensor& pred, const Tensor& target,
                          const Tensor& mask) {
  ITASK_CHECK(pred.shape() == target.shape() && pred.shape() == mask.shape(),
              "masked_mse: shape mismatch");
  Tensor grad(pred.shape());
  auto p = pred.data();
  auto t = target.data();
  auto m = mask.data();
  auto g = grad.data();
  double denom = 0.0;
  for (float v : mask.data()) denom += v;
  denom = std::max(denom, 1.0);
  const float inv = static_cast<float>(1.0 / denom);
  double loss = 0.0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const float d = (p[i] - t[i]) * m[i];
    loss += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv;
  }
  return {static_cast<float>(loss) * inv, std::move(grad)};
}

}  // namespace

StepLosses supervised_losses(const vit::VitOutput& output,
                             const data::Batch& batch,
                             const TrainerOptions& options,
                             vit::VitOutputGrads& grads) {
  StepLosses losses;
  {
    auto res = nn::bce_with_logits(output.objectness, batch.objectness);
    losses.objectness = options.w_objectness * res.value;
    grads.objectness = ops::mul_scalar(res.grad, options.w_objectness);
  }
  {
    auto res = nn::softmax_cross_entropy(output.class_logits,
                                         batch.cell_class);
    losses.classification = options.w_class * res.value;
    grads.class_logits = ops::mul_scalar(res.grad, options.w_class);
  }
  {
    auto res = nn::bce_with_logits(output.attr_logits, batch.attributes,
                                   &batch.attr_mask);
    losses.attributes = options.w_attributes * res.value;
    grads.attr_logits = ops::mul_scalar(res.grad, options.w_attributes);
  }
  {
    auto res = masked_mse(output.box_deltas, batch.boxes, batch.box_mask);
    losses.box = options.w_box * res.value;
    grads.box_deltas = ops::mul_scalar(res.grad, options.w_box);
  }
  if (options.w_relevance > 0.0f) {
    auto res = nn::bce_with_logits(output.relevance, batch.relevance);
    losses.relevance = options.w_relevance * res.value;
    grads.relevance = ops::mul_scalar(res.grad, options.w_relevance);
  }
  return losses;
}

Trainer::Trainer(vit::VitModel& model, TrainerOptions options)
    : model_(model),
      options_(options),
      optimizer_(model.parameters(), options.lr, 0.9f, 0.999f, 1e-8f,
                 options.weight_decay),
      rng_(options.seed) {}

StepLosses Trainer::step(const data::Dataset& dataset,
                         std::span<const int64_t> indices,
                         const data::TaskSpec* task) {
  const data::Batch batch = dataset.make_batch(indices, task);
  model_.zero_grad();
  const vit::VitOutput output = model_.forward(batch.images);
  vit::VitOutputGrads grads;
  const StepLosses losses =
      supervised_losses(output, batch, options_, grads);
  model_.backward(grads);
  nn::clip_grad_norm(model_.parameters(), options_.grad_clip);
  optimizer_.step();
  return losses;
}

namespace {

/// Linear warmup followed by cosine decay to lr*min_fraction.
float scheduled_lr(float base_lr, float min_fraction, float warmup_fraction,
                   int64_t step, int64_t total_steps) {
  const float warmup_steps = std::max(
      1.0f, warmup_fraction * static_cast<float>(total_steps));
  const float s = static_cast<float>(step);
  if (s < warmup_steps) return base_lr * (s + 1.0f) / warmup_steps;
  const float progress =
      (s - warmup_steps) /
      std::max(1.0f, static_cast<float>(total_steps) - warmup_steps);
  const float cosine = 0.5f * (1.0f + std::cos(3.14159265f * progress));
  return base_lr * (min_fraction + (1.0f - min_fraction) * cosine);
}

}  // namespace

TrainStats Trainer::fit(const data::Dataset& dataset,
                        const data::TaskSpec* task) {
  ITASK_CHECK(dataset.size() > 0, "Trainer: empty dataset");
  model_.set_training(true);
  TrainStats stats;
  std::vector<int64_t> order = dataset.all_indices();
  const int64_t steps_per_epoch = static_cast<int64_t>(
      (order.size() + options_.batch_size - 1) / options_.batch_size);
  const int64_t total_steps = steps_per_epoch * options_.epochs;
  bool first_recorded = false;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      optimizer_.set_lr(scheduled_lr(options_.lr, options_.lr_min_fraction,
                                     options_.warmup_fraction, stats.steps,
                                     total_steps));
      const StepLosses losses =
          step(dataset,
               std::span<const int64_t>(order.data() + start, end - start),
               task);
      if (!first_recorded) {
        stats.first = losses;
        first_recorded = true;
      }
      stats.last = losses;
      ++stats.steps;
      if (options_.verbose && stats.steps % 20 == 0) {
        std::printf("  [trainer] step %lld total=%.4f obj=%.4f cls=%.4f "
                    "attr=%.4f box=%.4f rel=%.4f\n",
                    static_cast<long long>(stats.steps),
                    static_cast<double>(losses.total()),
                    static_cast<double>(losses.objectness),
                    static_cast<double>(losses.classification),
                    static_cast<double>(losses.attributes),
                    static_cast<double>(losses.box),
                    static_cast<double>(losses.relevance));
      }
    }
  }
  model_.set_training(false);
  return stats;
}

}  // namespace itask::distill
