// Supervised multi-head training of the detection ViT, and the shared loss
// assembly used by both plain training and distillation.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "vit/model.h"

namespace itask::distill {

struct TrainerOptions {
  int64_t epochs = 6;
  int64_t batch_size = 16;
  float lr = 3e-3f;
  float lr_min_fraction = 0.05f;  // cosine-decay floor as a fraction of lr
  float warmup_fraction = 0.05f;  // fraction of steps spent in linear warmup
  float weight_decay = 1e-4f;
  float grad_clip = 5.0f;
  // Per-head loss weights.
  float w_objectness = 1.0f;
  float w_class = 1.0f;
  float w_attributes = 1.5f;
  float w_box = 2.5f;
  float w_relevance = 0.0f;  // > 0 only when training a task-specific model
  uint64_t seed = 7;
  bool verbose = false;
};

struct StepLosses {
  float objectness = 0.0f;
  float classification = 0.0f;
  float attributes = 0.0f;
  float box = 0.0f;
  float relevance = 0.0f;
  float total() const {
    return objectness + classification + attributes + box + relevance;
  }
};

struct TrainStats {
  int64_t steps = 0;
  StepLosses first;
  StepLosses last;
};

/// Computes all supervised head losses for a batch and fills the gradient
/// struct (weighted). `task` supplies relevance targets when
/// options.w_relevance > 0.
StepLosses supervised_losses(const vit::VitOutput& output,
                             const data::Batch& batch,
                             const TrainerOptions& options,
                             vit::VitOutputGrads& grads);

/// Mini-batch training loop over a dataset. When `task` is non-null the
/// batch carries relevance targets (enable via options.w_relevance).
class Trainer {
 public:
  Trainer(vit::VitModel& model, TrainerOptions options);

  TrainStats fit(const data::Dataset& dataset,
                 const data::TaskSpec* task = nullptr);

  /// One optimization step on an explicit index set; returns its losses.
  StepLosses step(const data::Dataset& dataset,
                  std::span<const int64_t> indices,
                  const data::TaskSpec* task = nullptr);

 private:
  vit::VitModel& model_;
  TrainerOptions options_;
  nn::Adam optimizer_;
  Rng rng_;
};

}  // namespace itask::distill
