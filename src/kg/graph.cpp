#include "kg/graph.h"

#include <array>
#include <sstream>

#include "tensor/tensor.h"  // for ITASK_CHECK

namespace itask::kg {

const std::string& node_type_name(NodeType t) {
  static const std::array<std::string, 4> kNames = {"task", "attribute",
                                                    "class", "concept"};
  return kNames[static_cast<size_t>(t)];
}

const std::string& relation_name(Relation r) {
  static const std::array<std::string, 4> kNames = {"requires", "excludes",
                                                    "has_attribute",
                                                    "related_to"};
  return kNames[static_cast<size_t>(r)];
}

NodeId KnowledgeGraph::add_node(NodeType type, std::string label) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.type = type;
  n.label = std::move(label);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void KnowledgeGraph::add_edge(NodeId src, NodeId dst, Relation relation,
                              float weight) {
  ITASK_CHECK(src >= 0 && src < node_count(), "add_edge: bad src node");
  ITASK_CHECK(dst >= 0 && dst < node_count(), "add_edge: bad dst node");
  edges_.push_back(Edge{src, dst, relation, weight});
}

void KnowledgeGraph::set_property(NodeId node, const std::string& key,
                                  float value) {
  ITASK_CHECK(node >= 0 && node < node_count(), "set_property: bad node");
  nodes_[static_cast<size_t>(node)].properties[key] = value;
}

std::optional<float> KnowledgeGraph::property(NodeId node,
                                              const std::string& key) const {
  ITASK_CHECK(node >= 0 && node < node_count(), "property: bad node");
  const auto& props = nodes_[static_cast<size_t>(node)].properties;
  const auto it = props.find(key);
  if (it == props.end()) return std::nullopt;
  return it->second;
}

NodeId KnowledgeGraph::find(const std::string& label,
                            std::optional<NodeType> type) const {
  for (const Node& n : nodes_) {
    if (n.label == label && (!type.has_value() || n.type == *type))
      return n.id;
  }
  return kInvalidNode;
}

const Node& KnowledgeGraph::node(NodeId id) const {
  ITASK_CHECK(id >= 0 && id < node_count(), "node: bad id");
  return nodes_[static_cast<size_t>(id)];
}

std::vector<Edge> KnowledgeGraph::edges_from(
    NodeId src, std::optional<Relation> relation) const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.src == src && (!relation.has_value() || e.relation == *relation))
      out.push_back(e);
  }
  return out;
}

std::string KnowledgeGraph::to_text() const {
  std::ostringstream os;
  os << "KnowledgeGraph: " << node_count() << " nodes, " << edge_count()
     << " edges\n";
  for (const Node& n : nodes_) {
    os << "  [" << n.id << "] " << node_type_name(n.type) << ":" << n.label;
    for (const auto& [k, v] : n.properties) os << " {" << k << "=" << v << "}";
    os << '\n';
  }
  for (const Edge& e : edges_) {
    os << "  " << node(e.src).label << " --" << relation_name(e.relation)
       << "(" << e.weight << ")--> " << node(e.dst).label << '\n';
  }
  return os.str();
}

}  // namespace itask::kg
