// The abstract knowledge graph at the heart of iTask: typed nodes (task,
// attribute, object class, concept) connected by weighted, typed edges.
// The simulated LLM (llm::Oracle) *produces* these graphs; the matcher
// (kg/matcher.h) *consumes* them to score detections for task relevance.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace itask::kg {

using NodeId = int64_t;
inline constexpr NodeId kInvalidNode = -1;

enum class NodeType : int8_t {
  kTask = 0,
  kAttribute,
  kObjectClass,
  kConcept,
};

enum class Relation : int8_t {
  kRequires = 0,   // task   -> attribute (positive importance)
  kExcludes,       // task   -> attribute (negative importance)
  kHasAttribute,   // class  -> attribute (ontological knowledge)
  kRelatedTo,      // concept-level association
};

const std::string& node_type_name(NodeType t);
const std::string& relation_name(Relation r);

struct Node {
  NodeId id = kInvalidNode;
  NodeType type = NodeType::kConcept;
  std::string label;
  /// Free-form numeric properties (e.g. "threshold" on task nodes).
  std::map<std::string, float> properties;
};

struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Relation relation = Relation::kRelatedTo;
  float weight = 1.0f;
};

/// A small in-memory property graph with label lookup and typed queries.
class KnowledgeGraph {
 public:
  NodeId add_node(NodeType type, std::string label);
  void add_edge(NodeId src, NodeId dst, Relation relation, float weight);

  /// Sets / reads a numeric property on a node.
  void set_property(NodeId node, const std::string& key, float value);
  std::optional<float> property(NodeId node, const std::string& key) const;

  /// First node with the given label (and type, if provided).
  NodeId find(const std::string& label,
              std::optional<NodeType> type = std::nullopt) const;

  const Node& node(NodeId id) const;
  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t edge_count() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edges of `src`, optionally filtered by relation.
  std::vector<Edge> edges_from(NodeId src,
                               std::optional<Relation> relation =
                                   std::nullopt) const;

  /// Removes edges for which `predicate` returns true; returns removed count.
  template <typename Pred>
  int64_t remove_edges_if(Pred&& predicate) {
    const auto before = edges_.size();
    std::erase_if(edges_, predicate);
    return static_cast<int64_t>(before - edges_.size());
  }

  /// Human-readable multi-line dump (stable ordering; used in examples).
  std::string to_text() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace itask::kg
