#include "kg/logic.h"

#include <algorithm>
#include <sstream>

namespace itask::kg {

TaskExpr TaskExpr::attribute(int64_t index) {
  ITASK_CHECK(index >= 0, "TaskExpr: negative attribute index");
  TaskExpr e;
  e.kind_ = Kind::kAttribute;
  e.attribute_ = index;
  return e;
}

TaskExpr TaskExpr::conjunction(std::vector<TaskExpr> operands) {
  ITASK_CHECK(!operands.empty(), "TaskExpr: empty conjunction");
  TaskExpr e;
  e.kind_ = Kind::kAnd;
  e.operands_ = std::move(operands);
  return e;
}

TaskExpr TaskExpr::disjunction(std::vector<TaskExpr> operands) {
  ITASK_CHECK(!operands.empty(), "TaskExpr: empty disjunction");
  TaskExpr e;
  e.kind_ = Kind::kOr;
  e.operands_ = std::move(operands);
  return e;
}

TaskExpr TaskExpr::negation(TaskExpr operand) {
  TaskExpr e;
  e.kind_ = Kind::kNot;
  e.operands_.push_back(std::move(operand));
  return e;
}

float TaskExpr::evaluate(const Tensor& attr_probs) const {
  switch (kind_) {
    case Kind::kAttribute: {
      ITASK_CHECK(attribute_ < attr_probs.numel(),
                  "TaskExpr: attribute index out of range");
      return std::clamp(attr_probs[attribute_], 0.0f, 1.0f);
    }
    case Kind::kAnd: {
      float v = 1.0f;
      for (const TaskExpr& op : operands_) v *= op.evaluate(attr_probs);
      return v;
    }
    case Kind::kOr: {
      // Probabilistic sum: 1 - prod(1 - x).
      float inv = 1.0f;
      for (const TaskExpr& op : operands_)
        inv *= 1.0f - op.evaluate(attr_probs);
      return 1.0f - inv;
    }
    case Kind::kNot:
      return 1.0f - operands_.front().evaluate(attr_probs);
  }
  return 0.0f;
}

std::string TaskExpr::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kAttribute:
      os << "attr:" << attribute_;
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      os << '(' << (kind_ == Kind::kAnd ? "and"
                                        : kind_ == Kind::kOr ? "or" : "not");
      for (const TaskExpr& op : operands_) os << ' ' << op.to_string();
      os << ')';
      break;
    }
  }
  return os.str();
}

int64_t TaskExpr::max_attribute() const {
  if (kind_ == Kind::kAttribute) return attribute_;
  int64_t mx = -1;
  for (const TaskExpr& op : operands_)
    mx = std::max(mx, op.max_attribute());
  return mx;
}

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;

  void skip_space() {
    while (pos < text.size() && text[pos] == ' ') ++pos;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw std::invalid_argument("TaskExpr::parse: " + why + " at offset " +
                                std::to_string(pos));
  }

  std::string token() {
    skip_space();
    const size_t start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '(' &&
           text[pos] != ')')
      ++pos;
    if (start == pos) fail("expected token");
    return text.substr(start, pos - start);
  }

  TaskExpr expr() {
    skip_space();
    if (pos >= text.size()) fail("unexpected end of input");
    if (text[pos] == '(') {
      ++pos;
      const std::string op = token();
      std::vector<TaskExpr> operands;
      skip_space();
      while (pos < text.size() && text[pos] != ')') {
        operands.push_back(expr());
        skip_space();
      }
      if (pos >= text.size()) fail("missing ')'");
      ++pos;  // consume ')'
      if (op == "and") return TaskExpr::conjunction(std::move(operands));
      if (op == "or") return TaskExpr::disjunction(std::move(operands));
      if (op == "not") {
        if (operands.size() != 1) fail("not takes exactly one operand");
        return TaskExpr::negation(std::move(operands.front()));
      }
      fail("unknown operator '" + op + "'");
    }
    const std::string leaf = token();
    if (leaf.rfind("attr:", 0) != 0) fail("expected attr:<i> leaf");
    return TaskExpr::attribute(
        std::strtoll(leaf.c_str() + 5, nullptr, 10));
  }
};

}  // namespace

TaskExpr TaskExpr::parse(const std::string& text) {
  Parser parser{text};
  TaskExpr result = parser.expr();
  parser.skip_space();
  if (parser.pos != text.size())
    throw std::invalid_argument("TaskExpr::parse: trailing input");
  return result;
}

}  // namespace itask::kg
