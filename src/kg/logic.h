// Composite missions: soft boolean logic over attribute evidence.
//
// The linear matcher (matcher.h) covers weighted-sum missions; real
// deployments compose requirements — "sharp AND (metallic OR bright), NOT
// organic". This module adds an expression tree evaluated with product
// t-norm soft logic over attribute probabilities:
//   AND(a, b) = a·b     OR(a, b) = a + b − a·b     NOT(a) = 1 − a
// so perfectly confident predictions reproduce crisp boolean semantics and
// soft predictions degrade smoothly. Expressions serialize to a LISP-ish
// text form for persistence alongside the knowledge graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace itask::kg {

/// Immutable soft-logic expression over an attribute vector.
class TaskExpr {
 public:
  enum class Kind { kAttribute, kAnd, kOr, kNot };

  /// Leaf: the probability of attribute `index`.
  static TaskExpr attribute(int64_t index);
  static TaskExpr conjunction(std::vector<TaskExpr> operands);
  static TaskExpr disjunction(std::vector<TaskExpr> operands);
  static TaskExpr negation(TaskExpr operand);

  Kind kind() const { return kind_; }
  int64_t attribute_index() const { return attribute_; }
  const std::vector<TaskExpr>& operands() const { return operands_; }

  /// Soft truth value in [0, 1] given attribute probabilities.
  float evaluate(const Tensor& attr_probs) const;

  /// "(and attr:1 (or attr:0 attr:6) (not attr:15))".
  std::string to_string() const;

  /// Parses the to_string() form; throws std::invalid_argument on errors.
  static TaskExpr parse(const std::string& text);

  /// Largest attribute index referenced (for validation), -1 if none.
  int64_t max_attribute() const;

 private:
  TaskExpr() = default;

  Kind kind_ = Kind::kAttribute;
  int64_t attribute_ = -1;
  std::vector<TaskExpr> operands_;
};

/// Relevance decision for a composite mission: expr truth ≥ threshold.
struct CompositeMatcher {
  TaskExpr expr;
  float threshold = 0.5f;

  bool relevant(const Tensor& attr_probs) const {
    return expr.evaluate(attr_probs) >= threshold;
  }
};

}  // namespace itask::kg
