#include "kg/matcher.h"

#include <algorithm>
#include <cmath>

namespace itask::kg {

namespace {

/// Resolves the dense index of an attribute/class node: prefers the "index"
/// property stamped by the oracle; falls back to "attr:<i>"/"class:<i>"
/// label conventions.
int64_t dense_index(const Node& node) {
  const auto it = node.properties.find("index");
  if (it != node.properties.end())
    return static_cast<int64_t>(it->second + 0.5f);
  const auto colon = node.label.find(':');
  if (colon != std::string::npos) {
    return std::strtoll(node.label.c_str() + colon + 1, nullptr, 10);
  }
  return -1;
}

}  // namespace

CompiledTask compile_task(const KnowledgeGraph& graph, NodeId task_node,
                          int64_t num_attributes, int64_t num_classes) {
  const Node& task = graph.node(task_node);
  ITASK_CHECK(task.type == NodeType::kTask,
              "compile_task: node is not a task");
  CompiledTask out;
  out.task_node = task_node;
  out.task_label = task.label;
  out.positive = Tensor({num_attributes});
  out.negative = Tensor({num_attributes});
  out.class_affinity = Tensor({num_classes});
  out.threshold = graph.property(task_node, "threshold").value_or(0.9f);

  // 1-hop: task -> attribute.
  for (const Edge& e : graph.edges_from(task_node)) {
    const Node& dst = graph.node(e.dst);
    if (dst.type != NodeType::kAttribute) continue;
    const int64_t a = dense_index(dst);
    if (a < 0 || a >= num_attributes) continue;
    if (e.relation == Relation::kRequires) out.positive[a] += e.weight;
    if (e.relation == Relation::kExcludes) out.negative[a] += e.weight;
  }

  // 2-hop: class --has_attribute--> attribute, folded through the task's
  // attribute weights.
  for (const Node& n : graph.nodes()) {
    if (n.type != NodeType::kObjectClass) continue;
    const int64_t c = dense_index(n);
    if (c < 0 || c >= num_classes) continue;
    float affinity = 0.0f;
    for (const Edge& e : graph.edges_from(n.id, Relation::kHasAttribute)) {
      const Node& attr = graph.node(e.dst);
      if (attr.type != NodeType::kAttribute) continue;
      const int64_t a = dense_index(attr);
      if (a < 0 || a >= num_attributes) continue;
      affinity += e.weight * (out.positive[a] - out.negative[a]);
    }
    out.class_affinity[c] = affinity;
  }
  return out;
}

TaskMatcher::TaskMatcher(CompiledTask task, MatcherOptions options)
    : task_(std::move(task)), options_(options) {
  ITASK_CHECK(options_.alpha >= 0.0f && options_.alpha <= 1.0f,
              "TaskMatcher: alpha must be in [0, 1]");
}

float TaskMatcher::score(const Tensor& attr_probs,
                         const Tensor& class_probs) const {
  ITASK_CHECK(attr_probs.numel() == task_.positive.numel(),
              "TaskMatcher: attribute vector size mismatch");
  ITASK_CHECK(class_probs.numel() == task_.class_affinity.numel(),
              "TaskMatcher: class vector size mismatch");
  float attr_score = 0.0f;
  for (int64_t a = 0; a < attr_probs.numel(); ++a)
    attr_score += attr_probs[a] * (task_.positive[a] - task_.negative[a]);
  float class_score = 0.0f;
  for (int64_t c = 0; c < class_probs.numel(); ++c)
    class_score += class_probs[c] * task_.class_affinity[c];
  return options_.alpha * attr_score + (1.0f - options_.alpha) * class_score;
}

float TaskMatcher::confidence(const Tensor& attr_probs,
                              const Tensor& class_probs) const {
  const float s = score(attr_probs, class_probs);
  const float threshold = task_.threshold * options_.threshold_scale;
  const float span = std::max(threshold, 0.25f);
  return std::clamp(0.5f + 0.5f * (s - threshold) / span, 0.0f, 1.0f);
}

}  // namespace itask::kg
