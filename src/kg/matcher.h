// Task-graph compilation and relevance matching.
//
// compile_task() lowers a knowledge graph into dense weight vectors:
//   * attribute weights straight from task--requires/excludes-->attribute
//     edges (1-hop), and
//   * class affinities via the 2-hop path
//     class --has_attribute--> attribute <--requires-- task,
// so the matcher can score a detection from either (or both) of the model's
// attribute and class predictions. This is the mechanism that lets iTask
// detect for a *new* task without task-specific training data.
#pragma once

#include "kg/graph.h"
#include "tensor/tensor.h"

namespace itask::kg {

/// Dense, matcher-ready form of one task inside a knowledge graph.
struct CompiledTask {
  NodeId task_node = kInvalidNode;
  std::string task_label;
  Tensor positive;        // [A] attribute importance
  Tensor negative;        // [A] attribute exclusion
  Tensor class_affinity;  // [C] 2-hop class relevance (background = 0)
  float threshold = 0.9f;
};

/// Lowers `task_node` of `graph` into dense vectors. `num_attributes` and
/// `num_classes` fix the output sizes; attribute/class nodes are matched by
/// an "index" property stamped by the oracle (falling back to label lookup
/// via the provided resolver-free convention "attr:<i>"/"class:<i>").
CompiledTask compile_task(const KnowledgeGraph& graph, NodeId task_node,
                          int64_t num_attributes, int64_t num_classes);

struct MatcherOptions {
  /// Blend between attribute evidence (alpha) and 2-hop class evidence
  /// (1 - alpha).
  float alpha = 0.65f;
  /// Relaxation applied to the graph's threshold when matching *predicted*
  /// (soft) probabilities instead of hard ground-truth attributes: soft
  /// predictions shrink scores multiplicatively, so the operating threshold
  /// is threshold × threshold_scale.
  float threshold_scale = 0.85f;
};

/// Scores predicted attribute/class probabilities against a compiled task.
class TaskMatcher {
 public:
  TaskMatcher(CompiledTask task, MatcherOptions options = {});

  /// attr_probs: [A] sigmoid outputs; class_probs: [C] softmax outputs.
  float score(const Tensor& attr_probs, const Tensor& class_probs) const;

  bool relevant(const Tensor& attr_probs, const Tensor& class_probs) const {
    return score(attr_probs, class_probs) >=
           task_.threshold * options_.threshold_scale;
  }

  /// Margin above threshold, normalised to ~[0, 1] for ranking detections.
  float confidence(const Tensor& attr_probs, const Tensor& class_probs) const;

  const CompiledTask& task() const { return task_; }

 private:
  CompiledTask task_;
  MatcherOptions options_;
};

}  // namespace itask::kg
