#include "kg/serialize.h"

#include <fstream>
#include <sstream>

#include "tensor/tensor.h"  // ITASK_CHECK

namespace itask::kg {

std::string serialize(const KnowledgeGraph& graph) {
  std::ostringstream os;
  os << "ITASK-KG v1\n";
  for (const Node& n : graph.nodes()) {
    ITASK_CHECK(n.label.find_first_of(" \t\n") == std::string::npos,
                "serialize: label contains whitespace: " + n.label);
    os << "node " << n.id << ' ' << static_cast<int>(n.type) << ' ' << n.label;
    for (const auto& [k, v] : n.properties) os << ' ' << k << '=' << v;
    os << '\n';
  }
  for (const Edge& e : graph.edges()) {
    os << "edge " << e.src << ' ' << e.dst << ' '
       << static_cast<int>(e.relation) << ' ' << e.weight << '\n';
  }
  return os.str();
}

KnowledgeGraph deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string header;
  std::getline(is, header);
  ITASK_CHECK(header == "ITASK-KG v1", "deserialize: bad header");
  KnowledgeGraph graph;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "node") {
      int64_t id = 0;
      int type = 0;
      std::string label;
      ls >> id >> type >> label;
      ITASK_CHECK(!ls.fail(), "deserialize: malformed node line");
      const NodeId got =
          graph.add_node(static_cast<NodeType>(type), label);
      ITASK_CHECK(got == id, "deserialize: non-contiguous node ids");
      std::string prop;
      while (ls >> prop) {
        const auto eq = prop.find('=');
        ITASK_CHECK(eq != std::string::npos, "deserialize: malformed property");
        graph.set_property(got, prop.substr(0, eq),
                           std::strtof(prop.c_str() + eq + 1, nullptr));
      }
    } else if (kind == "edge") {
      int64_t src = 0, dst = 0;
      int relation = 0;
      float weight = 0.0f;
      ls >> src >> dst >> relation >> weight;
      ITASK_CHECK(!ls.fail(), "deserialize: malformed edge line");
      graph.add_edge(src, dst, static_cast<Relation>(relation), weight);
    } else {
      ITASK_CHECK(false, "deserialize: unknown record kind: " + kind);
    }
  }
  return graph;
}

void save_graph(const KnowledgeGraph& graph, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_graph: cannot open " + path);
  os << serialize(graph);
  if (!os) throw std::runtime_error("save_graph: write failure " + path);
}

KnowledgeGraph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_graph: cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace itask::kg
