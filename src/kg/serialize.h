// Plain-text round-trip serialization for knowledge graphs, so generated
// graphs can be inspected, versioned, and shipped alongside deployments.
#pragma once

#include <string>

#include "kg/graph.h"

namespace itask::kg {

/// Serialises to the "ITASK-KG v1" line format. Labels must not contain
/// whitespace (the oracle emits snake_case labels); throws otherwise.
std::string serialize(const KnowledgeGraph& graph);

/// Parses a graph produced by serialize(); throws std::invalid_argument on
/// malformed input.
KnowledgeGraph deserialize(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_graph(const KnowledgeGraph& graph, const std::string& path);
KnowledgeGraph load_graph(const std::string& path);

}  // namespace itask::kg
