#include "kg/task_table.h"

#include <utility>

#include "tensor/tensor.h"

namespace itask::kg {

std::string task_id_to_string(TaskId id) {
  return "task " + std::to_string(id.value);
}

void TaskTable::add(TaskId id, std::string label, CompiledTask compiled) {
  ITASK_CHECK(id.value >= 0, "TaskTable::add: id must be >= 0");
  const auto [it, inserted] = entries_.emplace(
      id, Entry{id, std::move(label), std::move(compiled)});
  ITASK_CHECK(inserted,
              "TaskTable::add: duplicate " + task_id_to_string(id));
  (void)it;
}

const TaskTable::Entry* TaskTable::find(TaskId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<TaskId> TaskTable::ids() const {
  std::vector<TaskId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

}  // namespace itask::kg
