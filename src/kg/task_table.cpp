#include "kg/task_table.h"

#include <utility>

#include "tensor/tensor.h"

namespace itask::kg {

std::string task_id_to_string(TaskId id) {
  return "task " + std::to_string(id.value);
}

std::uint64_t task_route_hash(TaskId id, std::uint64_t salt) {
  ITASK_CHECK(id.value >= 0,
              "task_route_hash: id must be assigned (value >= 0)");
  // splitmix64 finalizer over the (id, salt) combination. The golden-ratio
  // multiply decorrelates salts that differ by small integers (shard
  // indices), then two xor-shift/multiply rounds avalanche the task bits.
  std::uint64_t x =
      static_cast<std::uint64_t>(id.value) + salt * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

void TaskTable::add(TaskId id, std::string label, CompiledTask compiled) {
  ITASK_CHECK(id.value >= 0, "TaskTable::add: id must be >= 0");
  const auto [it, inserted] = entries_.emplace(
      id, Entry{id, std::move(label), std::move(compiled)});
  ITASK_CHECK(inserted,
              "TaskTable::add: duplicate " + task_id_to_string(id));
  (void)it;
}

const TaskTable::Entry* TaskTable::find(TaskId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<TaskId> TaskTable::ids() const {
  std::vector<TaskId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

}  // namespace itask::kg
