// Stable task identity and the compiled-task table.
//
// A TaskId names one defined mission for the lifetime of a deployment: it is
// assigned once at define_task time and never reused, so it stays valid
// across re-preparation, re-publication, and serving-side snapshot swaps
// (unlike a raw storage slot, which is an implementation detail of where a
// student happens to live). The TaskTable is the value-semantic, matcher-
// ready form of every defined task — the piece of a deployment snapshot the
// knowledge-graph layer owns. Tables only grow: tasks are added, never
// removed, which is what lets a request admitted under snapshot v(n) be
// served under v(n+k).
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kg/matcher.h"

namespace itask::kg {

/// Stable identity of a defined task across deployment snapshots.
struct TaskId {
  int64_t value = -1;

  friend constexpr auto operator<=>(const TaskId&, const TaskId&) = default;
};

/// "task <value>" for error messages and trace lines.
std::string task_id_to_string(TaskId id);

/// Stable 64-bit mix of (task id, salt) — the fleet router's shard key.
/// Rendezvous (highest-random-weight) placement hashes every task against a
/// per-shard salt and routes to the argmax, so placement depends only on the
/// stable TaskId value and the shard set: it survives re-preparation,
/// re-publication, process restarts, and adding shards moves only the tasks
/// that rendezvous onto the new shard. splitmix64-style finalizer: cheap,
/// deterministic across platforms, and avalanche enough that consecutive
/// TaskIds spread evenly. Requires id.value >= 0 (an unassigned TaskId has
/// no placement).
std::uint64_t task_route_hash(TaskId id, std::uint64_t salt);

/// Compiled tasks keyed by TaskId. Value-semantic (copying a table copies
/// the dense compiled vectors); lookups return stable pointers into the
/// table, valid until the next add().
class TaskTable {
 public:
  struct Entry {
    TaskId id;
    std::string label;  // task name / description head, for diagnostics
    CompiledTask compiled;
  };

  /// Registers a task. The id must be non-negative and not yet present.
  void add(TaskId id, std::string label, CompiledTask compiled);

  /// The entry for `id`, or nullptr when the table has no such task.
  const Entry* find(TaskId id) const;

  bool contains(TaskId id) const { return find(id) != nullptr; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

  /// All registered ids in ascending order.
  std::vector<TaskId> ids() const;

 private:
  std::map<TaskId, Entry> entries_;
};

}  // namespace itask::kg
