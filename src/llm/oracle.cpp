#include "llm/oracle.h"

#include <algorithm>
#include <cctype>

#include "data/attributes.h"

namespace itask::llm {

namespace {

using data::Attribute;
using data::attr_index;

int64_t A(Attribute a) { return attr_index(a); }

std::vector<LexiconRule> build_lexicon() {
  std::vector<LexiconRule> rules;
  auto add = [&](std::string trigger,
                 std::vector<std::pair<int64_t, float>> pos,
                 std::vector<std::pair<int64_t, float>> neg = {},
                 float threshold_hint = 0.0f) {
    rules.push_back(LexiconRule{std::move(trigger), std::move(pos),
                                std::move(neg), threshold_hint});
  };

  // Attribute vocabulary words.
  add("hazardous", {{A(Attribute::kHazardous), 1.0f}});
  add("sharp", {{A(Attribute::kSharp), 0.6f}});
  add("metallic", {{A(Attribute::kMetallic), 0.5f}});
  add("fragile", {{A(Attribute::kFragile), 1.0f}});
  add("organic", {{A(Attribute::kOrganic), 0.7f}});
  add("round", {{A(Attribute::kRound), 0.5f}});
  add("bright", {{A(Attribute::kBright), 1.0f}});
  add("dark", {{A(Attribute::kDark), 0.4f}});
  add("elongated", {{A(Attribute::kElongated), 0.4f}});
  add("textured", {{A(Attribute::kTextured), 0.35f}});
  add("moving", {{A(Attribute::kMoving), 0.6f}});

  // Domain/mission words: the "world knowledge" an LLM contributes.
  add("track", {{A(Attribute::kMoving), 0.4f}});
  add("vehicle", {}, {{A(Attribute::kSmall), 0.4f}});
  add("instruments", {{A(Attribute::kSmall), 0.3f}}, {}, 0.0f);
  add("surgical", {}, {}, 1.0f);
  add("produce", {}, {}, 1.05f);
  add("fasteners",
      {{A(Attribute::kMetallic), 0.2f}, {A(Attribute::kSmall), 0.5f}},
      {{A(Attribute::kSharp), 0.4f}});
  add("markers", {}, {{A(Attribute::kOrganic), 0.3f}});
  add("defects", {{A(Attribute::kHazardous), 0.4f}});
  return rules;
}

}  // namespace

Oracle::Oracle(OracleOptions options) : options_(options) {
  ITASK_CHECK(options_.weight_noise >= 0.0f, "Oracle: negative noise");
  ITASK_CHECK(
      options_.drop_probability >= 0.0f && options_.drop_probability < 1.0f,
      "Oracle: drop probability out of range");
}

const std::vector<LexiconRule>& Oracle::lexicon() {
  static const std::vector<LexiconRule> kLexicon = build_lexicon();
  return kLexicon;
}

std::vector<std::string> Oracle::tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    if (std::isalpha(static_cast<unsigned char>(ch))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

kg::KnowledgeGraph Oracle::generate(const std::string& task_description) const {
  // Seed the noise model with a hash of the description so repeated calls on
  // the same text are identical but distinct tasks decorrelate.
  uint64_t h = options_.seed;
  for (char c : task_description)
    h = h * 1099511628211ULL ^ static_cast<uint64_t>(c);
  Rng rng(h);

  kg::KnowledgeGraph graph;
  const kg::NodeId task = graph.add_node(kg::NodeType::kTask, "task");

  std::vector<kg::NodeId> attr_nodes;
  for (int64_t a = 0; a < data::kNumAttributes; ++a) {
    const kg::NodeId id = graph.add_node(
        kg::NodeType::kAttribute,
        data::attribute_name(static_cast<Attribute>(a)));
    graph.set_property(id, "index", static_cast<float>(a));
    attr_nodes.push_back(id);
  }
  std::vector<kg::NodeId> class_nodes;
  for (int64_t c = 0; c < data::kNumClasses; ++c) {
    const kg::NodeId id = graph.add_node(
        kg::NodeType::kObjectClass,
        data::class_name(static_cast<data::ObjectClass>(c)));
    graph.set_property(id, "index", static_cast<float>(c));
    class_nodes.push_back(id);
  }

  auto noisy = [&](float w) {
    return options_.weight_noise > 0.0f
               ? w * (1.0f + rng.normal(0.0f, options_.weight_noise))
               : w;
  };
  auto dropped = [&]() {
    return options_.drop_probability > 0.0 &&
           rng.bernoulli(options_.drop_probability);
  };

  // Accumulate lexicon evidence over the token stream.
  const std::vector<std::string> tokens = tokenize(task_description);
  Tensor pos({data::kNumAttributes});
  Tensor neg({data::kNumAttributes});
  float threshold = 0.9f;
  for (const LexiconRule& rule : lexicon()) {
    if (std::find(tokens.begin(), tokens.end(), rule.trigger) == tokens.end())
      continue;
    for (const auto& [a, w] : rule.positive) pos[a] += w;
    for (const auto& [a, w] : rule.negative) neg[a] += w;
    if (rule.threshold_hint > 0.0f) threshold = rule.threshold_hint;
  }

  for (int64_t a = 0; a < data::kNumAttributes; ++a) {
    if (pos[a] > 0.0f && !dropped())
      graph.add_edge(task, attr_nodes[static_cast<size_t>(a)],
                     kg::Relation::kRequires, noisy(pos[a]));
    if (neg[a] > 0.0f && !dropped())
      graph.add_edge(task, attr_nodes[static_cast<size_t>(a)],
                     kg::Relation::kExcludes, noisy(neg[a]));
    if (options_.spurious_probability > 0.0f && pos[a] == 0.0f &&
        neg[a] == 0.0f && rng.bernoulli(options_.spurious_probability)) {
      graph.add_edge(task, attr_nodes[static_cast<size_t>(a)],
                     kg::Relation::kRequires,
                     std::abs(rng.normal(0.0f, 0.15f)));
    }
  }
  graph.set_property(
      task, "threshold",
      options_.weight_noise > 0.0f
          ? threshold * (1.0f + rng.normal(0.0f, 0.5f * options_.weight_noise))
          : threshold);

  // Class ontology: class --has_attribute--> attribute from the prototypes.
  for (int64_t c = 1; c < data::kNumClasses; ++c) {
    const Tensor proto =
        data::class_attribute_prototype(static_cast<data::ObjectClass>(c));
    for (int64_t a = 0; a < data::kNumAttributes; ++a) {
      if (proto[a] <= 0.0f || dropped()) continue;
      graph.add_edge(class_nodes[static_cast<size_t>(c)],
                     attr_nodes[static_cast<size_t>(a)],
                     kg::Relation::kHasAttribute, noisy(proto[a]));
    }
  }
  return graph;
}

}  // namespace itask::llm
