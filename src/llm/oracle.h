// Simulated LLM oracle (DESIGN.md §4): expands a natural-language task
// description into an abstract knowledge graph.
//
// The real iTask calls an external LLM; everything downstream consumes only
// the *graph*. This oracle reproduces that interface deterministically: a
// curated lexicon maps mission vocabulary to attribute requirements (the
// "commonsense" an LLM contributes), a class ontology contributes
// class--has_attribute-->attribute edges, and a controllable noise model
// degrades the graph to emulate imperfect LLM outputs (swept in experiment
// A3).
#pragma once

#include <string>
#include <vector>

#include "kg/graph.h"
#include "tensor/rng.h"

namespace itask::llm {

struct OracleOptions {
  /// Multiplicative Gaussian noise applied to every edge weight
  /// (weight *= 1 + N(0, weight_noise)).
  float weight_noise = 0.0f;
  /// Probability of dropping a generated edge entirely.
  float drop_probability = 0.0f;
  /// Probability (per candidate) of adding a spurious low-weight edge.
  float spurious_probability = 0.0f;
  /// Seed for the noise model; graphs are deterministic given (text, seed).
  uint64_t seed = 0x17A5Cu;
};

/// One lexicon rule: a trigger word contributing attribute evidence.
struct LexiconRule {
  std::string trigger;  // lowercase word matched against tokens
  std::vector<std::pair<int64_t, float>> positive;  // (attribute idx, weight)
  std::vector<std::pair<int64_t, float>> negative;
  float threshold_hint = 0.0f;  // > 0 overrides the default threshold
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = {});

  /// Generates the knowledge graph for one task description. The graph
  /// contains: one task node ("task" label, with a "threshold" property),
  /// 16 attribute nodes ("attr:<i>"), 12+1 class nodes ("class:<i>"),
  /// requires/excludes edges from the lexicon, and has_attribute ontology
  /// edges from the class prototypes.
  kg::KnowledgeGraph generate(const std::string& task_description) const;

  /// The lexicon the oracle reasons with (exposed for inspection/tests).
  static const std::vector<LexiconRule>& lexicon();

  /// Lowercased alphabetic tokens of `text`.
  static std::vector<std::string> tokenize(const std::string& text);

  const OracleOptions& options() const { return options_; }

 private:
  OracleOptions options_;
};

}  // namespace itask::llm
