#include "nn/activation.h"

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace itask::nn {

Tensor Gelu::forward(const Tensor& input) {
  cached_input_ = input;
  return ops::gelu(input);
}

Tensor Gelu::infer(const Tensor& input) const { return ops::gelu(input); }

Tensor Gelu::backward(const Tensor& grad_out) {
  ITASK_CHECK(!cached_input_.empty(), "Gelu: backward before forward");
  return ops::gelu_grad(cached_input_, grad_out);
}

Tensor Relu::forward(const Tensor& input) {
  cached_input_ = input;
  return ops::relu(input);
}

Tensor Relu::infer(const Tensor& input) const { return ops::relu(input); }

Tensor Relu::backward(const Tensor& grad_out) {
  ITASK_CHECK(!cached_input_.empty(), "Relu: backward before forward");
  return ops::relu_grad(cached_input_, grad_out);
}

Dropout::Dropout(float p, uint64_t seed) : p_(p), next_seed_(seed) {
  ITASK_CHECK(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training() || p_ == 0.0f) {
    cached_mask_ = Tensor();
    return input;
  }
  Rng rng(next_seed_++);
  const float keep = 1.0f - p_;
  Tensor mask(input.shape());
  for (float& m : mask.data()) m = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  cached_mask_ = mask;
  return ops::mul(input, mask);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) return grad_out;
  return ops::mul(grad_out, cached_mask_);
}

}  // namespace itask::nn
