// Stateless activation layers (they cache the forward input for backward).
#pragma once

#include "nn/module.h"

namespace itask::nn {

class Gelu : public Module {
 public:
  Tensor forward(const Tensor& input);
  /// Cache-free forward for concurrent inference.
  Tensor infer(const Tensor& input) const;
  Tensor backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
};

class Relu : public Module {
 public:
  Tensor forward(const Tensor& input);
  /// Cache-free forward for concurrent inference.
  Tensor infer(const Tensor& input) const;
  Tensor backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
};

/// Inverted dropout; identity in eval mode. Mask is drawn from the Rng
/// supplied at construction (forked per forward call for reproducibility).
class Dropout : public Module {
 public:
  Dropout(float p, uint64_t seed);

  Tensor forward(const Tensor& input);
  Tensor backward(const Tensor& grad_out);

 private:
  float p_;
  uint64_t next_seed_;
  Tensor cached_mask_;
};

}  // namespace itask::nn
