#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"

namespace itask::nn {

Tensor split_heads(const Tensor& x, int64_t heads) {
  ITASK_CHECK(x.ndim() == 3, "split_heads: need [B, T, D]");
  const int64_t b = x.dim(0), t = x.dim(1), d = x.dim(2);
  ITASK_CHECK(d % heads == 0, "split_heads: dim not divisible by heads");
  const int64_t hd = d / heads;
  Tensor out({b * heads, t, hd});
  auto in = x.data();
  auto o = out.data();
  for (int64_t bi = 0; bi < b; ++bi)
    for (int64_t h = 0; h < heads; ++h)
      for (int64_t ti = 0; ti < t; ++ti) {
        const float* src = in.data() + (bi * t + ti) * d + h * hd;
        float* dst = o.data() + ((bi * heads + h) * t + ti) * hd;
        std::copy(src, src + hd, dst);
      }
  return out;
}

Tensor merge_heads(const Tensor& x, int64_t heads) {
  ITASK_CHECK(x.ndim() == 3, "merge_heads: need [B*H, T, hd]");
  const int64_t bh = x.dim(0), t = x.dim(1), hd = x.dim(2);
  ITASK_CHECK(bh % heads == 0, "merge_heads: batch not divisible by heads");
  const int64_t b = bh / heads;
  const int64_t d = heads * hd;
  Tensor out({b, t, d});
  auto in = x.data();
  auto o = out.data();
  for (int64_t bi = 0; bi < b; ++bi)
    for (int64_t h = 0; h < heads; ++h)
      for (int64_t ti = 0; ti < t; ++ti) {
        const float* src = in.data() + ((bi * heads + h) * t + ti) * hd;
        float* dst = o.data() + (bi * t + ti) * d + h * hd;
        std::copy(src, src + hd, dst);
      }
  return out;
}

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      scale_(1.0f / std::sqrt(static_cast<float>(dim / heads))),
      qkv_(dim, 3 * dim, rng),
      proj_(dim, dim, rng) {
  ITASK_CHECK(dim % heads == 0, "MultiHeadAttention: dim % heads != 0");
  register_child("qkv", qkv_);
  register_child("proj", proj_);
}

Tensor MultiHeadAttention::forward(const Tensor& tokens) {
  ITASK_CHECK(tokens.ndim() == 3 && tokens.dim(2) == dim_,
              "MultiHeadAttention: need [B, T, dim]");
  const int64_t b = tokens.dim(0), t = tokens.dim(1);
  Tensor qkv = qkv_.forward(tokens);  // [B, T, 3D]
  // Slice out Q, K, V as [B, T, D] each.
  Tensor q({b, t, dim_}), k({b, t, dim_}), v({b, t, dim_});
  {
    auto src = qkv.data();
    auto qd = q.data(), kd = k.data(), vd = v.data();
    for (int64_t r = 0; r < b * t; ++r) {
      const float* row = src.data() + r * 3 * dim_;
      std::copy(row, row + dim_, qd.data() + r * dim_);
      std::copy(row + dim_, row + 2 * dim_, kd.data() + r * dim_);
      std::copy(row + 2 * dim_, row + 3 * dim_, vd.data() + r * dim_);
    }
  }
  cached_q_ = split_heads(q, heads_);  // [B*H, T, hd]
  cached_k_ = split_heads(k, heads_);
  cached_v_ = split_heads(v, heads_);
  Tensor scores =
      ops::mul_scalar(ops::bmm_bt(cached_q_, cached_k_), scale_);  // [B*H,T,T]
  cached_attn_ = ops::softmax_lastdim(scores);
  Tensor ctx = ops::bmm(cached_attn_, cached_v_);  // [B*H, T, hd]
  cached_batch_ = b;
  return proj_.forward(merge_heads(ctx, heads_));
}

Tensor MultiHeadAttention::infer(const Tensor& tokens) const {
  ITASK_CHECK(tokens.ndim() == 3 && tokens.dim(2) == dim_,
              "MultiHeadAttention: need [B, T, dim]");
  const int64_t b = tokens.dim(0), t = tokens.dim(1);
  Tensor qkv = qkv_.infer(tokens);  // [B, T, 3D]
  Tensor q({b, t, dim_}), k({b, t, dim_}), v({b, t, dim_});
  {
    auto src = qkv.data();
    auto qd = q.data(), kd = k.data(), vd = v.data();
    for (int64_t r = 0; r < b * t; ++r) {
      const float* row = src.data() + r * 3 * dim_;
      std::copy(row, row + dim_, qd.data() + r * dim_);
      std::copy(row + dim_, row + 2 * dim_, kd.data() + r * dim_);
      std::copy(row + 2 * dim_, row + 3 * dim_, vd.data() + r * dim_);
    }
  }
  const Tensor qh = split_heads(q, heads_);  // [B*H, T, hd]
  const Tensor kh = split_heads(k, heads_);
  const Tensor vh = split_heads(v, heads_);
  Tensor scores = ops::mul_scalar(ops::bmm_bt(qh, kh), scale_);  // [B*H,T,T]
  Tensor ctx = ops::bmm(ops::softmax_lastdim(scores), vh);  // [B*H, T, hd]
  return proj_.infer(merge_heads(ctx, heads_));
}

Tensor MultiHeadAttention::backward(const Tensor& grad_out) {
  ITASK_CHECK(!cached_attn_.empty(),
              "MultiHeadAttention: backward before forward");
  const int64_t b = cached_batch_;
  const int64_t t = cached_q_.dim(1);
  Tensor d_ctx_merged = proj_.backward(grad_out);          // [B, T, D]
  Tensor d_ctx = split_heads(d_ctx_merged, heads_);        // [B*H, T, hd]
  // ctx = attn · v
  Tensor d_attn = ops::bmm_bt(d_ctx, cached_v_);           // [B*H, T, T]
  Tensor d_v = ops::bmm_at(cached_attn_, d_ctx);           // [B*H, T, hd]
  // attn = softmax(scores)
  Tensor d_scores = ops::softmax_backward_lastdim(cached_attn_, d_attn);
  d_scores = ops::mul_scalar(d_scores, scale_);
  // scores = q · kᵀ
  Tensor d_q = ops::bmm(d_scores, cached_k_);              // [B*H, T, hd]
  Tensor d_k = ops::bmm_at(d_scores, cached_q_);           // [B*H, T, hd]
  // Re-pack [dq|dk|dv] into the qkv gradient layout [B, T, 3D].
  Tensor dq_m = merge_heads(d_q, heads_);
  Tensor dk_m = merge_heads(d_k, heads_);
  Tensor dv_m = merge_heads(d_v, heads_);
  Tensor d_qkv({b, t, 3 * dim_});
  {
    auto dst = d_qkv.data();
    auto qd = dq_m.data(), kd = dk_m.data(), vd = dv_m.data();
    for (int64_t r = 0; r < b * t; ++r) {
      float* row = dst.data() + r * 3 * dim_;
      std::copy(qd.data() + r * dim_, qd.data() + (r + 1) * dim_, row);
      std::copy(kd.data() + r * dim_, kd.data() + (r + 1) * dim_, row + dim_);
      std::copy(vd.data() + r * dim_, vd.data() + (r + 1) * dim_,
                row + 2 * dim_);
    }
  }
  return qkv_.backward(d_qkv);
}

}  // namespace itask::nn
