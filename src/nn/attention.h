// Multi-head self-attention with a hand-derived backward pass.
#pragma once

#include "nn/linear.h"
#include "nn/module.h"

namespace itask::nn {

/// Rearranges [B, T, H*hd] into [B*H, T, hd] (exposed for tests).
Tensor split_heads(const Tensor& x, int64_t heads);

/// Inverse of split_heads: [B*H, T, hd] -> [B, T, H*hd].
Tensor merge_heads(const Tensor& x, int64_t heads);

/// Scaled-dot-product multi-head self-attention over token sequences
/// shaped [B, T, D]. QKV and output projections are Linear layers.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t dim, int64_t heads, Rng& rng);

  Tensor forward(const Tensor& tokens);

  /// Cache-free forward for concurrent inference: numerically identical to
  /// forward() but does not populate the activation caches (so backward()
  /// and last_attention() still refer to the last forward() call).
  Tensor infer(const Tensor& tokens) const;

  Tensor backward(const Tensor& grad_out);

  int64_t dim() const { return dim_; }
  int64_t heads() const { return heads_; }

  /// Attention probabilities of the most recent forward pass, laid out
  /// [B*H, T, T] (rows sum to 1). Empty before the first forward.
  const Tensor& last_attention() const { return cached_attn_; }

 private:
  int64_t dim_;
  int64_t heads_;
  int64_t head_dim_;
  float scale_;
  Linear qkv_;
  Linear proj_;
  // Cached activations for backward (all in the [B*H, T, hd] layout).
  Tensor cached_q_, cached_k_, cached_v_, cached_attn_;
  int64_t cached_batch_ = 0;
};

}  // namespace itask::nn
