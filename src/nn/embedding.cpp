#include "nn/embedding.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace itask::nn {

Tensor patchify(const Tensor& images, int64_t patch) {
  ITASK_CHECK(images.ndim() == 4, "patchify: need [B, C, H, W]");
  const int64_t b = images.dim(0), c = images.dim(1), h = images.dim(2),
                w = images.dim(3);
  ITASK_CHECK(h % patch == 0 && w % patch == 0,
              "patchify: image not divisible by patch size");
  const int64_t gh = h / patch, gw = w / patch;
  const int64_t t = gh * gw;
  const int64_t pv = c * patch * patch;
  Tensor out({b, t, pv});
  auto in = images.data();
  auto o = out.data();
  for (int64_t bi = 0; bi < b; ++bi)
    for (int64_t gy = 0; gy < gh; ++gy)
      for (int64_t gx = 0; gx < gw; ++gx) {
        float* dst = o.data() + (bi * t + gy * gw + gx) * pv;
        for (int64_t ci = 0; ci < c; ++ci)
          for (int64_t py = 0; py < patch; ++py) {
            const float* src = in.data() + ((bi * c + ci) * h +
                                            (gy * patch + py)) *
                                               w +
                               gx * patch;
            std::copy(src, src + patch,
                      dst + (ci * patch + py) * patch);
          }
      }
  return out;
}

Tensor unpatchify_grad(const Tensor& grad_patches, int64_t patch, int64_t c,
                       int64_t h, int64_t w) {
  ITASK_CHECK(grad_patches.ndim() == 3, "unpatchify_grad: need [B, T, pv]");
  const int64_t b = grad_patches.dim(0);
  const int64_t gh = h / patch, gw = w / patch;
  const int64_t t = gh * gw;
  const int64_t pv = c * patch * patch;
  ITASK_CHECK(grad_patches.dim(1) == t && grad_patches.dim(2) == pv,
              "unpatchify_grad: shape mismatch");
  Tensor out({b, c, h, w});
  auto in = grad_patches.data();
  auto o = out.data();
  for (int64_t bi = 0; bi < b; ++bi)
    for (int64_t gy = 0; gy < gh; ++gy)
      for (int64_t gx = 0; gx < gw; ++gx) {
        const float* src = in.data() + (bi * t + gy * gw + gx) * pv;
        for (int64_t ci = 0; ci < c; ++ci)
          for (int64_t py = 0; py < patch; ++py) {
            float* dst = o.data() + ((bi * c + ci) * h + (gy * patch + py)) *
                             w +
                         gx * patch;
            const float* s = src + (ci * patch + py) * patch;
            for (int64_t px = 0; px < patch; ++px) dst[px] += s[px];
          }
      }
  return out;
}

PatchEmbed::PatchEmbed(int64_t image_size, int64_t patch_size,
                       int64_t channels, int64_t dim, Rng& rng)
    : image_size_(image_size),
      patch_size_(patch_size),
      channels_(channels),
      dim_(dim),
      tokens_((image_size / patch_size) * (image_size / patch_size)),
      proj_(channels * patch_size * patch_size, dim, rng),
      cls_(register_parameter("cls", trunc_normal({dim}, 0.02f, rng))),
      pos_(register_parameter(
          "pos", trunc_normal({tokens_ + 1, dim}, 0.02f, rng))) {
  ITASK_CHECK(image_size % patch_size == 0,
              "PatchEmbed: image_size % patch_size != 0");
  register_child("proj", proj_);
}

Tensor PatchEmbed::forward(const Tensor& images) {
  ITASK_CHECK(images.ndim() == 4 && images.dim(1) == channels_ &&
                  images.dim(2) == image_size_ && images.dim(3) == image_size_,
              "PatchEmbed: unexpected image shape");
  const int64_t b = images.dim(0);
  cached_batch_ = b;
  Tensor patches = patchify(images, patch_size_);        // [B, T, pv]
  Tensor projected = proj_.forward(patches);             // [B, T, D]
  Tensor out({b, tokens_ + 1, dim_});
  auto o = out.data();
  auto pd = projected.data();
  auto cls = cls_.value.data();
  auto pos = pos_.value.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    float* base = o.data() + bi * (tokens_ + 1) * dim_;
    for (int64_t j = 0; j < dim_; ++j) base[j] = cls[j] + pos[j];
    for (int64_t ti = 0; ti < tokens_; ++ti) {
      const float* src = pd.data() + (bi * tokens_ + ti) * dim_;
      float* dst = base + (ti + 1) * dim_;
      const float* prow = pos.data() + (ti + 1) * dim_;
      for (int64_t j = 0; j < dim_; ++j) dst[j] = src[j] + prow[j];
    }
  }
  return out;
}

Tensor PatchEmbed::infer(const Tensor& images) const {
  ITASK_CHECK(images.ndim() == 4 && images.dim(1) == channels_ &&
                  images.dim(2) == image_size_ && images.dim(3) == image_size_,
              "PatchEmbed: unexpected image shape");
  const int64_t b = images.dim(0);
  Tensor patches = patchify(images, patch_size_);        // [B, T, pv]
  Tensor projected = proj_.infer(patches);               // [B, T, D]
  Tensor out({b, tokens_ + 1, dim_});
  auto o = out.data();
  auto pd = projected.data();
  auto cls = cls_.value.data();
  auto pos = pos_.value.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    float* base = o.data() + bi * (tokens_ + 1) * dim_;
    for (int64_t j = 0; j < dim_; ++j) base[j] = cls[j] + pos[j];
    for (int64_t ti = 0; ti < tokens_; ++ti) {
      const float* src = pd.data() + (bi * tokens_ + ti) * dim_;
      float* dst = base + (ti + 1) * dim_;
      const float* prow = pos.data() + (ti + 1) * dim_;
      for (int64_t j = 0; j < dim_; ++j) dst[j] = src[j] + prow[j];
    }
  }
  return out;
}

Tensor PatchEmbed::backward(const Tensor& grad_tokens) {
  ITASK_CHECK(cached_batch_ > 0, "PatchEmbed: backward before forward");
  const int64_t b = cached_batch_;
  ITASK_CHECK(grad_tokens.ndim() == 3 && grad_tokens.dim(0) == b &&
                  grad_tokens.dim(1) == tokens_ + 1 &&
                  grad_tokens.dim(2) == dim_,
              "PatchEmbed: grad shape mismatch");
  auto g = grad_tokens.data();
  auto dcls = cls_.grad.data();
  auto dpos = pos_.grad.data();
  Tensor d_proj({b, tokens_, dim_});
  auto dp = d_proj.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* base = g.data() + bi * (tokens_ + 1) * dim_;
    for (int64_t j = 0; j < dim_; ++j) {
      dcls[j] += base[j];
      dpos[j] += base[j];
    }
    for (int64_t ti = 0; ti < tokens_; ++ti) {
      const float* src = base + (ti + 1) * dim_;
      float* dst = dp.data() + (bi * tokens_ + ti) * dim_;
      float* prow = dpos.data() + (ti + 1) * dim_;
      for (int64_t j = 0; j < dim_; ++j) {
        dst[j] = src[j];
        prow[j] += src[j];
      }
    }
  }
  Tensor d_patches = proj_.backward(d_proj);  // [B, T, pv]
  return unpatchify_grad(d_patches, patch_size_, channels_, image_size_,
                         image_size_);
}

}  // namespace itask::nn
