// Patch embedding front-end for the ViT: image -> patch tokens + CLS token
// + learned positional embedding.
#pragma once

#include "nn/linear.h"
#include "nn/module.h"

namespace itask::nn {

/// Rearranges [B, C, H, W] into flattened patches [B, T, C*P*P] where
/// T = (H/P)*(W/P). Exposed for tests and for the quantized runtime.
Tensor patchify(const Tensor& images, int64_t patch);

/// Scatters patch gradients [B, T, C*P*P] back into image layout [B, C, H, W].
Tensor unpatchify_grad(const Tensor& grad_patches, int64_t patch, int64_t c,
                       int64_t h, int64_t w);

/// Linear patch projection with a learned CLS token and positional embedding.
/// Output is [B, T+1, dim]; token 0 is the CLS token.
class PatchEmbed : public Module {
 public:
  PatchEmbed(int64_t image_size, int64_t patch_size, int64_t channels,
             int64_t dim, Rng& rng);

  Tensor forward(const Tensor& images);

  /// Cache-free forward for concurrent inference.
  Tensor infer(const Tensor& images) const;

  /// Accumulates parameter gradients. Returns the gradient w.r.t. the input
  /// images (rarely needed, but kept for completeness / gradcheck).
  Tensor backward(const Tensor& grad_tokens);

  int64_t tokens() const { return tokens_; }  // excludes CLS
  int64_t dim() const { return dim_; }
  int64_t patch_size() const { return patch_size_; }

 private:
  int64_t image_size_;
  int64_t patch_size_;
  int64_t channels_;
  int64_t dim_;
  int64_t tokens_;
  Linear proj_;
  Parameter& cls_;   // [dim]
  Parameter& pos_;   // [tokens+1, dim]
  int64_t cached_batch_ = 0;
};

}  // namespace itask::nn
