#include "nn/gradcheck.h"

#include <algorithm>
#include <cfloat>
#include <cmath>

namespace itask::nn {

GradCheckResult check_gradients(Module& module,
                                const std::function<float()>& loss_fn,
                                float epsilon, float tolerance,
                                int64_t max_checks_per_param) {
  GradCheckResult result;
  module.zero_grad();
  const float loss_scale = std::abs(loss_fn());  // populate analytic gradients
  // Central differences of an fp32 loss carry cancellation noise of a few
  // ulps of the loss divided by the step: near-zero gradients below this
  // floor cannot be distinguished from it, so the absolute-error gate must
  // not drop beneath it (a wrong backward formula produces errors scaling
  // with the gradient magnitude, far above the floor).
  const float noise_floor =
      4.0f * loss_scale * FLT_EPSILON / (2.0f * epsilon);
  const float abs_gate = std::max(1e-4f, noise_floor);
  // Snapshot analytic grads (later loss_fn calls will re-accumulate).
  std::vector<Tensor> analytic;
  auto params = module.parameters();
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter& p = *params[pi];
    const int64_t n = p.value.numel();
    const int64_t checks = std::min<int64_t>(n, max_checks_per_param);
    // Deterministic stride-sample across the tensor.
    const int64_t stride = std::max<int64_t>(1, n / checks);
    for (int64_t j = 0; j < n; j += stride) {
      const float saved = p.value[j];
      p.value[j] = saved + epsilon;
      module.zero_grad();
      const float lp = loss_fn();
      p.value[j] = saved - epsilon;
      module.zero_grad();
      const float lm = loss_fn();
      p.value[j] = saved;
      const float numeric = (lp - lm) / (2.0f * epsilon);
      const float exact = analytic[pi][j];
      const float abs_err = std::abs(numeric - exact);
      const float denom = std::max({std::abs(numeric), std::abs(exact), 1e-4f});
      const float rel_err = abs_err / denom;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
        result.worst_parameter = p.name;
      }
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      if (rel_err > tolerance && abs_err > abs_gate) result.ok = false;
    }
  }
  // Restore analytic gradients for any caller inspection.
  module.zero_grad();
  (void)loss_fn();
  return result;
}

}  // namespace itask::nn
