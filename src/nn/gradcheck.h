// Numerical gradient checking — the validation backbone for every layer's
// hand-written backward pass (DESIGN.md §7).
#pragma once

#include <functional>
#include <string>

#include "nn/module.h"

namespace itask::nn {

struct GradCheckResult {
  bool ok = true;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string worst_parameter;
};

/// `loss_fn` must run the full forward+backward for a fixed input and return
/// the scalar loss, leaving gradients accumulated on `module`'s parameters.
/// Compares analytic grads against central finite differences on a sample of
/// up to `max_checks_per_param` elements per parameter.
GradCheckResult check_gradients(Module& module,
                                const std::function<float()>& loss_fn,
                                float epsilon = 1e-3f, float tolerance = 2e-2f,
                                int64_t max_checks_per_param = 24);

}  // namespace itask::nn
