#include "nn/init.h"

#include <cmath>

namespace itask::nn {

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  ITASK_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform: bad fan");
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return rng.rand(std::move(shape), -a, a);
}

Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng) {
  ITASK_CHECK(fan_in > 0, "kaiming_normal: bad fan_in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return rng.randn(std::move(shape), 0.0f, stddev);
}

Tensor trunc_normal(Shape shape, float stddev, Rng& rng) {
  Tensor out(std::move(shape));
  for (float& v : out.data()) {
    float x = rng.normal(0.0f, stddev);
    int guard = 0;
    while (std::abs(x) > 2.0f * stddev && guard++ < 16)
      x = rng.normal(0.0f, stddev);
    v = x;
  }
  return out;
}

}  // namespace itask::nn
