// Weight initialisation schemes.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace itask::nn {

/// Xavier/Glorot uniform: U[-a, a], a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Kaiming/He normal for ReLU-family fan-in: N(0, sqrt(2 / fan_in)).
Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng);

/// Small truncated-ish normal used for embeddings (resampled at 2 sigma).
Tensor trunc_normal(Shape shape, float stddev, Rng& rng);

}  // namespace itask::nn
