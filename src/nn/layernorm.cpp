#include "nn/layernorm.h"

#include <cmath>

#include "tensor/ops.h"

namespace itask::nn {

Tensor layernorm_affine(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps) {
  ITASK_CHECK(gamma.ndim() == 1 && gamma.shape() == beta.shape(),
              "layernorm_affine: gamma/beta must be matching 1-D");
  const int64_t c = gamma.numel();
  ITASK_CHECK(x.ndim() >= 1 && x.dim(x.ndim() - 1) == c,
              "layernorm_affine: trailing dim mismatch");
  const int64_t rows = x.numel() / c;
  Tensor out = x;
  auto o = out.data();
  auto g = gamma.data();
  auto b = beta.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = o.data() + r * c;
    float mean = 0.0f;
    for (int64_t j = 0; j < c; ++j) mean += row[j];
    mean /= static_cast<float>(c);
    float var = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(c);
    const float rstd = 1.0f / std::sqrt(var + eps);
    // Statement structure mirrors LayerNorm::forward so infer stays
    // element-wise identical under fp contraction (asserted in test_runtime).
    for (int64_t j = 0; j < c; ++j) {
      const float xhat = (row[j] - mean) * rstd;
      row[j] = xhat * g[j] + b[j];
    }
  }
  return out;
}

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features),
      eps_(eps),
      gamma_(register_parameter("gamma", Tensor({features}, 1.0f))),
      beta_(register_parameter("beta", Tensor({features}))) {}

Tensor LayerNorm::forward(const Tensor& input) {
  ITASK_CHECK(input.ndim() >= 1 && input.dim(input.ndim() - 1) == features_,
              "LayerNorm: trailing dim mismatch");
  const int64_t c = features_;
  const int64_t rows = input.numel() / c;
  Tensor xhat({rows, c});
  Tensor rstd({rows});
  Tensor out = input;
  auto in = input.data();
  auto xh = xhat.data();
  auto rs = rstd.data();
  auto o = out.data();
  auto g = gamma_.value.data();
  auto b = beta_.value.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = in.data() + r * c;
    float mean = 0.0f;
    for (int64_t j = 0; j < c; ++j) mean += row[j];
    mean /= static_cast<float>(c);
    float var = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(c);
    const float r_std = 1.0f / std::sqrt(var + eps_);
    rs[r] = r_std;
    float* xrow = xh.data() + r * c;
    float* orow = o.data() + r * c;
    for (int64_t j = 0; j < c; ++j) {
      xrow[j] = (row[j] - mean) * r_std;
      orow[j] = xrow[j] * g[j] + b[j];
    }
  }
  cached_xhat_ = std::move(xhat);
  cached_rstd_ = std::move(rstd);
  cached_shape_ = input.shape();
  return out;
}

Tensor LayerNorm::infer(const Tensor& input) const {
  ITASK_CHECK(input.ndim() >= 1 && input.dim(input.ndim() - 1) == features_,
              "LayerNorm: trailing dim mismatch");
  return layernorm_affine(input, gamma_.value, beta_.value, eps_);
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  ITASK_CHECK(!cached_xhat_.empty(), "LayerNorm: backward before forward");
  const int64_t c = features_;
  const int64_t rows = cached_xhat_.dim(0);
  ITASK_CHECK(grad_out.numel() == rows * c, "LayerNorm: grad size mismatch");
  Tensor dx({rows, c});
  auto g = grad_out.data();
  auto xh = cached_xhat_.data();
  auto rs = cached_rstd_.data();
  auto gam = gamma_.value.data();
  auto dgam = gamma_.grad.data();
  auto dbet = beta_.grad.data();
  auto dxo = dx.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* grow = g.data() + r * c;
    const float* xrow = xh.data() + r * c;
    float* dxrow = dxo.data() + r * c;
    // dL/dxhat = g * gamma; then the standard layernorm backward:
    // dx = rstd * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
    float mean_dxh = 0.0f, mean_dxh_xh = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float dxh = grow[j] * gam[j];
      mean_dxh += dxh;
      mean_dxh_xh += dxh * xrow[j];
      dgam[j] += grow[j] * xrow[j];
      dbet[j] += grow[j];
    }
    mean_dxh /= static_cast<float>(c);
    mean_dxh_xh /= static_cast<float>(c);
    for (int64_t j = 0; j < c; ++j) {
      const float dxh = grow[j] * gam[j];
      dxrow[j] = rs[r] * (dxh - mean_dxh - xrow[j] * mean_dxh_xh);
    }
  }
  return dx.reshape(cached_shape_);
}

}  // namespace itask::nn
