// Layer normalisation over the trailing axis, with affine gain/bias.
#pragma once

#include "nn/module.h"

namespace itask::nn {

/// Stateless affine layernorm over the trailing axis — the single fp32
/// implementation shared by LayerNorm::infer and the quantized runtime
/// (which keeps LayerNorm in fp32, see quant/qvit.h).
Tensor layernorm_affine(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps = 1e-5f);

/// y = (x - mean) / sqrt(var + eps) * gamma + beta, normalised per row.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& input);

  /// Cache-free forward for concurrent inference (numerically identical to
  /// forward(); touches no mutable state).
  Tensor infer(const Tensor& input) const;

  Tensor backward(const Tensor& grad_out);

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float eps_;
  Parameter& gamma_;
  Parameter& beta_;
  Tensor cached_xhat_;   // normalised input, [rows, C]
  Tensor cached_rstd_;   // 1/sqrt(var+eps) per row, [rows]
  Shape cached_shape_;
};

}  // namespace itask::nn
