#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace itask::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(register_parameter(
          "weight", xavier_uniform({out_features, in_features}, in_features,
                                   out_features, rng))) {
  if (bias) {
    bias_ = &register_parameter("bias", Tensor({out_features}));
  }
}

Tensor Linear::forward(const Tensor& input) {
  ITASK_CHECK(input.ndim() >= 1, "Linear: input must be at least 1-D");
  ITASK_CHECK(input.dim(input.ndim() - 1) == in_features_,
              "Linear: trailing dim mismatch");
  const int64_t rows = input.numel() / in_features_;
  Tensor x2d = input.reshape({rows, in_features_});
  Tensor y = ops::matmul_bt(x2d, weight_.value);  // [rows, out]
  if (bias_ != nullptr) y = ops::add_rowwise(y, bias_->value);
  cached_input_2d_ = x2d;
  cached_input_shape_ = input.shape();
  Shape out_shape = input.shape();
  out_shape.back() = out_features_;
  return y.reshape(std::move(out_shape));
}

Tensor Linear::infer(const Tensor& input) const {
  ITASK_CHECK(input.ndim() >= 1, "Linear: input must be at least 1-D");
  ITASK_CHECK(input.dim(input.ndim() - 1) == in_features_,
              "Linear: trailing dim mismatch");
  const int64_t rows = input.numel() / in_features_;
  Tensor y;
  if (packed_ != nullptr) {
    // Published model: the weight panels were packed once at publish time.
    // gemm_bt_prepacked is bit-identical to gemm_bt, so this path stays
    // arithmetically identical to forward(). Storage is row-major
    // contiguous, so the input's flat data already IS the [rows, in]
    // matrix — no reshape copy.
    y = Tensor({rows, out_features_});
    gemm::gemm_bt_prepacked(input.data().data(), *packed_, y.data().data(),
                            rows);
  } else {
    y = ops::matmul_bt(input.reshape({rows, in_features_}),
                       weight_.value);  // [rows, out]
  }
  if (bias_ != nullptr) y = ops::add_rowwise(y, bias_->value);
  Shape out_shape = input.shape();
  out_shape.back() = out_features_;
  return y.reshape(std::move(out_shape));
}

void Linear::prepack_for_serving() {
  if (packed_ != nullptr) return;  // idempotent — no writes once packed
  packed_ = std::make_shared<const gemm::PackedB>(gemm::pack_weights_bt(
      weight_.value.data().data(), in_features_, out_features_));
}

Tensor Linear::backward(const Tensor& grad_out) {
  ITASK_CHECK(!cached_input_2d_.empty(), "Linear: backward before forward");
  const int64_t rows = cached_input_2d_.dim(0);
  ITASK_CHECK(grad_out.numel() == rows * out_features_,
              "Linear: grad_out size mismatch");
  Tensor g2d = grad_out.reshape({rows, out_features_});
  // dW[out,in] += gᵀ · x
  ops::add_inplace(weight_.grad, ops::matmul_at(g2d, cached_input_2d_));
  if (bias_ != nullptr)
    ops::add_inplace(bias_->grad, ops::sum_to_lastdim(g2d));
  // dx[rows,in] = g · W
  Tensor dx = ops::matmul(g2d, weight_.value);
  return dx.reshape(cached_input_shape_);
}

}  // namespace itask::nn
