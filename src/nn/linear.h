// Fully-connected layer with cached-input backward.
#pragma once

#include <memory>

#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace itask::nn {

/// y = x · Wᵀ + b, where W is [out_features, in_features].
/// Accepts any input rank ≥ 1; all leading axes are treated as rows.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  /// Forward pass; caches the input when training for use by backward().
  Tensor forward(const Tensor& input);

  /// Cache-free forward for concurrent inference: numerically identical to
  /// forward(), touches no mutable state, safe to call from many threads.
  Tensor infer(const Tensor& input) const;

  /// Accumulates dW/db and returns dL/dinput (same shape as the cached input).
  Tensor backward(const Tensor& grad_out);

  /// Packs the weight into the k-major panel cache gemm_bt_prepacked
  /// consumes, so infer() skips the per-call B pack. Publish-time only —
  /// forward()/backward() keep the per-call pack (training weights change
  /// every step and would go stale against the cache). Idempotent: once
  /// packed, later calls are pure reads.
  void prepack_for_serving() override;
  bool prepacked() const { return packed_ != nullptr; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter* bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Parameter& weight_;
  Parameter* bias_ = nullptr;
  /// Serving-time cache built by prepack_for_serving(); shared so snapshots
  /// holding the same model share one packing.
  std::shared_ptr<const gemm::PackedB> packed_;
  Tensor cached_input_2d_;  // [rows, in]
  Shape cached_input_shape_;
};

}  // namespace itask::nn
