#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace itask::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 int64_t ignore_index) {
  ITASK_CHECK(logits.ndim() >= 1, "cross_entropy: need at least 1-D");
  const int64_t c = logits.dim(logits.ndim() - 1);
  const int64_t rows = logits.numel() / c;
  ITASK_CHECK(static_cast<int64_t>(labels.size()) == rows,
              "cross_entropy: label count mismatch");
  Tensor logp = ops::log_softmax_lastdim(logits);
  Tensor grad(logits.shape());
  auto lp = logp.data();
  auto g = grad.data();
  double loss = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t y = labels[static_cast<size_t>(r)];
    if (y == ignore_index) continue;
    ITASK_CHECK(y >= 0 && y < c, "cross_entropy: label out of range");
    ++counted;
    loss -= lp[r * c + y];
  }
  const float inv = counted > 0 ? 1.0f / static_cast<float>(counted) : 0.0f;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t y = labels[static_cast<size_t>(r)];
    float* grow = g.data() + r * c;
    if (y == ignore_index) continue;
    const float* lprow = lp.data() + r * c;
    for (int64_t j = 0; j < c; ++j)
      grow[j] = std::exp(lprow[j]) * inv;
    grow[y] -= inv;
  }
  return {counted > 0 ? static_cast<float>(loss) * inv : 0.0f,
          std::move(grad)};
}

LossResult bce_with_logits(const Tensor& logits, const Tensor& targets,
                           const Tensor* weights) {
  ITASK_CHECK(logits.shape() == targets.shape(),
              "bce_with_logits: shape mismatch");
  if (weights != nullptr)
    ITASK_CHECK(weights->shape() == logits.shape(),
                "bce_with_logits: weight shape mismatch");
  const int64_t n = logits.numel();
  ITASK_CHECK(n > 0, "bce_with_logits: empty input");
  Tensor grad(logits.shape());
  auto x = logits.data();
  auto t = targets.data();
  auto g = grad.data();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float w =
        weights != nullptr ? weights->data()[static_cast<size_t>(i)] : 1.0f;
    // Numerically stable: max(x,0) - x*t + log(1 + exp(-|x|)).
    const float xi = x[i];
    const float ti = t[i];
    loss += w * ((xi > 0.0f ? xi : 0.0f) - xi * ti +
                 std::log1p(std::exp(-std::abs(xi))));
    const float p = 1.0f / (1.0f + std::exp(-xi));
    g[i] = w * (p - ti) * inv;
  }
  return {static_cast<float>(loss) * inv, std::move(grad)};
}

LossResult mse(const Tensor& pred, const Tensor& target) {
  ITASK_CHECK(pred.shape() == target.shape(), "mse: shape mismatch");
  const int64_t n = pred.numel();
  ITASK_CHECK(n > 0, "mse: empty input");
  Tensor grad(pred.shape());
  auto p = pred.data();
  auto t = target.data();
  auto g = grad.data();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    loss += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv;
  }
  return {static_cast<float>(loss) * inv, std::move(grad)};
}

LossResult kd_kl(const Tensor& student_logits, const Tensor& teacher_logits,
                 float temperature) {
  ITASK_CHECK(student_logits.shape() == teacher_logits.shape(),
              "kd_kl: shape mismatch");
  ITASK_CHECK(temperature > 0.0f, "kd_kl: temperature must be positive");
  const int64_t c = student_logits.dim(student_logits.ndim() - 1);
  const int64_t rows = student_logits.numel() / c;
  const float t = temperature;
  Tensor ps = ops::log_softmax_lastdim(
      ops::mul_scalar(student_logits, 1.0f / t));        // log p_s
  Tensor pt = ops::softmax_lastdim(
      ops::mul_scalar(teacher_logits, 1.0f / t));        // p_t
  Tensor grad(student_logits.shape());
  auto lps = ps.data();
  auto ptd = pt.data();
  auto g = grad.data();
  const float invr = 1.0f / static_cast<float>(rows);
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const float* lp = lps.data() + r * c;
    const float* tp = ptd.data() + r * c;
    float* grow = g.data() + r * c;
    for (int64_t j = 0; j < c; ++j) {
      if (tp[j] > 0.0f)
        loss += static_cast<double>(tp[j]) *
                (std::log(static_cast<double>(tp[j])) - lp[j]);
      // dL/ds_j = T * (p_s - p_t) / rows   (T^2 scaling × 1/T chain rule)
      grow[j] = t * (std::exp(lp[j]) - tp[j]) * invr;
    }
  }
  return {static_cast<float>(loss) * t * t * invr, std::move(grad)};
}

}  // namespace itask::nn
