// Loss functions. Each returns the scalar loss (mean over rows) and the
// gradient w.r.t. the logits/predictions, ready to feed into backward().
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace itask::nn {

struct LossResult {
  float value = 0.0f;
  Tensor grad;  // dL/dinput, same shape as the input
};

/// Softmax cross-entropy over the trailing axis with integer labels (one per
/// row; rows = numel / C). `ignore_index` rows contribute zero loss/grad.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 int64_t ignore_index = -1);

/// Per-element binary cross-entropy with logits (multi-label targets in
/// [0,1]); mean over all elements. Optional per-element weights.
LossResult bce_with_logits(const Tensor& logits, const Tensor& targets,
                           const Tensor* weights = nullptr);

/// Mean squared error, mean over all elements.
LossResult mse(const Tensor& pred, const Tensor& target);

/// Temperature-scaled distillation loss:
///   L = T^2 * mean_rows KL( softmax(teacher/T) || softmax(student/T) ).
/// Gradient is returned w.r.t. the *student* logits.
LossResult kd_kl(const Tensor& student_logits, const Tensor& teacher_logits,
                 float temperature);

}  // namespace itask::nn
