#include "nn/module.h"

namespace itask::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (auto& p : params_) out.push_back(p.get());
  for (auto& c : children_) {
    auto sub = c.module->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::parameter_count() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& c : children_) c.module->set_training(training);
}

io::StateDict Module::state_dict() {
  io::StateDict state;
  for (auto& p : params_) state.emplace(p->name, p->value);
  for (auto& c : children_) {
    for (auto& [k, v] : c.module->state_dict())
      state.emplace(c.name + "." + k, v);
  }
  return state;
}

void Module::load_state_dict(const io::StateDict& state) {
  for (auto& p : params_) {
    auto it = state.find(p->name);
    ITASK_CHECK(it != state.end(), "missing parameter in state dict: " + p->name);
    ITASK_CHECK(it->second.shape() == p->value.shape(),
                "shape mismatch loading parameter " + p->name);
    p->value = it->second;
  }
  for (auto& c : children_) {
    io::StateDict scoped;
    const std::string prefix = c.name + ".";
    for (const auto& [k, v] : state) {
      if (k.rfind(prefix, 0) == 0) scoped.emplace(k.substr(prefix.size()), v);
    }
    c.module->load_state_dict(scoped);
  }
}

Parameter& Module::register_parameter(std::string name, Tensor init) {
  params_.push_back(
      std::make_unique<Parameter>(std::move(name), std::move(init)));
  return *params_.back();
}

void Module::prepack_for_serving() {
  for (auto& c : children_) c.module->prepack_for_serving();
}

void Module::register_child(std::string name, Module& child) {
  children_.push_back(Child{std::move(name), &child});
}

}  // namespace itask::nn
