// Module / Parameter machinery for the explicit-backward neural-net layers.
//
// iTask deliberately avoids a tape autograd (DESIGN.md §6.1): every layer
// caches what its backward pass needs and exposes `backward(grad_out)`
// returning the gradient w.r.t. its input. Parameters accumulate gradients
// in-place; optimizers consume `parameters()`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/io.h"
#include "tensor/tensor.h"

namespace itask::nn {

/// A trainable tensor together with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class for layers and models. Owns its parameters; children are
/// non-owning references registered by the subclass constructor.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, in registration order.
  std::vector<Parameter*> parameters();

  /// Total number of trainable scalars.
  int64_t parameter_count();

  void zero_grad();

  /// Training mode toggles dropout etc. Propagates to children.
  void set_training(bool training);
  bool training() const { return training_; }

  /// Flattens parameters into a name->tensor map ("child.weight" style keys).
  io::StateDict state_dict();

  /// Loads values for every parameter present in `state`; missing or
  /// mismatched entries throw.
  void load_state_dict(const io::StateDict& state);

  /// Builds serving-time pre-packed weight caches in this module and every
  /// child (nn::Linear overrides; the default just recurses). Invoked by
  /// Framework::publish() on each model a DeploymentSnapshot captures. Call
  /// only once the weights are final: training does NOT invalidate the
  /// caches (the serving convention replaces model objects instead of
  /// retraining them — see CLAUDE.md). Idempotent and write-free once
  /// packed, so re-publishing an already-served model is thread-safe.
  virtual void prepack_for_serving();

 protected:
  /// Creates and owns a parameter; the returned reference is stable.
  Parameter& register_parameter(std::string name, Tensor init);

  /// Registers a child module (must outlive this module — typically a member).
  void register_child(std::string name, Module& child);

 private:
  struct Child {
    std::string name;
    Module* module;
  };

  bool training_ = true;
  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<Child> children_;
};

}  // namespace itask::nn
