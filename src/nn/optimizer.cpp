#include "nn/optimizer.h"

#include <cmath>

namespace itask::nn {

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto v = velocity_[i].data();
    for (size_t j = 0; j < w.size(); ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j]);
    }
  }
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double total = 0.0;
  for (Parameter* p : params)
    for (float g : p->grad.data()) total += static_cast<double>(g) * g;
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params)
      for (float& g : p->grad.data()) g *= scale;
  }
  return norm;
}

}  // namespace itask::nn
