// First-order optimizers over flat parameter lists.
#pragma once

#include <vector>

#include "nn/module.h"

namespace itask::nn {

/// Common optimizer interface: step() applies accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
};

/// SGD with classical momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW-style).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Clips the global L2 norm of all gradients to `max_norm`; returns the norm
/// before clipping.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace itask::nn
