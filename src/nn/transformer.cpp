#include "nn/transformer.h"

#include "tensor/ops.h"

namespace itask::nn {

TransformerBlock::TransformerBlock(int64_t dim, int64_t heads,
                                   int64_t mlp_hidden, Rng& rng)
    : ln1_(dim),
      attn_(dim, heads, rng),
      ln2_(dim),
      fc1_(dim, mlp_hidden, rng),
      fc2_(mlp_hidden, dim, rng) {
  register_child("ln1", ln1_);
  register_child("attn", attn_);
  register_child("ln2", ln2_);
  register_child("fc1", fc1_);
  register_child("fc2", fc2_);
}

Tensor TransformerBlock::forward(const Tensor& tokens) {
  Tensor x = ops::add(tokens, attn_.forward(ln1_.forward(tokens)));
  Tensor mlp = fc2_.forward(gelu_.forward(fc1_.forward(ln2_.forward(x))));
  return ops::add(x, mlp);
}

Tensor TransformerBlock::infer(const Tensor& tokens) const {
  Tensor x = ops::add(tokens, attn_.infer(ln1_.infer(tokens)));
  Tensor mlp = fc2_.infer(gelu_.infer(fc1_.infer(ln2_.infer(x))));
  return ops::add(x, mlp);
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  // Through the MLP residual branch.
  Tensor d_mlp = ln2_.backward(
      fc1_.backward(gelu_.backward(fc2_.backward(grad_out))));
  Tensor dx = ops::add(grad_out, d_mlp);
  // Through the attention residual branch.
  Tensor d_attn = ln1_.backward(attn_.backward(dx));
  return ops::add(dx, d_attn);
}

TransformerEncoder::TransformerEncoder(int64_t dim, int64_t depth,
                                       int64_t heads, int64_t mlp_hidden,
                                       Rng& rng)
    : final_ln_(dim) {
  ITASK_CHECK(depth >= 1, "TransformerEncoder: depth must be >= 1");
  for (int64_t i = 0; i < depth; ++i) {
    blocks_.push_back(
        std::make_unique<TransformerBlock>(dim, heads, mlp_hidden, rng));
    register_child("block" + std::to_string(i), *blocks_.back());
  }
  register_child("final_ln", final_ln_);
}

Tensor TransformerEncoder::forward(const Tensor& tokens) {
  Tensor x = tokens;
  for (auto& block : blocks_) x = block->forward(x);
  return final_ln_.forward(x);
}

Tensor TransformerEncoder::infer(const Tensor& tokens) const {
  Tensor x = tokens;
  for (const auto& block : blocks_) x = block->infer(x);
  return final_ln_.infer(x);
}

Tensor TransformerEncoder::backward(const Tensor& grad_out) {
  Tensor g = final_ln_.backward(grad_out);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

}  // namespace itask::nn
