// Pre-LayerNorm transformer encoder blocks and the encoder stack.
#pragma once

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"

namespace itask::nn {

/// One pre-LN encoder block:
///   x = x + Attn(LN1(x));  x = x + MLP(LN2(x)),  MLP = Linear→GELU→Linear.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t heads, int64_t mlp_hidden, Rng& rng);

  Tensor forward(const Tensor& tokens);
  /// Cache-free forward for concurrent inference.
  Tensor infer(const Tensor& tokens) const;
  Tensor backward(const Tensor& grad_out);

  const MultiHeadAttention& attention() const { return attn_; }

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear fc1_;
  Gelu gelu_;
  Linear fc2_;
};

/// A stack of TransformerBlocks followed by a final LayerNorm.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t dim, int64_t depth, int64_t heads,
                     int64_t mlp_hidden, Rng& rng);

  Tensor forward(const Tensor& tokens);
  /// Cache-free forward for concurrent inference.
  Tensor infer(const Tensor& tokens) const;
  Tensor backward(const Tensor& grad_out);

  int64_t depth() const { return static_cast<int64_t>(blocks_.size()); }
  const TransformerBlock& block(int64_t i) const {
    ITASK_CHECK(i >= 0 && i < depth(), "TransformerEncoder: bad block index");
    return *blocks_[static_cast<size_t>(i)];
  }

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
};

}  // namespace itask::nn
