#include "quant/calibrate.h"

#include <algorithm>
#include <cmath>

namespace itask::quant {

const char* calib_method_name(CalibMethod m) {
  switch (m) {
    case CalibMethod::kMinMax: return "minmax";
    case CalibMethod::kPercentile: return "percentile";
    case CalibMethod::kEntropy: return "entropy";
  }
  return "?";
}

void MinMaxCalibrator::observe(const Tensor& activations) {
  for (float v : activations.data()) {
    if (!seen_) {
      lo_ = hi_ = v;
      seen_ = true;
    } else {
      lo_ = std::min(lo_, v);
      hi_ = std::max(hi_, v);
    }
  }
}

QuantParams MinMaxCalibrator::finalize() const {
  ITASK_CHECK(seen_, "MinMaxCalibrator: no observations");
  return QuantParams::asymmetric(lo_, hi_);
}

PercentileCalibrator::PercentileCalibrator(float percentile, int64_t bins)
    : percentile_(percentile), bins_(bins) {
  ITASK_CHECK(percentile > 50.0f && percentile <= 100.0f,
              "PercentileCalibrator: percentile out of range");
}

void PercentileCalibrator::observe(const Tensor& activations) {
  if (!seen_) {
    lo_ = hi_ = activations.numel() > 0 ? activations[0] : 0.0f;
    seen_ = true;
  }
  for (float v : activations.data()) {
    lo_ = std::min(lo_, v);
    hi_ = std::max(hi_, v);
  }
  samples_.push_back(activations);
}

QuantParams PercentileCalibrator::finalize() const {
  ITASK_CHECK(seen_, "PercentileCalibrator: no observations");
  std::vector<float> all;
  for (const Tensor& t : samples_)
    all.insert(all.end(), t.data().begin(), t.data().end());
  std::sort(all.begin(), all.end());
  const double tail = (100.0 - static_cast<double>(percentile_)) / 100.0 / 2.0;
  const size_t n = all.size();
  const size_t lo_idx = static_cast<size_t>(tail * static_cast<double>(n));
  const size_t hi_idx =
      n - 1 - static_cast<size_t>(tail * static_cast<double>(n));
  return QuantParams::asymmetric(all[lo_idx], all[std::max(lo_idx, hi_idx)]);
}

EntropyCalibrator::EntropyCalibrator(int64_t bins) : bins_(bins) {
  ITASK_CHECK(bins >= 256, "EntropyCalibrator: need at least 256 bins");
}

void EntropyCalibrator::observe(const Tensor& activations) {
  for (float v : activations.data()) {
    if (!seen_) {
      lo_ = hi_ = v;
      seen_ = true;
    }
    pending_.push_back(v);
    amax_ = std::max(amax_, std::abs(v));
    lo_ = std::min(lo_, v);
    hi_ = std::max(hi_, v);
  }
}

QuantParams EntropyCalibrator::finalize() const {
  ITASK_CHECK(seen_, "EntropyCalibrator: no observations");
  const float amax = std::max(amax_, 1e-8f);
  const float width = amax / static_cast<float>(bins_);
  std::vector<double> hist(static_cast<size_t>(bins_), 0.0);
  for (float v : pending_) {
    const int64_t bin = std::min<int64_t>(
        bins_ - 1, static_cast<int64_t>(std::abs(v) / width));
    hist[static_cast<size_t>(bin)] += 1.0;
  }
  // Try clip thresholds from bins_/8 up to bins_; pick minimal KL between the
  // clipped reference distribution and its 128-level quantization.
  constexpr int64_t kLevels = 128;
  double best_kl = 1e300;
  int64_t best_t = bins_;
  for (int64_t t = bins_ / 8; t <= bins_; t += bins_ / 64) {
    // Reference: bins [0, t) plus all clipped mass lumped into bin t-1.
    std::vector<double> ref(hist.begin(), hist.begin() + t);
    double clipped = 0.0;
    for (int64_t i = t; i < bins_; ++i) clipped += hist[static_cast<size_t>(i)];
    ref.back() += clipped;
    // Candidate: collapse the *unclipped* bins [0, t) into kLevels groups and
    // re-expand. Building Q from the clip-lumped reference would make the
    // clipped tail cancel in the KL and bias the search toward maximal
    // clipping (TensorRT builds Q from the raw bins for the same reason).
    std::vector<double> q(static_cast<size_t>(t), 0.0);
    const double group = static_cast<double>(t) / kLevels;
    for (int64_t level = 0; level < kLevels; ++level) {
      // Exact partition of [0, t): overlapping windows would double-count
      // mass and can drive the (pseudo-)KL negative.
      const int64_t s = static_cast<int64_t>(level * group);
      const int64_t e = level + 1 == kLevels
                            ? t
                            : std::min<int64_t>(
                                  t, static_cast<int64_t>((level + 1) * group));
      double mass = 0.0;
      int64_t nonzero = 0;
      for (int64_t i = s; i < e; ++i) {
        mass += hist[static_cast<size_t>(i)];
        if (hist[static_cast<size_t>(i)] > 0.0) ++nonzero;
      }
      if (nonzero == 0) continue;
      const double share = mass / static_cast<double>(nonzero);
      for (int64_t i = s; i < e; ++i)
        if (hist[static_cast<size_t>(i)] > 0.0)
          q[static_cast<size_t>(i)] = share;
    }
    // KL(ref || q), normalised.
    double ref_sum = 0.0, q_sum = 0.0;
    for (double v : ref) ref_sum += v;
    for (double v : q) q_sum += v;
    if (ref_sum <= 0.0 || q_sum <= 0.0) continue;
    double kl = 0.0;
    for (int64_t i = 0; i < t; ++i) {
      const double p = ref[static_cast<size_t>(i)] / ref_sum;
      // Epsilon-smooth q: p > 0 with q == 0 (e.g. clipped mass lumped into
      // an empty bin) must register as a large penalty, not be skipped —
      // skipping it makes the pseudo-KL negative and corrupts the search.
      const double qq =
          std::max(q[static_cast<size_t>(i)] / q_sum, 1e-12);
      if (p > 0.0) kl += p * std::log(p / qq);
    }
    if (kl < best_kl) {
      best_kl = kl;
      best_t = t;
    }
  }
  const float clip = static_cast<float>(best_t) * width;
  // Clamp to the observed range: one-sided activation distributions (e.g.
  // post-GELU) should not waste half the INT8 range on unused sign space.
  return QuantParams::asymmetric(std::max(-clip, lo_), std::min(clip, hi_));
}

std::unique_ptr<Calibrator> make_calibrator(CalibMethod method) {
  switch (method) {
    case CalibMethod::kMinMax: return std::make_unique<MinMaxCalibrator>();
    case CalibMethod::kPercentile:
      return std::make_unique<PercentileCalibrator>();
    case CalibMethod::kEntropy: return std::make_unique<EntropyCalibrator>();
  }
  return nullptr;
}

}  // namespace itask::quant
