// Activation-range calibrators for post-training quantization (ablated in
// experiment A1): min-max, percentile, and entropy (KL) calibration.
#pragma once

#include <memory>
#include <vector>

#include "quant/qformat.h"
#include "tensor/tensor.h"

namespace itask::quant {

enum class CalibMethod { kMinMax, kPercentile, kEntropy };

const char* calib_method_name(CalibMethod m);

/// Observes activation tensors during calibration forward passes and then
/// produces asymmetric per-tensor QuantParams.
class Calibrator {
 public:
  virtual ~Calibrator() = default;
  virtual void observe(const Tensor& activations) = 0;
  virtual QuantParams finalize() const = 0;
};

/// Exact running min / max.
class MinMaxCalibrator : public Calibrator {
 public:
  void observe(const Tensor& activations) override;
  QuantParams finalize() const override;

 private:
  float lo_ = 0.0f;
  float hi_ = 0.0f;
  bool seen_ = false;
};

/// Clips to the given two-sided percentile (e.g. 99.9) using a histogram.
class PercentileCalibrator : public Calibrator {
 public:
  explicit PercentileCalibrator(float percentile = 99.9f, int64_t bins = 2048);
  void observe(const Tensor& activations) override;
  QuantParams finalize() const override;

 private:
  float percentile_;
  int64_t bins_;
  float lo_ = 0.0f, hi_ = 0.0f;
  bool seen_ = false;
  std::vector<Tensor> samples_;  // kept tensors (small models ⇒ cheap)
};

/// KL-divergence calibration à la TensorRT: picks the clip threshold whose
/// quantized distribution best matches the observed one.
class EntropyCalibrator : public Calibrator {
 public:
  explicit EntropyCalibrator(int64_t bins = 1024);
  void observe(const Tensor& activations) override;
  QuantParams finalize() const override;

 private:
  int64_t bins_;
  float amax_ = 0.0f;
  float lo_ = 0.0f;
  float hi_ = 0.0f;
  bool seen_ = false;
  std::vector<double> histogram_;  // of |x|, rebinned lazily
  float bin_width_ = 0.0f;
  std::vector<float> pending_;     // values seen before the range settles
};

std::unique_ptr<Calibrator> make_calibrator(CalibMethod method);

}  // namespace itask::quant
