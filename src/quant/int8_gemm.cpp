#include "quant/int8_gemm.h"

namespace itask::quant {

void int8_gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                  std::span<const int8_t> w, std::span<int32_t> acc,
                  int64_t m, int64_t k, int64_t n) {
  ITASK_CHECK(static_cast<int64_t>(a.size()) == m * k, "int8_gemm: a size");
  ITASK_CHECK(static_cast<int64_t>(w.size()) == n * k, "int8_gemm: w size");
  ITASK_CHECK(static_cast<int64_t>(acc.size()) == m * n, "int8_gemm: acc size");
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* arow = a.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w.data() + j * k;
      int32_t s = 0;
      int32_t asum = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
        asum += static_cast<int32_t>(wrow[p]);
      }
      // (a - zp)·w = a·w - zp·sum(w)
      crow[j] = s - a_zero_point * asum;
    }
  }
}

Tensor qlinear_forward(const Tensor& x, const QuantParams& act,
                       const QuantizedWeight& weight, const Tensor* bias) {
  ITASK_CHECK(x.ndim() >= 1, "qlinear_forward: bad input rank");
  const int64_t in = weight.in;
  ITASK_CHECK(x.dim(x.ndim() - 1) == in, "qlinear_forward: trailing dim");
  const int64_t rows = x.numel() / in;
  const int64_t out = weight.out;
  const std::vector<int8_t> qx = quantize_tensor(x, act);
  std::vector<int32_t> acc(static_cast<size_t>(rows * out));
  int8_gemm_bt(qx, act.zero_point, weight.data, acc, rows, in, out);
  Shape out_shape = x.shape();
  out_shape.back() = out;
  Tensor y(std::move(out_shape));
  auto yd = y.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < out; ++j) {
      const float deq = static_cast<float>(acc[static_cast<size_t>(r * out + j)]) *
                        act.scale * weight.scale_for_row(j);
      yd[r * out + j] =
          bias != nullptr ? deq + bias->data()[static_cast<size_t>(j)] : deq;
    }
  }
  return y;
}

}  // namespace itask::quant
