#include "quant/int8_gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/kernel_pool.h"
#include "tensor/profile.h"

#if defined(__AVX512BW__)
#include <immintrin.h>
#endif

namespace itask::quant {

void int8_gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                  std::span<const int8_t> w, std::span<int32_t> acc,
                  int64_t m, int64_t k, int64_t n) {
  ITASK_CHECK(static_cast<int64_t>(a.size()) == m * k, "int8_gemm: a size");
  ITASK_CHECK(static_cast<int64_t>(w.size()) == n * k, "int8_gemm: w size");
  ITASK_CHECK(static_cast<int64_t>(acc.size()) == m * n, "int8_gemm: acc size");
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* arow = a.data() + i * k;
    int32_t* crow = acc.data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* wrow = w.data() + j * k;
      int32_t s = 0;
      int32_t asum = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
        asum += static_cast<int32_t>(wrow[p]);
      }
      // (a - zp)·w = a·w - zp·sum(w)
      crow[j] = s - a_zero_point * asum;
    }
  }
}

namespace {

// Same blocking scheme as the fp32 kernel layer (tensor/gemm.cpp): MR×NR
// int32 register accumulators over KC-slab panels. Operands are widened to
// int16 at pack time and laid out in adjacent k-PAIRS per lane, which is
// exactly the operand shape of the x86 int16 pair-dot instructions
// (vpmaddwd / AVX512-VNNI vpdpwssd): one instruction per accumulator row
// retires two k steps. int8·int8 products (≤ 127²) summed over any
// practical k fit int32 with no overflow.
constexpr int64_t kMR = 8;
constexpr int64_t kNR = 16;
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 128;
constexpr int64_t kNC = 128;

// Bounded like the fp32 workspaces (tensor/gemm.cpp): exact reservation, no
// geometric overshoot, capacity ≤ one KC slab of panels per operand, storage
// released on thread exit by the thread_local destructors or eagerly by
// gemm::pack_workspace_release() via the releaser registered below.
thread_local std::vector<int16_t> tl_apack;
thread_local std::vector<int16_t> tl_wpack;

void release_pack_workspaces_i16() {
  std::vector<int16_t>().swap(tl_apack);
  std::vector<int16_t>().swap(tl_wpack);
}

// Runs during static init of any binary linking this TU (both statics in the
// registry are constant-initialized, so cross-TU init order is safe).
[[maybe_unused]] const bool pack_releaser_registered = [] {
  gemm::register_pack_workspace_releaser(&release_pack_workspaces_i16);
  return true;
}();

int16_t* pack_workspace_i16(std::vector<int16_t>& ws, int64_t elems) {
  const auto n = static_cast<size_t>(elems);
  if (ws.capacity() < n) {
    ws.clear();
    ws.reserve(n);
  }
  ws.resize(n);
  return ws.data();
}

inline int64_t pair_steps(int64_t kc) { return (kc + 1) / 2; }

/// Packs rows [i0, i0+mc) × k [p0, p0+kc) of the row-major [m, k] activation
/// matrix into `tile`-row panels of int16 k-pairs, zero-padded in both the
/// row tail and the odd-k slot: panel[p2·tile·2 + i·2 + s] = src(i, 2p2+s).
void pack_rows(const int8_t* src, int64_t ld, int64_t i0, int64_t mc,
               int64_t p0, int64_t kc, int64_t tile, int16_t* out) {
  const int64_t panels = (mc + tile - 1) / tile;
  const int64_t steps = pair_steps(kc);
  for (int64_t pan = 0; pan < panels; ++pan) {
    const int64_t ibase = i0 + pan * tile;
    const int64_t rows = std::min(tile, i0 + mc - ibase);
    int16_t* dst = out + pan * tile * 2 * steps;
    // Walk each source row sequentially; strided writes stay panel-resident.
    for (int64_t i = 0; i < rows; ++i) {
      const int8_t* row = src + (ibase + i) * ld + p0;
      for (int64_t p = 0; p < kc; ++p)
        dst[(p / 2) * tile * 2 + i * 2 + (p & 1)] = row[p];
      if (kc & 1) dst[(kc / 2) * tile * 2 + i * 2 + 1] = 0;
    }
    for (int64_t i = rows; i < tile; ++i)
      for (int64_t p2 = 0; p2 < steps; ++p2) {
        dst[p2 * tile * 2 + i * 2] = 0;
        dst[p2 * tile * 2 + i * 2 + 1] = 0;
      }
  }
}

/// acc_tile[mr × nr] (+)= Apanel · Wpanel over kc steps; `first` selects
/// overwrite-with-correction vs accumulate for later k slabs. Panels are in
/// the k-pair layout produced by pack_rows.
void micro_kernel_i8(const int16_t* __restrict ap, const int16_t* __restrict wp,
                     int64_t kc, int32_t* __restrict c, int64_t ldc,
                     const int32_t* __restrict corr, int64_t mr, int64_t nr,
                     bool first) {
  const int64_t steps = pair_steps(kc);
#if defined(__AVX512BW__)
  // One 512-bit W load covers NR lanes × 2 k values; each accumulator row
  // costs one broadcast + one pair-dot instruction per 2 k steps.
  static_assert(kNR == 16, "AVX-512 path assumes 16 int32 lanes");
  __m512i acc[kMR];
  for (int64_t i = 0; i < kMR; ++i) acc[i] = _mm512_setzero_si512();
  for (int64_t p2 = 0; p2 < steps; ++p2) {
    const __m512i wv =
        _mm512_loadu_si512(static_cast<const void*>(wp + p2 * kNR * 2));
    const int16_t* __restrict av = ap + p2 * kMR * 2;
    for (int64_t i = 0; i < kMR; ++i) {
      int32_t pair;
      std::memcpy(&pair, av + i * 2, sizeof(pair));
      const __m512i an = _mm512_set1_epi32(pair);
#if defined(__AVX512VNNI__)
      acc[i] = _mm512_dpwssd_epi32(acc[i], an, wv);
#else
      acc[i] = _mm512_add_epi32(acc[i], _mm512_madd_epi16(an, wv));
#endif
    }
  }
  if (mr == kMR && nr == kNR) {
    const __m512i corrv =
        _mm512_loadu_si512(static_cast<const void*>(corr));
    for (int64_t i = 0; i < kMR; ++i) {
      int32_t* crow = c + i * ldc;
      __m512i cv;
      if (first) {
        cv = _mm512_sub_epi32(acc[i], corrv);
      } else {
        cv = _mm512_add_epi32(
            _mm512_loadu_si512(static_cast<const void*>(crow)), acc[i]);
      }
      _mm512_storeu_si512(static_cast<void*>(crow), cv);
    }
    return;
  }
  alignas(64) int32_t tile[kMR][kNR];
  for (int64_t i = 0; i < kMR; ++i)
    _mm512_store_si512(static_cast<void*>(tile[i]), acc[i]);
  for (int64_t i = 0; i < mr; ++i) {
    int32_t* crow = c + i * ldc;
    if (first) {
      for (int64_t j = 0; j < nr; ++j) crow[j] = tile[i][j] - corr[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) crow[j] += tile[i][j];
    }
  }
#else
  int32_t acc[kMR][kNR] = {};
  for (int64_t p2 = 0; p2 < steps; ++p2) {
    const int16_t* __restrict av = ap + p2 * kMR * 2;
    const int16_t* __restrict wv = wp + p2 * kNR * 2;
    for (int64_t i = 0; i < kMR; ++i) {
      const int32_t a0 = av[i * 2];
      const int32_t a1 = av[i * 2 + 1];
      for (int64_t j = 0; j < kNR; ++j)
        acc[i][j] += a0 * static_cast<int32_t>(wv[j * 2]) +
                     a1 * static_cast<int32_t>(wv[j * 2 + 1]);
    }
  }
  if (first) {
    for (int64_t i = 0; i < mr; ++i) {
      int32_t* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] = acc[i][j] - corr[j];
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      int32_t* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
#endif
}

/// One MC slab of one (KC, NC) block: packs the slab's A panels into the
/// calling thread's workspace and runs the int8 micro-kernel grid against an
/// already-packed W block — the unit of work the kernel pool distributes.
/// Disjoint C rows per slab + unchanged per-element accumulation order keep
/// the split bit-exact (and integer addition is associative anyway).
void run_mc_slab_i8(const int8_t* a, int64_t k, int64_t ic, int64_t m,
                    int64_t pc, int64_t kc, int64_t jc, int64_t npanels,
                    const int16_t* wpack, int32_t* acc, int64_t n,
                    const int32_t* corr, bool first) {
  const int64_t plen = 2 * pair_steps(kc);
  const int64_t mc = std::min(kMC, m - ic);
  const int64_t mpanels = (mc + kMR - 1) / kMR;
  int16_t* apack = pack_workspace_i16(tl_apack, mpanels * kMR * plen);
  {
    ITASK_PROFILE_SCOPE(profile::Section::kInt8Pack);
    pack_rows(a, k, ic, mc, pc, kc, kMR, apack);
  }
  ITASK_PROFILE_SCOPE(profile::Section::kInt8Kernel);
  for (int64_t pi = 0; pi < mpanels; ++pi) {
    const int64_t i = ic + pi * kMR;
    const int64_t mr = std::min(kMR, m - i);
    for (int64_t pj = 0; pj < npanels; ++pj) {
      const int64_t j = jc + pj * kNR;
      micro_kernel_i8(apack + pi * kMR * plen, wpack + pj * kNR * plen, kc,
                      acc + i * n + j, n, corr + j, mr, std::min(kNR, n - j),
                      first);
    }
  }
}

/// Runs every MC slab of one (KC, NC) block, splitting across the kernel
/// pool when enabled, free, and past the row threshold.
template <typename SlabFn>
void for_each_mc_slab(int64_t m, const SlabFn& slab) {
  const int64_t nslabs = (m + kMC - 1) / kMC;
  if (m >= gemm::kKernelPoolMinRows) {
    gemm::parallel_slabs(nslabs, [&](int64_t s) { slab(s * kMC); });
    return;
  }
  for (int64_t s = 0; s < nslabs; ++s) slab(s * kMC);
}

}  // namespace

void int8_gemm_bt_packed(std::span<const int8_t> a, int32_t a_zero_point,
                         std::span<const int8_t> w,
                         std::span<const int32_t> w_row_sums,
                         std::span<int32_t> acc, int64_t m, int64_t k,
                         int64_t n) {
  ITASK_CHECK(static_cast<int64_t>(a.size()) == m * k, "int8_gemm: a size");
  ITASK_CHECK(static_cast<int64_t>(w.size()) == n * k, "int8_gemm: w size");
  ITASK_CHECK(static_cast<int64_t>(acc.size()) == m * n, "int8_gemm: acc size");
  ITASK_CHECK(static_cast<int64_t>(w_row_sums.size()) == n,
              "int8_gemm: row_sums size");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::fill(acc.begin(), acc.end(), 0);
    return;
  }
  // zp·Σw correction per output column, applied while writing the first slab.
  ScratchVec<int32_t> corr(n, /*zero_fill=*/false);
  for (int64_t j = 0; j < n; ++j) corr[j] = a_zero_point * w_row_sums[j];
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    const int64_t plen = 2 * pair_steps(kc);  // int16 slots per panel lane
    const bool first = pc == 0;
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      int16_t* wpack = pack_workspace_i16(tl_wpack, npanels * kNR * plen);
      {
        // Profiling hooks at cache-block granularity (see tensor/profile.h):
        // one relaxed atomic load per block when disabled.
        ITASK_PROFILE_SCOPE(profile::Section::kInt8Pack);
        // W is [n, k] row-major — the same rows-into-panels pack as A.
        pack_rows(w.data(), k, jc, nc, pc, kc, kNR, wpack);
      }
      for_each_mc_slab(m, [&](int64_t ic) {
        run_mc_slab_i8(a.data(), k, ic, m, pc, kc, jc, npanels, wpack,
                       acc.data(), n, corr.data(), first);
      });
    }
  }
}

PackedWeightInt8 pack_weights_int8(std::span<const int8_t> w, int64_t n,
                                   int64_t k) {
  ITASK_CHECK(static_cast<int64_t>(w.size()) == n * k,
              "pack_weights_int8: w size");
  PackedWeightInt8 out;
  out.k = k;
  out.n = n;
  if (k <= 0 || n <= 0) return out;
  size_t total = 0;
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t plen = 2 * pair_steps(std::min(kKC, k - pc));
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      total += static_cast<size_t>(((nc + kNR - 1) / kNR) * kNR * plen);
    }
  }
  out.data.resize(total);
  int16_t* dst = out.data.data();
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    const int64_t plen = 2 * pair_steps(kc);
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      pack_rows(w.data(), k, jc, nc, pc, kc, kNR, dst);
      dst += npanels * kNR * plen;
    }
  }
  return out;
}

void int8_gemm_bt_prepacked(std::span<const int8_t> a, int32_t a_zero_point,
                            const PackedWeightInt8& w,
                            std::span<const int32_t> w_row_sums,
                            std::span<int32_t> acc, int64_t m) {
  const int64_t k = w.k;
  const int64_t n = w.n;
  ITASK_CHECK(static_cast<int64_t>(a.size()) == m * k, "int8_gemm: a size");
  ITASK_CHECK(static_cast<int64_t>(acc.size()) == m * n, "int8_gemm: acc size");
  ITASK_CHECK(static_cast<int64_t>(w_row_sums.size()) == n,
              "int8_gemm: row_sums size");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::fill(acc.begin(), acc.end(), 0);
    return;
  }
  ITASK_PROFILE_COUNT(profile::Counter::kInt8PrepackedCalls, 1);
  ITASK_PROFILE_COUNT(profile::Counter::kInt8PackBytesAvoided, w.bytes());
  ScratchVec<int32_t> corr(n, /*zero_fill=*/false);
  for (int64_t j = 0; j < n; ++j) corr[j] = a_zero_point * w_row_sums[j];
  const int16_t* block = w.data.data();
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    const int64_t plen = 2 * pair_steps(kc);
    const bool first = pc == 0;
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      for_each_mc_slab(m, [&](int64_t ic) {
        run_mc_slab_i8(a.data(), k, ic, m, pc, kc, jc, npanels, block,
                       acc.data(), n, corr.data(), first);
      });
      block += npanels * kNR * plen;
    }
  }
}

void QuantizedWeight::prepack() {
  if (packed != nullptr) return;  // idempotent — no writes once packed
  packed = std::make_shared<const PackedWeightInt8>(
      pack_weights_int8(data, out, in));
}

Tensor qlinear_forward(const Tensor& x, const QuantParams& act,
                       const QuantizedWeight& weight, const Tensor* bias) {
  ITASK_CHECK(x.ndim() >= 1, "qlinear_forward: bad input rank");
  const int64_t in = weight.in;
  ITASK_CHECK(x.dim(x.ndim() - 1) == in, "qlinear_forward: trailing dim");
  const int64_t rows = x.numel() / in;
  const int64_t out = weight.out;
  // Scratch comes from the worker's arena under an ArenaScope (the serving
  // hot path) and from the heap otherwise — same values either way.
  ScratchVec<int8_t> qx(rows * in, /*zero_fill=*/false);
  {
    ITASK_PROFILE_SCOPE(profile::Section::kInt8Quantize);
    quantize_tensor_into(x, act, std::span<int8_t>(qx.data(), qx.size()));
  }
  ScratchVec<int32_t> acc(rows * out);
  std::vector<int32_t> fallback_sums;  // hand-built weight, no finalize table
  std::span<const int32_t> sums;
  if (static_cast<int64_t>(weight.row_sums.size()) == out) {
    sums = weight.row_sums;
  } else {
    fallback_sums = weight_row_sums(weight.data, out, in);
    sums = fallback_sums;
  }
  const std::span<const int8_t> qx_span(qx.data(),
                                        static_cast<size_t>(qx.size()));
  const std::span<int32_t> acc_span(acc.data(),
                                    static_cast<size_t>(acc.size()));
  if (weight.packed != nullptr) {
    // Publish-time pre-packed weight (QuantizedWeight::prepack): skip the
    // per-call W pack. Bit-identical to the pack-per-call path.
    ITASK_CHECK(weight.packed->k == in && weight.packed->n == out,
                "qlinear_forward: packed cache shape mismatch");
    int8_gemm_bt_prepacked(qx_span, act.zero_point, *weight.packed, sums,
                           acc_span, rows);
  } else {
    int8_gemm_bt_packed(qx_span, act.zero_point, weight.data, sums, acc_span,
                        rows, in, out);
  }
  // Dequant scale per output column (activation scale × per-row weight
  // scale), hoisted out of the element loop.
  ScratchVec<float> col_scale(out, /*zero_fill=*/false);
  for (int64_t j = 0; j < out; ++j)
    col_scale[j] = act.scale * weight.scale_for_row(j);
  Shape out_shape = x.shape();
  out_shape.back() = out;
  Tensor y(std::move(out_shape));
  auto yd = y.data();
  ITASK_PROFILE_SCOPE(profile::Section::kInt8Dequant);
  if (bias != nullptr) {
    auto bd = bias->data();
    for (int64_t r = 0; r < rows; ++r) {
      const int32_t* arow = acc.data() + r * out;
      float* yrow = yd.data() + r * out;
      for (int64_t j = 0; j < out; ++j)
        yrow[j] = static_cast<float>(arow[j]) * col_scale[j] + bd[j];
    }
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      const int32_t* arow = acc.data() + r * out;
      float* yrow = yd.data() + r * out;
      for (int64_t j = 0; j < out; ++j)
        yrow[j] = static_cast<float>(arow[j]) * col_scale[j];
    }
  }
  return y;
}

}  // namespace itask::quant
