// INT8 GEMM with INT32 accumulation — the numeric core of the quantized
// runtime and the operation the systolic-array simulator models.
//
// Two implementations share the semantics:
//  * int8_gemm_bt — the naive triple loop, retained as the parity oracle
//    (the functional systolic array asserts against it) and the "before"
//    side of bench_k0_gemm;
//  * int8_gemm_bt_packed — the deployed kernel: cache-blocked with int16
//    operand panels and int32 register-tile accumulators, plus a
//    precomputed per-output-row Σw table for the zero-point correction.
// Integer addition is associative, so both produce bit-identical results.
#pragma once

#include <cstdint>
#include <span>

#include "quant/qformat.h"
#include "tensor/tensor.h"

namespace itask::quant {

/// acc[m, n] = sum_k (a[m, k] - a_zero_point) * w[n, k]
/// (weights are symmetric so no weight zero-point term appears).
void int8_gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                  std::span<const int8_t> w, std::span<int32_t> acc,
                  int64_t m, int64_t k, int64_t n);

/// Blocked/packed variant of int8_gemm_bt. `w_row_sums` is the per-output-row
/// Σw table (QuantizedWeight::row_sums, built once at finalize()); the
/// zero-point correction acc = a·w − zp·Σw then costs one multiply per
/// output instead of a weight pass per call. Bit-identical to int8_gemm_bt.
void int8_gemm_bt_packed(std::span<const int8_t> a, int32_t a_zero_point,
                         std::span<const int8_t> w,
                         std::span<const int32_t> w_row_sums,
                         std::span<int32_t> acc, int64_t m, int64_t k,
                         int64_t n);

/// A weight matrix widened and packed ONCE into the int16 k-pair NR-lane
/// panels int8_gemm_bt_packed otherwise builds per call (the vpmaddwd /
/// AVX512-VNNI operand shape), stored in the (KC-slab, NC-slab) order the
/// driver visits them. Built at publish time via QuantizedWeight::prepack();
/// read-only after construction, safe to share across inference workers.
struct PackedWeightInt8 {
  int64_t k = 0;  // inner (reduction) extent
  int64_t n = 0;  // output columns (= weight rows in the [N,K] layout)
  std::vector<int16_t> data;

  int64_t bytes() const {
    return static_cast<int64_t>(data.size() * sizeof(int16_t));
  }
};

/// Packs a row-major [N, K] int8 weight matrix for int8_gemm_bt_prepacked.
PackedWeightInt8 pack_weights_int8(std::span<const int8_t> w, int64_t n,
                                   int64_t k);

/// int8_gemm_bt_packed with the weight pre-packed. Integer addition is
/// associative and the panels/loop order are identical, so this is
/// bit-identical to both packed and naive variants — including when the
/// kernel pool (tensor/kernel_pool.h) splits the MC-slab loop across
/// threads for m ≥ gemm::kKernelPoolMinRows.
void int8_gemm_bt_prepacked(std::span<const int8_t> a, int32_t a_zero_point,
                            const PackedWeightInt8& w,
                            std::span<const int32_t> w_row_sums,
                            std::span<int32_t> acc, int64_t m);

/// Full quantized linear: quantizes `x` with `act`, runs the packed INT8
/// GEMM against `weight`, and dequantizes with per-row weight scales, adding
/// `bias`. x: [rows, in] FP32; returns [rows, out] FP32.
Tensor qlinear_forward(const Tensor& x, const QuantParams& act,
                       const QuantizedWeight& weight, const Tensor* bias);

}  // namespace itask::quant
