// INT8 GEMM with INT32 accumulation — the numeric core of the quantized
// runtime and the operation the systolic-array simulator models.
#pragma once

#include <cstdint>
#include <span>

#include "quant/qformat.h"
#include "tensor/tensor.h"

namespace itask::quant {

/// acc[m, n] = sum_k (a[m, k] - a_zero_point) * w[n, k]
/// (weights are symmetric so no weight zero-point term appears).
void int8_gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                  std::span<const int8_t> w, std::span<int32_t> acc,
                  int64_t m, int64_t k, int64_t n);

/// Full quantized linear: quantizes `x` with `act`, runs int8_gemm_bt against
/// `weight`, and dequantizes with per-row weight scales, adding `bias`.
/// x: [rows, in] FP32; returns [rows, out] FP32.
Tensor qlinear_forward(const Tensor& x, const QuantParams& act,
                       const QuantizedWeight& weight, const Tensor* bias);

}  // namespace itask::quant
