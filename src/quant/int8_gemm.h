// INT8 GEMM with INT32 accumulation — the numeric core of the quantized
// runtime and the operation the systolic-array simulator models.
//
// Two implementations share the semantics:
//  * int8_gemm_bt — the naive triple loop, retained as the parity oracle
//    (the functional systolic array asserts against it) and the "before"
//    side of bench_k0_gemm;
//  * int8_gemm_bt_packed — the deployed kernel: cache-blocked with int16
//    operand panels and int32 register-tile accumulators, plus a
//    precomputed per-output-row Σw table for the zero-point correction.
// Integer addition is associative, so both produce bit-identical results.
#pragma once

#include <cstdint>
#include <span>

#include "quant/qformat.h"
#include "tensor/tensor.h"

namespace itask::quant {

/// acc[m, n] = sum_k (a[m, k] - a_zero_point) * w[n, k]
/// (weights are symmetric so no weight zero-point term appears).
void int8_gemm_bt(std::span<const int8_t> a, int32_t a_zero_point,
                  std::span<const int8_t> w, std::span<int32_t> acc,
                  int64_t m, int64_t k, int64_t n);

/// Blocked/packed variant of int8_gemm_bt. `w_row_sums` is the per-output-row
/// Σw table (QuantizedWeight::row_sums, built once at finalize()); the
/// zero-point correction acc = a·w − zp·Σw then costs one multiply per
/// output instead of a weight pass per call. Bit-identical to int8_gemm_bt.
void int8_gemm_bt_packed(std::span<const int8_t> a, int32_t a_zero_point,
                         std::span<const int8_t> w,
                         std::span<const int32_t> w_row_sums,
                         std::span<int32_t> acc, int64_t m, int64_t k,
                         int64_t n);

/// Full quantized linear: quantizes `x` with `act`, runs the packed INT8
/// GEMM against `weight`, and dequantizes with per-row weight scales, adding
/// `bias`. x: [rows, in] FP32; returns [rows, out] FP32.
Tensor qlinear_forward(const Tensor& x, const QuantParams& act,
                       const QuantizedWeight& weight, const Tensor* bias);

}  // namespace itask::quant
