#include "quant/qat.h"

#include <algorithm>

#include "nn/optimizer.h"

namespace itask::quant {

namespace {

/// Trainable 2-D weight matrices (the tensors the INT8 runtime quantizes).
bool is_quantized_weight(const nn::Parameter& p) {
  return p.value.ndim() == 2 && p.name == "weight";
}

}  // namespace

QatStats qat_finetune(vit::VitModel& model, const data::Dataset& dataset,
                      const QatOptions& options, const data::TaskSpec* task) {
  ITASK_CHECK(dataset.size() > 0, "qat_finetune: empty dataset");
  model.set_training(true);
  const auto params = model.parameters();
  nn::Adam optimizer(params, options.lr);
  Rng rng(options.seed);
  QatStats stats;

  distill::TrainerOptions loss_options = options.losses;
  if (task == nullptr) loss_options.w_relevance = 0.0f;

  std::vector<int64_t> order = dataset.all_indices();
  std::vector<Tensor> masters;  // FP32 snapshots during the fake-quant pass
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options.batch_size));
      const data::Batch batch = dataset.make_batch(
          std::span<const int64_t>(order.data() + start, end - start), task);

      // 1. Snapshot masters and drop weights onto the integer grid.
      masters.clear();
      for (nn::Parameter* p : params) {
        if (!is_quantized_weight(*p)) continue;
        masters.push_back(p->value);
        fake_quantize_weight(p->value, options.quant.granularity,
                             options.quant.weight_bits);
      }
      // 2. Forward/backward through the deployment-time weights.
      model.zero_grad();
      const vit::VitOutput out = model.forward(batch.images);
      vit::VitOutputGrads grads;
      const distill::StepLosses losses =
          distill::supervised_losses(out, batch, loss_options, grads);
      model.backward(grads);
      // 3. Restore masters; STE applies the gradients to them unmodified.
      size_t mi = 0;
      for (nn::Parameter* p : params) {
        if (!is_quantized_weight(*p)) continue;
        p->value = masters[mi++];
      }
      nn::clip_grad_norm(params, options.grad_clip);
      optimizer.step();

      if (stats.steps == 0) stats.first_total = losses.total();
      stats.last_total = losses.total();
      ++stats.steps;
    }
  }
  model.set_training(false);
  return stats;
}

}  // namespace itask::quant
