// Quantization-aware fine-tuning (the paper's natural low-bit extension,
// benchmarked in A4).
//
// Weight-only QAT with a straight-through estimator: each step, the FP32
// master weights are snapshotted and replaced in place by their fake-
// quantized (quantize→dequantize) images; forward/backward then see exactly
// the deployment-time weights; gradients flow back unmodified (STE) and the
// optimizer updates the restored FP32 masters. After fine-tuning, building a
// QuantizedVit at the same bit width realises the trained behaviour.
#pragma once

#include "data/dataset.h"
#include "distill/trainer.h"
#include "quant/qvit.h"
#include "vit/model.h"

namespace itask::quant {

struct QatOptions {
  QuantOptions quant;          // target grid (granularity + weight_bits)
  int64_t epochs = 6;
  int64_t batch_size = 16;
  float lr = 5e-4f;            // gentle: the model is already trained
  float grad_clip = 5.0f;
  distill::TrainerOptions losses;  // head-loss weights reused from training
  uint64_t seed = 17;
};

struct QatStats {
  int64_t steps = 0;
  float first_total = 0.0f;
  float last_total = 0.0f;
};

/// Fine-tunes `model` in place so its FP32 weights sit on (near) the target
/// integer grid. `task` enables relevance supervision (as in training).
QatStats qat_finetune(vit::VitModel& model, const data::Dataset& dataset,
                      const QatOptions& options,
                      const data::TaskSpec* task = nullptr);

}  // namespace itask::quant
