#include "quant/qformat.h"

#include <algorithm>
#include <cmath>

namespace itask::quant {

namespace {

void check_bits(int bits) {
  ITASK_CHECK(bits >= 2 && bits <= 8, "QuantParams: bits must be in [2, 8]");
}

}  // namespace

QuantParams QuantParams::asymmetric(float lo, float hi, int bits) {
  ITASK_CHECK(hi >= lo, "QuantParams: hi < lo");
  check_bits(bits);
  // Ensure zero is representable and the range is non-degenerate.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  const float span = std::max(hi - lo, 1e-8f);
  QuantParams p;
  p.qmin = -(1 << (bits - 1));
  p.qmax = (1 << (bits - 1)) - 1;
  p.scale = span / static_cast<float>(p.qmax - p.qmin);
  p.zero_point =
      p.qmin - static_cast<int32_t>(std::lround(lo / p.scale));
  p.zero_point = std::clamp(p.zero_point, p.qmin, p.qmax);
  return p;
}

QuantParams QuantParams::symmetric(float amax, int bits) {
  check_bits(bits);
  QuantParams p;
  p.qmin = -(1 << (bits - 1));
  p.qmax = (1 << (bits - 1)) - 1;
  p.scale = std::max(amax, 1e-8f) / static_cast<float>(p.qmax);
  p.zero_point = 0;
  return p;
}

QuantParams QuantParams::with_bits(int bits) const {
  const float lo = static_cast<float>(qmin - zero_point) * scale;
  const float hi = static_cast<float>(qmax - zero_point) * scale;
  return zero_point == 0 ? symmetric(std::max(-lo, hi), bits)
                         : asymmetric(lo, hi, bits);
}

int8_t QuantParams::quantize(float x) const {
  const int32_t q =
      static_cast<int32_t>(std::lround(x / scale)) + zero_point;
  return static_cast<int8_t>(std::clamp(q, qmin, qmax));
}

std::vector<int8_t> quantize_tensor(const Tensor& t, const QuantParams& p) {
  std::vector<int8_t> out(static_cast<size_t>(t.numel()));
  quantize_tensor_into(t, p, out);
  return out;
}

void quantize_tensor_into(const Tensor& t, const QuantParams& p,
                          std::span<int8_t> out) {
  ITASK_CHECK(static_cast<int64_t>(out.size()) == t.numel(),
              "quantize_tensor_into: size mismatch");
  auto d = t.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = p.quantize(d[i]);
}

Tensor dequantize_tensor(const std::vector<int8_t>& q, const Shape& shape,
                         const QuantParams& p) {
  ITASK_CHECK(static_cast<int64_t>(q.size()) == shape_numel(shape),
              "dequantize_tensor: size mismatch");
  Tensor out(shape);
  auto d = out.data();
  for (size_t i = 0; i < q.size(); ++i) d[i] = p.dequantize(q[i]);
  return out;
}

std::vector<int32_t> weight_row_sums(std::span<const int8_t> w, int64_t out,
                                     int64_t in) {
  ITASK_CHECK(static_cast<int64_t>(w.size()) == out * in,
              "weight_row_sums: size mismatch");
  std::vector<int32_t> sums(static_cast<size_t>(out));
  for (int64_t r = 0; r < out; ++r) {
    const int8_t* row = w.data() + r * in;
    int32_t s = 0;
    for (int64_t j = 0; j < in; ++j) s += row[j];
    sums[static_cast<size_t>(r)] = s;
  }
  return sums;
}

QuantizedWeight quantize_weight(const Tensor& weight,
                                WeightGranularity granularity, int bits) {
  ITASK_CHECK(weight.ndim() == 2, "quantize_weight: need [out, in]");
  QuantizedWeight qw;
  qw.out = weight.dim(0);
  qw.in = weight.dim(1);
  qw.data.resize(static_cast<size_t>(weight.numel()));
  auto w = weight.data();
  if (granularity == WeightGranularity::kPerTensor) {
    float amax = 0.0f;
    for (float v : w) amax = std::max(amax, std::abs(v));
    const QuantParams p = QuantParams::symmetric(amax, bits);
    qw.scales = {p.scale};
    for (size_t i = 0; i < qw.data.size(); ++i) qw.data[i] = p.quantize(w[i]);
  } else {
    qw.scales.resize(static_cast<size_t>(qw.out));
    for (int64_t r = 0; r < qw.out; ++r) {
      const float* row = w.data() + r * qw.in;
      float amax = 0.0f;
      for (int64_t j = 0; j < qw.in; ++j) amax = std::max(amax, std::abs(row[j]));
      const QuantParams p = QuantParams::symmetric(amax, bits);
      qw.scales[static_cast<size_t>(r)] = p.scale;
      for (int64_t j = 0; j < qw.in; ++j)
        qw.data[static_cast<size_t>(r * qw.in + j)] = p.quantize(row[j]);
    }
  }
  qw.row_sums = weight_row_sums(qw.data, qw.out, qw.in);
  return qw;
}

void fake_quantize_weight(Tensor& weight, WeightGranularity granularity,
                          int bits) {
  const QuantizedWeight qw = quantize_weight(weight, granularity, bits);
  auto w = weight.data();
  for (int64_t r = 0; r < qw.out; ++r) {
    const float scale = qw.scale_for_row(r);
    for (int64_t j = 0; j < qw.in; ++j)
      w[r * qw.in + j] =
          static_cast<float>(qw.data[static_cast<size_t>(r * qw.in + j)]) *
          scale;
  }
}

float quantization_mse(const Tensor& t, const QuantParams& p) {
  double acc = 0.0;
  for (float v : t.data()) {
    const float back = p.dequantize(p.quantize(v));
    const double d = static_cast<double>(v) - back;
    acc += d * d;
  }
  return t.numel() > 0 ? static_cast<float>(acc / static_cast<double>(t.numel()))
                       : 0.0f;
}

}  // namespace itask::quant
