// INT8 quantization formats and scalar helpers.
//
// Conventions (the standard edge-deployment recipe, ablated in A1):
//  * weights: symmetric (zero_point = 0), per-channel or per-tensor scales;
//  * activations: asymmetric per-tensor with a calibrated [min, max] range.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace itask::quant {

struct PackedWeightInt8;  // quant/int8_gemm.h

inline constexpr int32_t kQMin = -128;
inline constexpr int32_t kQMax = 127;

/// Per-tensor affine quantization parameters: q = round(x/scale) + zero_point.
/// `bits` selects the integer grid (8 by default; 4/6 for the low-bit
/// extension benchmarked in A4); values are always *stored* in int8.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
  int32_t qmin = kQMin;
  int32_t qmax = kQMax;

  /// Builds asymmetric params covering [lo, hi] on a `bits`-wide grid.
  static QuantParams asymmetric(float lo, float hi, int bits = 8);
  /// Builds symmetric params covering [-amax, amax] (zero_point = 0).
  static QuantParams symmetric(float amax, int bits = 8);

  /// Rebuilds these params on a different bit width, preserving the
  /// representable range (used to lower calibrated 8-bit ranges to 4/6 bit).
  QuantParams with_bits(int bits) const;

  int8_t quantize(float x) const;
  float dequantize(int8_t q) const {
    return (static_cast<int32_t>(q) - zero_point) * scale;
  }
};

/// Quantizes a tensor with per-tensor params.
std::vector<int8_t> quantize_tensor(const Tensor& t, const QuantParams& p);

/// Same, writing into caller storage (`out.size()` must equal `t.numel()`).
/// The serving hot path uses this with arena-backed scratch so the per-call
/// activation quantize allocates nothing.
void quantize_tensor_into(const Tensor& t, const QuantParams& p,
                          std::span<int8_t> out);

/// Dequantizes back to FP32 (round-trip testing / debugging).
Tensor dequantize_tensor(const std::vector<int8_t>& q, const Shape& shape,
                         const QuantParams& p);

/// A quantized 2-D weight matrix [out, in]: symmetric, optionally
/// per-channel (one scale per output row).
struct QuantizedWeight {
  int64_t out = 0;
  int64_t in = 0;
  std::vector<int8_t> data;  // row-major [out, in]
  std::vector<float> scales; // size 1 (per-tensor) or `out` (per-channel)
  /// Per-output-row Σw, precomputed once at quantization time so the GEMM's
  /// activation zero-point correction (a−zp)·w = a·w − zp·Σw needs no
  /// per-call weight pass.
  std::vector<int32_t> row_sums;  // size `out`
  /// Serving-time cache: the weight pre-packed into the kernel's int16
  /// k-pair panels (consumed by qlinear_forward → int8_gemm_bt_prepacked).
  /// Null until prepack(); shared so snapshots holding the same model share
  /// one packing.
  std::shared_ptr<const PackedWeightInt8> packed;

  float scale_for_row(int64_t row) const {
    return scales.size() == 1 ? scales[0]
                              : scales[static_cast<size_t>(row)];
  }

  /// Builds `packed` once (defined in int8_gemm.cpp). Idempotent: once
  /// packed, later calls are pure reads, so re-publishing a model an
  /// installed snapshot already serves performs no writes. Publish-time
  /// only — quantized weights never change after finalize().
  void prepack();
};

enum class WeightGranularity { kPerTensor, kPerChannel };

/// Per-output-row sums of a row-major [out, in] int8 weight matrix — the
/// zero-point-correction table stored in QuantizedWeight::row_sums.
std::vector<int32_t> weight_row_sums(std::span<const int8_t> w, int64_t out,
                                     int64_t in);

/// Quantizes an FP32 weight matrix [out, in] symmetrically.
QuantizedWeight quantize_weight(const Tensor& weight,
                                WeightGranularity granularity, int bits = 8);

/// Fake-quantization: quantize-dequantize `weight` in place on the given
/// grid (straight-through estimator's forward half; used by QAT).
void fake_quantize_weight(Tensor& weight, WeightGranularity granularity,
                          int bits);

/// Mean-squared quantization error of a round trip (diagnostics, tests, A1).
float quantization_mse(const Tensor& t, const QuantParams& p);

}  // namespace itask::quant
