#include "quant/qvit.h"

#include <cmath>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "tensor/ops.h"

namespace itask::quant {

namespace {

Tensor fetch(const io::StateDict& state, const std::string& key) {
  const auto it = state.find(key);
  ITASK_CHECK(it != state.end(), "QuantizedVit: missing key " + key);
  return it->second;
}

Tensor fetch_or_empty(const io::StateDict& state, const std::string& key) {
  const auto it = state.find(key);
  return it != state.end() ? it->second : Tensor();
}

}  // namespace

QLinearLayer::QLinearLayer(Tensor weight, Tensor bias,
                           const QuantOptions& options)
    : fp32_weight_(std::move(weight)),
      bias_(std::move(bias)),
      calibrator_(make_calibrator(options.method)) {
  ITASK_CHECK(fp32_weight_.ndim() == 2, "QLinearLayer: weight must be 2-D");
}

Tensor QLinearLayer::forward_calibrating(const Tensor& x) {
  ITASK_CHECK(calibrator_ != nullptr,
              "QLinearLayer: calibration already finalized");
  calibrator_->observe(x);
  Tensor y = ops::matmul_bt(
      x.reshape({x.numel() / fp32_weight_.dim(1), fp32_weight_.dim(1)}),
      fp32_weight_);
  if (!bias_.empty()) y = ops::add_rowwise(y, bias_);
  Shape out_shape = x.shape();
  out_shape.back() = fp32_weight_.dim(0);
  return y.reshape(std::move(out_shape));
}

Tensor QLinearLayer::forward(const Tensor& x) const {
  ITASK_CHECK(finalized_, "QLinearLayer: forward before finalize");
  return qlinear_forward(x, act_, qweight_, bias_.empty() ? nullptr : &bias_);
}

void QLinearLayer::finalize(const QuantOptions& options) {
  ITASK_CHECK(calibrator_ != nullptr, "QLinearLayer: double finalize");
  act_ = calibrator_->finalize().with_bits(options.activation_bits);
  qweight_ =
      quantize_weight(fp32_weight_, options.granularity, options.weight_bits);
  calibrator_.reset();
  finalized_ = true;
}

void QLinearLayer::prepack() {
  ITASK_CHECK(finalized_, "QLinearLayer: prepack before finalize");
  qweight_.prepack();
}

QuantizedVit::QuantizedVit(const vit::ViTConfig& config,
                           const io::StateDict& state, QuantOptions options)
    : config_(config), options_(options) {
  patch_proj_ = QLinearLayer(fetch(state, "embed.proj.weight"),
                             fetch_or_empty(state, "embed.proj.bias"),
                             options_);
  cls_ = fetch(state, "embed.cls");
  pos_ = fetch(state, "embed.pos");
  for (int64_t i = 0; i < config_.depth; ++i) {
    const std::string p = "encoder.block" + std::to_string(i) + ".";
    Block blk;
    blk.ln1 = {fetch(state, p + "ln1.gamma"), fetch(state, p + "ln1.beta")};
    blk.ln2 = {fetch(state, p + "ln2.gamma"), fetch(state, p + "ln2.beta")};
    blk.qkv = QLinearLayer(fetch(state, p + "attn.qkv.weight"),
                           fetch_or_empty(state, p + "attn.qkv.bias"),
                           options_);
    blk.proj = QLinearLayer(fetch(state, p + "attn.proj.weight"),
                            fetch_or_empty(state, p + "attn.proj.bias"),
                            options_);
    blk.fc1 = QLinearLayer(fetch(state, p + "fc1.weight"),
                           fetch_or_empty(state, p + "fc1.bias"), options_);
    blk.fc2 = QLinearLayer(fetch(state, p + "fc2.weight"),
                           fetch_or_empty(state, p + "fc2.bias"), options_);
    blocks_.push_back(std::move(blk));
  }
  final_ln_ = {fetch(state, "encoder.final_ln.gamma"),
               fetch(state, "encoder.final_ln.beta")};
  obj_head_ = QLinearLayer(fetch(state, "obj_head.weight"),
                           fetch_or_empty(state, "obj_head.bias"), options_);
  cls_head_ = QLinearLayer(fetch(state, "cls_head.weight"),
                           fetch_or_empty(state, "cls_head.bias"), options_);
  attr_head_ = QLinearLayer(fetch(state, "attr_head.weight"),
                            fetch_or_empty(state, "attr_head.bias"), options_);
  box_fc1_ = QLinearLayer(fetch(state, "box_fc1.weight"),
                          fetch_or_empty(state, "box_fc1.bias"), options_);
  box_fc2_ = QLinearLayer(fetch(state, "box_fc2.weight"),
                          fetch_or_empty(state, "box_fc2.bias"), options_);
  rel_head_ = QLinearLayer(fetch(state, "rel_head.weight"),
                           fetch_or_empty(state, "rel_head.bias"), options_);
}

QuantizedVit QuantizedVit::from_model(vit::VitModel& model,
                                      QuantOptions options) {
  return QuantizedVit(model.config(), model.state_dict(), options);
}

template <typename Self, typename Apply>
vit::VitOutput QuantizedVit::run(Self& self, const Tensor& images,
                                 Apply&& apply) {
  const int64_t b = images.dim(0);
  const int64_t t = self.config_.tokens();
  const int64_t d = self.config_.dim;
  // Patch embedding.
  Tensor patches = nn::patchify(images, self.config_.patch_size);
  Tensor projected = apply(self.patch_proj_, patches);  // [B, T, D]
  Tensor x({b, t + 1, d});
  {
    auto o = x.data();
    auto pd = projected.data();
    auto cls = self.cls_.data();
    auto pos = self.pos_.data();
    for (int64_t bi = 0; bi < b; ++bi) {
      float* base = o.data() + bi * (t + 1) * d;
      for (int64_t j = 0; j < d; ++j) base[j] = cls[j] + pos[j];
      for (int64_t ti = 0; ti < t; ++ti) {
        const float* src = pd.data() + (bi * t + ti) * d;
        float* dst = base + (ti + 1) * d;
        const float* prow = pos.data() + (ti + 1) * d;
        for (int64_t j = 0; j < d; ++j) dst[j] = src[j] + prow[j];
      }
    }
  }
  // Encoder blocks.
  const float scale =
      1.0f / std::sqrt(static_cast<float>(d / self.config_.heads));
  for (auto& blk : self.blocks_) {
    Tensor normed = nn::layernorm_affine(x, blk.ln1.gamma, blk.ln1.beta);
    Tensor qkv = apply(blk.qkv, normed);  // [B, T+1, 3D]
    const int64_t rows = b * (t + 1);
    Tensor q({b, t + 1, d}), k({b, t + 1, d}), v({b, t + 1, d});
    {
      auto src = qkv.data();
      auto qd = q.data(), kd = k.data(), vd = v.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = src.data() + r * 3 * d;
        std::copy(row, row + d, qd.data() + r * d);
        std::copy(row + d, row + 2 * d, kd.data() + r * d);
        std::copy(row + 2 * d, row + 3 * d, vd.data() + r * d);
      }
    }
    Tensor qh = nn::split_heads(q, self.config_.heads);
    Tensor kh = nn::split_heads(k, self.config_.heads);
    Tensor vh = nn::split_heads(v, self.config_.heads);
    Tensor attn = ops::softmax_lastdim(
        ops::mul_scalar(ops::bmm_bt(qh, kh), scale));
    Tensor ctx = nn::merge_heads(ops::bmm(attn, vh), self.config_.heads);
    Tensor attn_out = apply(blk.proj, ctx);
    x = ops::add(x, attn_out);
    Tensor normed2 = nn::layernorm_affine(x, blk.ln2.gamma, blk.ln2.beta);
    Tensor mlp = apply(blk.fc2, ops::gelu(apply(blk.fc1, normed2)));
    x = ops::add(x, mlp);
  }
  Tensor tokens =
      nn::layernorm_affine(x, self.final_ln_.gamma, self.final_ln_.beta);
  // Patch tokens → heads.
  Tensor patch_feats({b, t, d});
  {
    auto in = tokens.data();
    auto o = patch_feats.data();
    for (int64_t bi = 0; bi < b; ++bi) {
      const float* src = in.data() + (bi * (t + 1) + 1) * d;
      std::copy(src, src + t * d, o.data() + bi * t * d);
    }
  }
  vit::VitOutput out;
  out.objectness = apply(self.obj_head_, patch_feats);
  out.class_logits = apply(self.cls_head_, patch_feats);
  out.attr_logits = apply(self.attr_head_, patch_feats);
  out.box_deltas =
      apply(self.box_fc2_, ops::gelu(apply(self.box_fc1_, patch_feats)));
  out.relevance = apply(self.rel_head_, patch_feats);
  out.features = std::move(tokens);
  return out;
}

void QuantizedVit::calibrate(const Tensor& images) {
  ITASK_CHECK(!finalized_, "QuantizedVit: calibrate after finalize");
  (void)run(*this, images, [](QLinearLayer& layer, const Tensor& x) {
    return layer.forward_calibrating(x);
  });
}

void QuantizedVit::finalize() {
  ITASK_CHECK(!finalized_, "QuantizedVit: double finalize");
  patch_proj_.finalize(options_);
  for (Block& blk : blocks_) {
    blk.qkv.finalize(options_);
    blk.proj.finalize(options_);
    blk.fc1.finalize(options_);
    blk.fc2.finalize(options_);
  }
  obj_head_.finalize(options_);
  cls_head_.finalize(options_);
  attr_head_.finalize(options_);
  box_fc1_.finalize(options_);
  box_fc2_.finalize(options_);
  rel_head_.finalize(options_);
  finalized_ = true;
}

void QuantizedVit::prepack() {
  ITASK_CHECK(finalized_, "QuantizedVit: prepack before finalize");
  patch_proj_.prepack();
  for (Block& blk : blocks_) {
    blk.qkv.prepack();
    blk.proj.prepack();
    blk.fc1.prepack();
    blk.fc2.prepack();
  }
  obj_head_.prepack();
  cls_head_.prepack();
  attr_head_.prepack();
  box_fc1_.prepack();
  box_fc2_.prepack();
  rel_head_.prepack();
}

vit::VitOutput QuantizedVit::forward(const Tensor& images) const {
  ITASK_CHECK(finalized_, "QuantizedVit: forward before finalize");
  return run(*this, images, [](const QLinearLayer& layer, const Tensor& x) {
    return layer.forward(x);
  });
}

int64_t QuantizedVit::quantized_weight_bytes() const {
  ITASK_CHECK(finalized_, "QuantizedVit: not finalized");
  int64_t bytes = static_cast<int64_t>(
      patch_proj_.quantized_weight().data.size());
  for (const Block& blk : blocks_) {
    bytes += static_cast<int64_t>(blk.qkv.quantized_weight().data.size());
    bytes += static_cast<int64_t>(blk.proj.quantized_weight().data.size());
    bytes += static_cast<int64_t>(blk.fc1.quantized_weight().data.size());
    bytes += static_cast<int64_t>(blk.fc2.quantized_weight().data.size());
  }
  bytes += static_cast<int64_t>(obj_head_.quantized_weight().data.size());
  bytes += static_cast<int64_t>(cls_head_.quantized_weight().data.size());
  bytes += static_cast<int64_t>(attr_head_.quantized_weight().data.size());
  bytes += static_cast<int64_t>(box_fc1_.quantized_weight().data.size());
  bytes += static_cast<int64_t>(box_fc2_.quantized_weight().data.size());
  bytes += static_cast<int64_t>(rel_head_.quantized_weight().data.size());
  return bytes;
}

}  // namespace itask::quant
