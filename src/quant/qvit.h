// Post-training-quantized ViT runtime.
//
// Built from a trained VitModel's state dict, this reconstructs the forward
// pass with INT8 weight GEMMs (symmetric weights, calibrated asymmetric
// activations) while keeping LayerNorm / softmax / GELU in FP32 — the
// standard edge recipe. Attention's activation×activation products also stay
// FP32 (they carry no static weights to stage on the accelerator).
//
// Usage: construct → run calibrate() over representative images → finalize()
// → forward() runs the INT8 path.
#pragma once

#include <memory>
#include <vector>

#include "quant/calibrate.h"
#include "quant/int8_gemm.h"
#include "tensor/io.h"
#include "vit/model.h"

namespace itask::quant {

struct QuantOptions {
  WeightGranularity granularity = WeightGranularity::kPerChannel;
  CalibMethod method = CalibMethod::kMinMax;
  /// Integer grid widths (8 = standard deployment; 4/6 for the low-bit
  /// extension, see bench A4). Values are stored in int8 regardless.
  int weight_bits = 8;
  int activation_bits = 8;
};

/// One quantized linear layer plus its calibration state.
class QLinearLayer {
 public:
  QLinearLayer() = default;
  QLinearLayer(Tensor weight, Tensor bias, const QuantOptions& options);

  /// FP32 reference path; observes activations when a calibrator is active.
  Tensor forward_calibrating(const Tensor& x);

  /// INT8 path (requires finalize()).
  Tensor forward(const Tensor& x) const;

  void finalize(const QuantOptions& options);
  bool finalized() const { return finalized_; }

  /// Builds the int16 k-pair panel cache int8_gemm_bt_prepacked consumes
  /// (requires finalize()). Publish-time only; idempotent and write-free
  /// once packed.
  void prepack();
  bool prepacked() const { return qweight_.packed != nullptr; }

  const QuantizedWeight& quantized_weight() const { return qweight_; }
  const QuantParams& activation_params() const { return act_; }

 private:
  Tensor fp32_weight_;  // [out, in]
  Tensor bias_;         // may be empty
  std::unique_ptr<Calibrator> calibrator_;
  QuantizedWeight qweight_;
  QuantParams act_;
  bool finalized_ = false;
};

/// The full quantized detection-ViT.
class QuantizedVit {
 public:
  QuantizedVit(const vit::ViTConfig& config, const io::StateDict& state,
               QuantOptions options = {});

  /// Convenience: snapshot a live model.
  static QuantizedVit from_model(vit::VitModel& model,
                                 QuantOptions options = {});

  /// Runs the FP32 path over calibration images, recording activations.
  void calibrate(const Tensor& images);

  /// Freezes activation ranges and quantizes all weights.
  void finalize();

  /// Pre-packs every quantized layer's weight for the serving kernels
  /// (requires finalize()). Framework::publish() calls this on the model a
  /// snapshot captures; idempotent, so re-publishing an already-served
  /// model performs no writes.
  void prepack();

  /// INT8 inference. Output mirrors VitModel::forward. Const and cache-free
  /// once finalized, so many threads may run it on one model concurrently.
  vit::VitOutput forward(const Tensor& images) const;

  const vit::ViTConfig& config() const { return config_; }
  const QuantOptions& options() const { return options_; }

  /// Total INT8 weight bytes (model footprint after quantization).
  int64_t quantized_weight_bytes() const;

 private:
  struct LnParams {
    Tensor gamma;
    Tensor beta;
  };
  struct Block {
    LnParams ln1, ln2;
    QLinearLayer qkv, proj, fc1, fc2;
  };

  /// Shared forward skeleton; `Linear` is invoked through `apply`. `Self` is
  /// `QuantizedVit` (calibration observes activations) or `const
  /// QuantizedVit` (finalized inference), deduced from the call site.
  template <typename Self, typename Apply>
  static vit::VitOutput run(Self& self, const Tensor& images, Apply&& apply);

  vit::ViTConfig config_;
  QuantOptions options_;
  QLinearLayer patch_proj_;
  Tensor cls_, pos_;
  std::vector<Block> blocks_;
  LnParams final_ln_;
  QLinearLayer obj_head_, cls_head_, attr_head_, box_fc1_, box_fc2_, rel_head_;
  bool finalized_ = false;
};

}  // namespace itask::quant
