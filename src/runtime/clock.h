// Injectable time source for the serving runtime's request accounting.
//
// Every timestamp the server records — admission, batch pick-up, inference
// start/end, deadlines — goes through one ClockFn returning monotonic
// integer microseconds. Production uses steady_clock_us(); tests inject a
// FakeClock so stage durations are exact numbers, not sleeps and
// tolerances. Only request *accounting* is injectable: the queue's
// micro-batch max_wait blocking stays on the real clock (a fake clock can't
// wake a condition variable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

namespace itask::runtime {

/// Monotonic microseconds. Must be safe to call from any thread.
using ClockFn = std::function<int64_t()>;

/// Production clock: std::chrono::steady_clock in integer microseconds.
inline int64_t steady_clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic manual clock for tests: time moves only when advance_us()
/// is called. seq_cst so an advance in one thread is visible to a reader
/// that was released by a later synchronizing action.
class FakeClock {
 public:
  explicit FakeClock(int64_t start_us = 0) : now_us_(start_us) {}

  int64_t now_us() const { return now_us_.load(std::memory_order_seq_cst); }
  void advance_us(int64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_seq_cst);
  }

  /// Adapter for RuntimeOptions::clock_us. The FakeClock must outlive every
  /// user of the returned function.
  ClockFn fn() {
    return [this] { return now_us(); };
  }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace itask::runtime
