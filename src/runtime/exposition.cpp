#include "runtime/exposition.h"

#include <sstream>
#include <utility>

#include "tensor/format.h"
#include "tensor/tensor.h"

namespace itask::runtime {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; anything else becomes '_'.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

ExpositionData collect(const MetricsRegistry& metrics) {
  ExpositionData data;
  data.metrics = metrics.snapshot();
  data.kernel = profile::snapshot();
  return data;
}

std::string to_prometheus(const ExpositionData& data) {
  std::ostringstream out;
  for (const auto& [name, value] : data.metrics.counters) {
    const std::string metric = "itask_" + sanitize(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << ' ' << fmt::i64(value) << '\n';
  }
  for (const auto& [name, snap] : data.metrics.histograms) {
    const std::string metric = "itask_" + sanitize(name);
    out << "# TYPE " << metric << " histogram\n";
    int64_t cumulative = 0;
    for (const Histogram::Bucket& b : snap.buckets) {
      cumulative += b.count;
      out << metric << "_bucket{le=\"" << fmt::g6(b.upper) << "\"} "
          << fmt::i64(cumulative) << '\n';
    }
    out << metric << "_bucket{le=\"+Inf\"} " << fmt::i64(snap.count) << '\n';
    out << metric << "_sum " << fmt::g6(snap.sum) << '\n';
    out << metric << "_count " << fmt::i64(snap.count) << '\n';
    out << metric << "_p50 " << fmt::g6(snap.p50) << '\n';
    out << metric << "_p95 " << fmt::g6(snap.p95) << '\n';
    out << metric << "_p99 " << fmt::g6(snap.p99) << '\n';
  }
  if (!data.kernel.empty()) {
    out << "# TYPE itask_kernel_profile_calls counter\n";
    for (const profile::SectionStats& s : data.kernel) {
      out << "itask_kernel_profile_calls{section=\"" << s.name << "\"} "
          << fmt::i64(s.calls) << '\n';
    }
    out << "# TYPE itask_kernel_profile_ns counter\n";
    for (const profile::SectionStats& s : data.kernel) {
      out << "itask_kernel_profile_ns{section=\"" << s.name << "\"} "
          << fmt::i64(s.total_ns) << '\n';
    }
  }
  return out.str();
}

std::string to_json(const ExpositionData& data) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < data.metrics.counters.size(); ++i) {
    const auto& [name, value] = data.metrics.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << name
        << "\": " << fmt::i64(value);
  }
  out << (data.metrics.counters.empty() ? "" : "\n  ") << "},\n"
      << "  \"histograms\": {";
  for (size_t i = 0; i < data.metrics.histograms.size(); ++i) {
    const auto& [name, s] = data.metrics.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << name << "\": {"
        << "\"count\": " << fmt::i64(s.count) << ", \"sum\": " << fmt::g6(s.sum)
        << ", \"mean\": " << fmt::g6(s.mean) << ", \"min\": " << fmt::g6(s.min)
        << ", \"max\": " << fmt::g6(s.max) << ", \"p50\": " << fmt::g6(s.p50)
        << ", \"p95\": " << fmt::g6(s.p95) << ", \"p99\": " << fmt::g6(s.p99)
        << ", \"buckets\": [";
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << '[' << fmt::g6(s.buckets[b].upper) << ", "
          << fmt::i64(s.buckets[b].count) << ']';
    }
    out << "]}";
  }
  out << (data.metrics.histograms.empty() ? "" : "\n  ") << "}";
  if (!data.kernel.empty()) {
    out << ",\n  \"kernel_profile\": [";
    for (size_t i = 0; i < data.kernel.size(); ++i) {
      const profile::SectionStats& s = data.kernel[i];
      out << (i == 0 ? "" : ", ") << "{\"section\": \"" << s.name
          << "\", \"calls\": " << fmt::i64(s.calls)
          << ", \"total_ns\": " << fmt::i64(s.total_ns) << '}';
    }
    out << "]";
  }
  out << "\n}\n";
  return out.str();
}

PeriodicReporter::PeriodicReporter(const MetricsRegistry& metrics,
                                   std::chrono::milliseconds interval,
                                   Sink sink)
    : metrics_(metrics), interval_(interval), sink_(std::move(sink)) {
  ITASK_CHECK(interval_.count() > 0,
              "PeriodicReporter: interval must be positive");
  ITASK_CHECK(sink_ != nullptr, "PeriodicReporter: sink must be callable");
  thread_ = std::thread([this] { loop(); });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return;  // the first stop() owns the join
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicReporter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const bool stopping =
        wake_.wait_for(lock, interval_, [this] { return stop_requested_; });
    // Render without holding the lock: collect() takes registry/histogram
    // locks of its own and the sink may be arbitrarily slow.
    lock.unlock();
    sink_(to_prometheus(collect(metrics_)));
    lock.lock();
    // When stopping, the render above ran *after* observing the stop flag,
    // so it contains every record that happened-before stop() — the final
    // report is flushed, never dropped, on shutdown.
    if (stopping) return;
  }
}

}  // namespace itask::runtime
