// Machine-readable exposition of a MetricsRegistry: Prometheus text format
// and a JSON snapshot, plus an optional periodic reporter thread.
//
// collect() copies the registry (counters, per-histogram count/sum/quantiles
// and non-empty buckets) together with the kernel-profiling sections from
// tensor/profile.h — one struct behind both text formats, so a scrape and a
// bench print can never disagree about what they saw. All formatting goes
// through the shared fmt helpers (tensor/format.h); no printf specifier for
// int64_t appears here or in the formats' consumers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "tensor/profile.h"

namespace itask::runtime {

/// Point-in-time data behind both text formats.
struct ExpositionData {
  RegistrySnapshot metrics;
  /// Kernel profiling sections; empty unless profile::set_enabled(true) and
  /// an instrumented kernel ran.
  std::vector<profile::SectionStats> kernel;
};

ExpositionData collect(const MetricsRegistry& metrics);

/// Prometheus text exposition format. Counters become `itask_<name>`
/// counters; histograms become `itask_<name>` histogram families
/// (cumulative `_bucket{le=…}` series ending in `+Inf`, `_sum`, `_count`)
/// plus `_p50/_p95/_p99` gauges; kernel sections become
/// `itask_kernel_profile_{calls,ns}{section=…}`.
std::string to_prometheus(const ExpositionData& data);

/// JSON object: {"counters": {…}, "histograms": {name: {count, sum, mean,
/// min, max, p50, p95, p99, buckets: [[upper, count], …]}}, and
/// "kernel_profile": [{section, calls, total_ns}, …] when profiling ran.
std::string to_json(const ExpositionData& data);

/// Background thread that renders to_prometheus(collect(metrics)) into
/// `sink` every `interval`. stop() (also run by the destructor) wakes the
/// thread, emits one final report so shutdown never loses the tail of a
/// run, and joins — the drain the server's own shutdown sequencing relies
/// on. The sink is only ever called from the reporter thread.
class PeriodicReporter {
 public:
  using Sink = std::function<void(const std::string&)>;

  PeriodicReporter(const MetricsRegistry& metrics,
                   std::chrono::milliseconds interval, Sink sink);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Idempotent: first call flushes the final report and joins.
  void stop();

 private:
  void loop();

  const MetricsRegistry& metrics_;
  std::chrono::milliseconds interval_;
  Sink sink_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace itask::runtime
