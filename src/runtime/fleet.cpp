#include "runtime/fleet.h"

#include <algorithm>
#include <utility>

#include "tensor/format.h"

namespace itask::runtime {

FleetRouter::FleetRouter(int64_t shards, int64_t replication)
    : shards_(shards), replication_(std::clamp<int64_t>(replication, 1, shards)) {
  ITASK_CHECK(shards >= 1, "FleetRouter: shards must be >= 1");
  ITASK_CHECK(replication >= 1, "FleetRouter: replication must be >= 1");
}

std::vector<int64_t> FleetRouter::replicas(kg::TaskId task) const {
  // Rendezvous ranking: every shard hashes the task against its own salt
  // (the shard index); sort descending. Ties are impossible in practice
  // (64-bit hashes) but break toward the lower shard index for a total
  // deterministic order regardless.
  std::vector<int64_t> order(static_cast<size_t>(shards_));
  for (int64_t s = 0; s < shards_; ++s) order[static_cast<size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const uint64_t ha = kg::task_route_hash(task, static_cast<uint64_t>(a));
    const uint64_t hb = kg::task_route_hash(task, static_cast<uint64_t>(b));
    if (ha != hb) return ha > hb;
    return a < b;
  });
  order.resize(static_cast<size_t>(replication_));
  return order;
}

int64_t FleetRouter::route(kg::TaskId task, int64_t sequence) const {
  ITASK_CHECK(sequence >= 0, "FleetRouter::route: sequence must be >= 0");
  return replicas(task)[static_cast<size_t>(sequence % replication_)];
}

InferenceFleet::InferenceFleet(
    std::shared_ptr<const core::DeploymentSnapshot> snapshot,
    FleetOptions options)
    : options_(std::move(options)),
      router_(options_.shards, options_.replication),
      submitted_(metrics_.counter("fleet_submitted")),
      admitted_(metrics_.counter("fleet_admitted")),
      quota_rejected_(metrics_.counter("fleet_quota_rejected")),
      queue_full_rejected_(metrics_.counter("fleet_rejected_queue_full")),
      shutdown_rejected_(metrics_.counter("fleet_rejected_shutdown")),
      failovers_(metrics_.counter("fleet_failovers")),
      invalid_(metrics_.counter("fleet_requests_invalid")),
      window_resets_(metrics_.counter("fleet_fairness_window_resets")),
      rollouts_started_(metrics_.counter("fleet_rollouts_started")),
      rollouts_completed_(metrics_.counter("fleet_rollouts_completed")),
      rollouts_failed_(metrics_.counter("fleet_rollouts_failed")),
      shard_installs_(metrics_.counter("fleet_shard_installs")) {
  ITASK_CHECK(snapshot != nullptr, "InferenceFleet: snapshot must not be null");
  ITASK_CHECK(options_.tenant_quota >= 0,
              "InferenceFleet: tenant_quota must be >= 0");
  ITASK_CHECK(options_.quota_window >= 1,
              "InferenceFleet: quota_window must be >= 1");
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int64_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(
        std::make_unique<InferenceServer>(snapshot, options_.shard_options));
  }
}

InferenceFleet::~InferenceFleet() { shutdown(); }

InferenceServer& InferenceFleet::shard(int64_t index) {
  ITASK_CHECK(index >= 0 && index < shard_count(),
              "InferenceFleet::shard: index " + fmt::i64(index) +
                  " out of range [0, " + fmt::i64(shard_count()) + ")");
  return *shards_[static_cast<size_t>(index)];
}

std::vector<int64_t> InferenceFleet::shard_versions() const {
  std::vector<int64_t> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    versions.push_back(shard->current_snapshot()->version());
  }
  return versions;
}

FleetSubmitResult InferenceFleet::try_submit(
    Tensor image, kg::TaskId task, core::ConfigKind config, int64_t tenant,
    std::optional<int64_t> deadline_us) {
  std::lock_guard<std::mutex> lock(mu_);
  FleetSubmitResult result;
  submitted_.increment();
  if (stopped_) {
    shutdown_rejected_.increment();
    result.reject = RejectReason::kShuttingDown;
    return result;
  }
  // Fairness window: every attempt advances it (so a saturated tenant's
  // rejected attempts still roll the window toward its next grant), and the
  // per-tenant fairness counters reset when it wraps.
  if (options_.tenant_quota > 0) {
    if (++window_attempts_ > options_.quota_window) {
      window_attempts_ = 1;
      window_admissions_.clear();
      window_resets_.increment();
    }
    if (window_admissions_[tenant] >= options_.tenant_quota) {
      quota_rejected_.increment();
      result.reject = RejectReason::kTenantQuota;
      return result;
    }
  }
  // Replica rotation with failover: start at the slot this task's
  // submission sequence selects, then walk the rest of the replica set past
  // full (or, mid-rollout, not-yet-servable) shards.
  const std::vector<int64_t> replicas = router_.replicas(task);
  const int64_t seq = route_seq_[task]++;
  const int64_t r = static_cast<int64_t>(replicas.size());
  bool any_servable = false;
  for (int64_t k = 0; k < r; ++k) {
    const int64_t shard_index =
        replicas[static_cast<size_t>((seq + k) % r)];
    InferenceServer& server = *shards_[static_cast<size_t>(shard_index)];
    if (!server.current_snapshot()->servable(task, config)) {
      // Version skew between shards: this replica has not seen the snapshot
      // that defines the task yet. Skip it — another replica may have.
      failovers_.increment();
      continue;
    }
    any_servable = true;
    // A rejected try_submit consumes the Tensor it was handed, so only the
    // last candidate replica may take `image` by move — earlier attempts
    // get a copy to keep failover possible. (Single-replica fleets, the
    // default, never copy.)
    const bool last_candidate = k + 1 == r;
    SubmitResult attempt = server.try_submit(
        last_candidate ? std::move(image) : Tensor(image), task, config,
        deadline_us);
    if (attempt.admitted()) {
      if (options_.tenant_quota > 0) ++window_admissions_[tenant];
      admitted_.increment();
      result.future = std::move(attempt.future);
      result.shard = shard_index;
      return result;
    }
    failovers_.increment();
    if (attempt.reject == RejectReason::kShuttingDown) {
      shutdown_rejected_.increment();
      result.reject = RejectReason::kShuttingDown;
      return result;
    }
  }
  if (!any_servable) {
    invalid_.increment();
    ITASK_CHECK(false,
                std::string("InferenceFleet::try_submit: configuration ") +
                    core::config_kind_name(config) + " cannot serve " +
                    kg::task_id_to_string(task) +
                    " on any of its replica shards (publish and roll out a "
                    "snapshot containing it first)");
  }
  queue_full_rejected_.increment();
  result.reject = RejectReason::kQueueFull;
  return result;
}

FleetGroupSubmitResult InferenceFleet::try_submit_group(
    std::vector<Tensor> views, kg::TaskId task, core::ConfigKind config,
    int64_t tenant, std::optional<int64_t> deadline_us) {
  ITASK_CHECK(!views.empty(),
              "InferenceFleet::try_submit_group: need at least one view");
  std::lock_guard<std::mutex> lock(mu_);
  FleetGroupSubmitResult result;
  submitted_.increment();
  if (stopped_) {
    shutdown_rejected_.increment();
    result.reject = RejectReason::kShuttingDown;
    return result;
  }
  // A group is ONE logical request: it advances the fairness window and
  // consumes quota once, regardless of K — a tenant cannot stretch its
  // bounded share by inflating view counts into admission concurrency.
  if (options_.tenant_quota > 0) {
    if (++window_attempts_ > options_.quota_window) {
      window_attempts_ = 1;
      window_admissions_.clear();
      window_resets_.increment();
    }
    if (window_admissions_[tenant] >= options_.tenant_quota) {
      quota_rejected_.increment();
      result.reject = RejectReason::kTenantQuota;
      return result;
    }
  }
  // Same rotation + failover walk as try_submit, but the whole group moves
  // as a unit: the views share one scene, so splitting them across shards
  // would buy nothing and cost a cross-registry gather.
  const std::vector<int64_t> replicas = router_.replicas(task);
  const int64_t seq = route_seq_[task]++;
  const int64_t r = static_cast<int64_t>(replicas.size());
  bool any_servable = false;
  for (int64_t k = 0; k < r; ++k) {
    const int64_t shard_index = replicas[static_cast<size_t>((seq + k) % r)];
    InferenceServer& server = *shards_[static_cast<size_t>(shard_index)];
    if (!server.current_snapshot()->servable(task, config)) {
      failovers_.increment();
      continue;
    }
    any_servable = true;
    // As in try_submit: a rejected attempt consumes its argument, so only
    // the last candidate replica may take the views by move.
    const bool last_candidate = k + 1 == r;
    GroupSubmitResult attempt = server.try_submit_group(
        last_candidate ? std::move(views) : std::vector<Tensor>(views), task,
        config, deadline_us);
    if (attempt.admitted()) {
      if (options_.tenant_quota > 0) ++window_admissions_[tenant];
      admitted_.increment();
      result.future = std::move(attempt.future);
      result.shard = shard_index;
      return result;
    }
    failovers_.increment();
    if (attempt.reject == RejectReason::kShuttingDown) {
      shutdown_rejected_.increment();
      result.reject = RejectReason::kShuttingDown;
      return result;
    }
  }
  if (!any_servable) {
    invalid_.increment();
    ITASK_CHECK(
        false,
        std::string("InferenceFleet::try_submit_group: configuration ") +
            core::config_kind_name(config) + " cannot serve " +
            kg::task_id_to_string(task) +
            " on any of its replica shards (publish and roll out a "
            "snapshot containing it first)");
  }
  queue_full_rejected_.increment();
  result.reject = RejectReason::kQueueFull;
  return result;
}

RolloutResult InferenceFleet::install_snapshot(
    std::shared_ptr<const core::DeploymentSnapshot> snapshot) {
  ITASK_CHECK(snapshot != nullptr,
              "InferenceFleet::install_snapshot: snapshot must not be null");
  std::lock_guard<std::mutex> rollout_lock(rollout_mu_);
  RolloutResult result;
  result.version = snapshot->version();
  // Version-skew tolerance contract, asserted before ANY shard changes:
  // every task any shard currently serves must exist in the new snapshot
  // (task tables only grow), otherwise the mixed-version state a staged
  // rollout passes through could strand admitted requests.
  for (const auto& shard : shards_) {
    const auto current = shard->current_snapshot();
    const std::optional<kg::TaskId> missing =
        snapshot->first_missing_task(*current);
    ITASK_CHECK(!missing.has_value(),
                "InferenceFleet::install_snapshot: snapshot v" +
                    fmt::i64(snapshot->version()) + " drops " +
                    kg::task_id_to_string(*missing) + " still served by v" +
                    fmt::i64(current->version()) +
                    " — task tables must only grow across versions");
  }
  rollouts_started_.increment();
  for (int64_t s = 0; s < shard_count(); ++s) {
    InferenceServer& server = *shards_[static_cast<size_t>(s)];
    if (server.current_snapshot()->version() >= snapshot->version()) {
      // Already rolled (a retry after a mid-rollout failure resumes here).
      ++result.already_current;
      continue;
    }
    try {
      if (options_.rollout_hook) {
        options_.rollout_hook(s, snapshot->version());
      }
      server.install_snapshot(snapshot);
    } catch (const std::exception& e) {
      // The rollback path: stop the stage here. Versions are monotone, so
      // shards 0..s-1 keep the new snapshot, s.. keep the old — a state the
      // skew contract makes safe — and a retry resumes at this shard.
      rollouts_failed_.increment();
      result.failed_shard = s;
      result.error = e.what();
      return result;
    }
    shard_installs_.increment();
    ++result.installed;
  }
  rollouts_completed_.increment();
  return result;
}

RegistrySnapshot InferenceFleet::merged_metrics() const {
  std::vector<RegistrySnapshot> parts;
  parts.reserve(shards_.size() + 1);
  parts.push_back(metrics_.snapshot());
  for (const auto& shard : shards_) {
    parts.push_back(shard->metrics().snapshot());
  }
  return merge_snapshots(parts);
}

int64_t InferenceFleet::tenant_window_admissions(int64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = window_admissions_.find(tenant);
  return it == window_admissions_.end() ? 0 : it->second;
}

void InferenceFleet::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  for (const auto& shard : shards_) {
    shard->shutdown();
  }
}

}  // namespace itask::runtime
