// The sharded serving fleet (DESIGN.md §2 `runtime/fleet`, bench F7): N
// InferenceServer shards behind a deterministic task-affinity router — the
// "millions of users" scale-out tier over the single-server substrate.
//
//   clients ──try_submit──▶ InferenceFleet ──route──▶ shard k (InferenceServer)
//                  │   (tenant quota + fairness │
//                  │    window, then rendezvous │
//                  │    placement & failover)   ▼
//                  └──── std::future<InferenceResult> ◀── shard worker ─┘
//
// Placement: FleetRouter ranks every shard by kg::task_route_hash(task,
// shard) — rendezvous (highest-random-weight) hashing keyed on the stable
// TaskId. A task's top `replication` shards are its replica set; requests
// spread across replicas round-robin by a per-task submission sequence and
// fail over to the next replica when one's queue is full. Placement is a
// pure function of (task, shard count, replication): no traffic state, so
// any two fleets with the same geometry route identically, and every shard
// sees a stable task subset (warm per-task affinity) instead of random
// spray.
//
// Admission fairness: per-tenant quotas over a rolling attempt window. Each
// tenant may be admitted at most `tenant_quota` times per `quota_window`
// try_submit attempts fleet-wide; the per-tenant fairness counters reset
// when the window rolls. A heavy tenant saturates its share and gets
// kTenantQuota while light tenants keep landing — bounded-share admission
// without per-request completion tracking.
//
// Staged rollout: install_snapshot walks the shards in index order, one
// install at a time, after asserting the version-skew tolerance contract
// (DeploymentSnapshot::first_missing_task — task tables only ever grow).
// Mid-rollout the fleet intentionally serves MIXED versions: safe, because
// a task known to the older version produces element-wise identical
// detections on every version (prepare_* replaces models rather than
// mutating them), and new-only tasks simply aren't routable until their
// replicas update. A shard whose install throws stops the rollout — that is
// the rollback path: snapshot versions are monotone, so "rollback" means
// earlier shards keep the new version, the remaining shards keep serving
// the old one, the mixed state stays correct by the same contract, and a
// retry of the same snapshot resumes at the failed shard (already-current
// shards are skipped). Nothing is ever downgraded and serving never pauses.
//
// Observability: the fleet keeps its own MetricsRegistry (routing, quota,
// rollout counters, all `fleet_`-prefixed) next to each shard's registry;
// merged_metrics() folds all of them into one RegistrySnapshot via
// merge_snapshots, which feeds the existing Prometheus/JSON exposition
// unchanged — one scrape for the whole fleet, or per-shard scrapes for
// drill-down.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/server.h"

namespace itask::runtime {

/// Deterministic task→shard placement: rendezvous hashing over the stable
/// kg::TaskId. Stateless and cheap — the fleet consults it per submission,
/// tests enumerate it directly.
class FleetRouter {
 public:
  /// `replication` is clamped into [1, shards].
  FleetRouter(int64_t shards, int64_t replication);

  int64_t shards() const { return shards_; }
  int64_t replication() const { return replication_; }

  /// The task's replica set: all shards ranked by task_route_hash(task,
  /// shard) descending, truncated to `replication`. replicas(t)[0] is the
  /// task's primary. Deterministic; distinct shards.
  std::vector<int64_t> replicas(kg::TaskId task) const;

  /// The shard a request should try first: the task's replica slot
  /// `sequence % replication`. Spreading by a per-task submission sequence
  /// keeps replica load even while staying a pure function of (task,
  /// sequence).
  int64_t route(kg::TaskId task, int64_t sequence) const;

 private:
  int64_t shards_;
  int64_t replication_;
};

struct FleetOptions {
  int64_t shards = 2;
  /// Replica set size per task (clamped to `shards`): >1 trades strict
  /// single-shard affinity for failover headroom and per-task throughput.
  int64_t replication = 1;
  /// Per-tenant admissions allowed per fairness window; 0 disables quotas.
  int64_t tenant_quota = 0;
  /// Fairness window length, counted in try_submit attempts fleet-wide.
  int64_t quota_window = 64;
  /// Options every shard's InferenceServer is built with (workers per
  /// shard, batching, queue depth, arena, …).
  RuntimeOptions shard_options;
  /// Rollout fault hook, consulted just before each shard's install during
  /// install_snapshot (staged, shard index order). Anything it throws
  /// becomes that shard's install failure — the deterministic way tests and
  /// bench_f7_fleet exercise the mid-rollout rollback path.
  std::function<void(int64_t shard, int64_t version)> rollout_hook;
};

/// try_submit outcome: the admitted request's future plus which shard took
/// it, or the explicit reject reason. The fleet shares the server's
/// RejectReason vocabulary (one enum, one reject_reason_name): kTenantQuota
/// is the fleet-level reason a single server cannot produce, and kQueueFull
/// here means every replica of the task was full (failover exhausted).
struct FleetSubmitResult {
  std::optional<std::future<InferenceResult>> future;
  RejectReason reject = RejectReason::kNone;
  int64_t shard = -1;  // the shard that admitted (−1 on reject)

  bool admitted() const { return future.has_value(); }
  explicit operator bool() const { return admitted(); }
};

/// try_submit_group outcome, mirroring FleetSubmitResult: the whole group
/// lands on ONE shard (so its views share that shard's batcher and the
/// gather never crosses registries), or is rejected as a unit.
struct FleetGroupSubmitResult {
  std::optional<std::future<GroupInferenceResult>> future;
  RejectReason reject = RejectReason::kNone;
  int64_t shard = -1;  // the shard that admitted (−1 on reject)

  bool admitted() const { return future.has_value(); }
  explicit operator bool() const { return admitted(); }
};

/// Outcome of one staged install_snapshot pass over the shards.
struct RolloutResult {
  int64_t version = 0;          // snapshot version being rolled out
  int64_t installed = 0;        // shards newly installed by this pass
  int64_t already_current = 0;  // shards skipped (version already ≥)
  int64_t failed_shard = -1;    // first shard whose install threw, or −1
  std::string error;            // that failure's what(), empty on success

  /// Every shard now serves `version` (or newer).
  bool complete() const { return failed_shard < 0; }
};

class InferenceFleet {
 public:
  /// Builds `options.shards` InferenceServer shards, every one serving
  /// `snapshot` from the start.
  InferenceFleet(std::shared_ptr<const core::DeploymentSnapshot> snapshot,
                 FleetOptions options);
  ~InferenceFleet();

  InferenceFleet(const InferenceFleet&) = delete;
  InferenceFleet& operator=(const InferenceFleet&) = delete;

  /// Routes and submits one request. Order of checks: shutdown, tenant
  /// quota, then the task's replica shards in rotation order with failover
  /// past full replicas. Throws std::invalid_argument (like the underlying
  /// server) when NO replica's current snapshot can serve (task, config) —
  /// mid-rollout, a task only the new version knows is admitted as soon as
  /// one of its replicas has been updated.
  FleetSubmitResult try_submit(Tensor image, kg::TaskId task,
                               core::ConfigKind config, int64_t tenant = 0,
                               std::optional<int64_t> deadline_us =
                                   std::nullopt);

  /// Convenience overload mirroring InferenceServer::try_submit: submits
  /// against the handle's stable task id.
  FleetSubmitResult try_submit(Tensor image, const core::TaskHandle& task,
                               core::ConfigKind config, int64_t tenant = 0,
                               std::optional<int64_t> deadline_us =
                                   std::nullopt) {
    return try_submit(std::move(image), task.id, config, tenant, deadline_us);
  }

  /// Scatter/gather twin of InferenceServer::try_submit_group. Same
  /// admission order as try_submit (shutdown, tenant quota — one logical
  /// request counts as ONE quota admission however many views it carries —
  /// then replica rotation with failover past full shards); the whole group
  /// is placed on one shard, all-or-nothing, and the returned future
  /// resolves with that shard's fused result. Throws std::invalid_argument
  /// when no replica can serve (task, config), exactly like try_submit.
  FleetGroupSubmitResult try_submit_group(
      std::vector<Tensor> views, kg::TaskId task, core::ConfigKind config,
      int64_t tenant = 0, std::optional<int64_t> deadline_us = std::nullopt);

  /// Convenience overload: submits against the handle's stable task id.
  FleetGroupSubmitResult try_submit_group(
      std::vector<Tensor> views, const core::TaskHandle& task,
      core::ConfigKind config, int64_t tenant = 0,
      std::optional<int64_t> deadline_us = std::nullopt) {
    return try_submit_group(std::move(views), task.id, config, tenant,
                            deadline_us);
  }

  /// Staged rollout (see the file comment): asserts the version-skew
  /// tolerance contract, then installs shard-by-shard in index order,
  /// stopping at the first failure. Never throws for a shard install
  /// failure — that is an expected operational outcome reported in the
  /// result; a retry with the same snapshot resumes where it stopped.
  /// Contract violations (null snapshot, a task of any shard's current
  /// snapshot missing from the new one) still throw std::invalid_argument.
  RolloutResult install_snapshot(
      std::shared_ptr<const core::DeploymentSnapshot> snapshot);

  int64_t shard_count() const {
    return static_cast<int64_t>(shards_.size());
  }
  InferenceServer& shard(int64_t index);
  const FleetRouter& router() const { return router_; }
  /// Each shard's currently served snapshot version, in shard order —
  /// mixed values mid-rollout are the expected picture.
  std::vector<int64_t> shard_versions() const;

  /// Fleet-level registry (routing/quota/rollout counters only; per-request
  /// serving metrics live in each shard's registry).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// One fleet-wide scrape: the fleet registry and every shard registry
  /// merged (counters summed, histograms bucket-merged) — feed it to
  /// to_prometheus/to_json exactly like a single server's snapshot.
  RegistrySnapshot merged_metrics() const;

  /// The tenant's fairness-counter value in the current window (admissions
  /// so far); resets when the window rolls. Observability for tests/benches.
  int64_t tenant_window_admissions(int64_t tenant) const;

  /// Stops admission on the fleet, then drains and joins every shard.
  /// Idempotent; also run by the destructor.
  void shutdown();

  const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
  FleetRouter router_;
  MetricsRegistry metrics_;
  // Admission-path counters, resolved once (same rationale as the server's).
  Counter& submitted_;
  Counter& admitted_;
  Counter& quota_rejected_;
  Counter& queue_full_rejected_;
  Counter& shutdown_rejected_;
  Counter& failovers_;
  Counter& invalid_;
  Counter& window_resets_;
  Counter& rollouts_started_;
  Counter& rollouts_completed_;
  Counter& rollouts_failed_;
  Counter& shard_installs_;
  std::vector<std::unique_ptr<InferenceServer>> shards_;
  // Admission state: per-task routing sequences and the fairness window.
  // One fleet-wide mutex — admission is validation + a queue push, the
  // serving hot path (shard workers) never touches it.
  mutable std::mutex mu_;
  std::map<kg::TaskId, int64_t> route_seq_;
  std::map<int64_t, int64_t> window_admissions_;  // tenant → this window
  int64_t window_attempts_ = 0;
  bool stopped_ = false;
  // Serializes concurrent rollouts (admission keeps flowing meanwhile).
  std::mutex rollout_mu_;
};

}  // namespace itask::runtime
