#include "runtime/loadgen.h"

#include <cmath>
#include <vector>

#include "tensor/tensor.h"

namespace itask::runtime {

const char* arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "unknown";
}

namespace {

// Uniform double in (0, 1] — the exponential-sampling form: log(u) is finite
// because u never hits 0, and u = 1 gives the legal inter-arrival 0.
double uniform_unit(Rng& rng) {
  return 1.0 - static_cast<double>(rng.uniform(0.0f, 1.0f));
}

// The instantaneous arrival rate at absolute time t: flat for Poisson,
// duty-cycled for bursty (burst_duty leading fraction of every period runs
// hot at rate*factor, the rest cold at rate/factor).
double rate_at(const LoadGenOptions& o, double t_us) {
  if (o.arrivals == ArrivalProcess::kPoisson) return o.rate_rps;
  const double phase =
      std::fmod(t_us, static_cast<double>(o.burst_period_us)) /
      static_cast<double>(o.burst_period_us);
  return phase < o.burst_duty ? o.rate_rps * o.burst_factor
                              : o.rate_rps / o.burst_factor;
}

// Zipf CDF over ranks 0..n-1 with exponent s: P(rank r) ∝ 1/(r+1)^s.
// s = 0 degenerates to uniform. Sampling is a binary search over the CDF.
std::vector<double> zipf_cdf(int64_t n, double s) {
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[static_cast<size_t>(r)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

int64_t sample_rank(const std::vector<double>& cdf, Rng& rng) {
  const double u = static_cast<double>(rng.uniform(0.0f, 1.0f));
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(cdf.size()) - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (cdf[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::vector<GeneratedRequest> generate_schedule(const LoadGenOptions& o,
                                                Rng& rng) {
  ITASK_CHECK(o.requests >= 1, "generate_schedule: requests must be >= 1");
  ITASK_CHECK(o.rate_rps > 0.0, "generate_schedule: rate_rps must be > 0");
  ITASK_CHECK(o.tasks >= 1, "generate_schedule: tasks must be >= 1");
  ITASK_CHECK(o.zipf_s >= 0.0, "generate_schedule: zipf_s must be >= 0");
  ITASK_CHECK(o.tenants >= 1, "generate_schedule: tenants must be >= 1");
  ITASK_CHECK(o.scenes >= 1, "generate_schedule: scenes must be >= 1");
  ITASK_CHECK(o.storm_period_us >= 0,
              "generate_schedule: storm_period_us must be >= 0");
  ITASK_CHECK(o.group_fraction >= 0.0 && o.group_fraction <= 1.0,
              "generate_schedule: group_fraction must be in [0, 1]");
  ITASK_CHECK(o.group_views >= 1,
              "generate_schedule: group_views must be >= 1");
  if (o.arrivals == ArrivalProcess::kBursty) {
    ITASK_CHECK(o.burst_factor >= 1.0,
                "generate_schedule: burst_factor must be >= 1");
    ITASK_CHECK(o.burst_period_us >= 1,
                "generate_schedule: burst_period_us must be >= 1");
    ITASK_CHECK(o.burst_duty > 0.0 && o.burst_duty < 1.0,
                "generate_schedule: burst_duty must be in (0, 1)");
  }

  const std::vector<double> cdf = zipf_cdf(o.tasks, o.zipf_s);
  std::vector<GeneratedRequest> schedule;
  schedule.reserve(static_cast<size_t>(o.requests));
  double t_us = 0.0;
  for (int64_t i = 0; i < o.requests; ++i) {
    // Exponential inter-arrival at the CURRENT instantaneous rate — a
    // thinning-free approximation that is exact for Poisson and, for
    // bursty, re-reads the duty cycle each arrival (accurate as long as
    // inter-arrivals are short against burst_period_us, the regime the
    // bench runs in).
    const double rate = rate_at(o, t_us);
    t_us += -std::log(uniform_unit(rng)) * 1e6 / rate;

    GeneratedRequest req;
    req.arrival_us = static_cast<int64_t>(t_us);
    // Mission-switch storm: the popularity RANK stays zipf, but which task
    // holds each rank rotates every storm period — the fleet-wide "new
    // hottest mission" event à la F4's task-switch sweeps.
    const int64_t rotation =
        o.storm_period_us > 0 ? req.arrival_us / o.storm_period_us : 0;
    const int64_t rank = sample_rank(cdf, rng);
    req.task_index = (rank + rotation) % o.tasks;
    req.tenant = o.tenants > 1 ? rng.randint(0, o.tenants - 1) : 0;
    req.scene = o.scenes > 1 ? rng.randint(0, o.scenes - 1) : 0;
    // Group axis last, and ONLY when enabled: a disabled knob must not
    // consume rng draws, or every pre-existing same-seed schedule would
    // shift.
    if (o.group_fraction > 0.0 && rng.bernoulli(o.group_fraction)) {
      req.views = o.group_views;
      req.view_seed = static_cast<uint64_t>(rng.randint(0, (1 << 30)));
    }
    schedule.push_back(req);
  }
  return schedule;
}

}  // namespace itask::runtime
