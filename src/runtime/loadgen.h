// Open-loop traffic generation for the serving fleet (bench F7).
//
// An open-loop generator decides every arrival time BEFORE the system
// responds: requests land on their schedule whether or not earlier ones were
// admitted, so rejections show up as lost goodput instead of silently
// slowing the offered rate — the honest way to measure a serving system
// under overload (a closed loop self-throttles and hides saturation).
//
// The schedule is a pure function of (LoadGenOptions, Rng seed): same inputs,
// identical vector, on any platform the repo's Rng is deterministic on. Four
// axes compose:
//   arrivals   — Poisson (exponential inter-arrival at rate_rps) or bursty
//                (the same process with its instantaneous rate modulated by
//                an on/off duty cycle: rate*burst_factor during a burst,
//                rate/burst_factor between bursts);
//   popularity — zipf over `tasks` ranks (s = 0 degenerates to uniform), so
//                a few hot missions dominate like real fleets;
//   storms     — F4-style mission switches: every storm_period_us the
//                rank→task mapping rotates by one, so the hottest task
//                changes abruptly and routing/affinity gets re-shuffled;
//   tenants    — uniform tenant assignment, the input to the fleet's
//                per-tenant admission quotas.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace itask::runtime {

/// One synthetic request of an open-loop schedule. `task_index` is a
/// popularity *rank-resolved* task in [0, tasks): the caller maps it onto
/// real kg::TaskIds (and `scene` onto canned eval images).
struct GeneratedRequest {
  int64_t arrival_us = 0;  // offset from schedule start, non-decreasing
  int64_t task_index = 0;  // in [0, LoadGenOptions::tasks)
  int64_t tenant = 0;      // in [0, LoadGenOptions::tenants)
  int64_t scene = 0;       // in [0, LoadGenOptions::scenes)
  /// Views this request carries: 1 = ordinary try_submit, >1 = a K-view
  /// group request (try_submit_group over detect::jittered_views of the
  /// scene, seeded by view_seed so every serving path sees identical views).
  int64_t views = 1;
  uint64_t view_seed = 0;
};

enum class ArrivalProcess { kPoisson, kBursty };

const char* arrival_process_name(ArrivalProcess process);

struct LoadGenOptions {
  int64_t requests = 1024;
  /// Mean offered rate (requests/s). For kBursty this is still the mean:
  /// the duty cycle modulates around it.
  double rate_rps = 1000.0;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Bursty shape: inside a burst the instantaneous rate is
  /// rate_rps * burst_factor; outside it rate_rps / burst_factor.
  double burst_factor = 4.0;
  int64_t burst_period_us = 50'000;  // one on+off cycle
  double burst_duty = 0.25;          // leading fraction of the cycle bursting

  int64_t tasks = 1;
  /// Zipf popularity exponent over task ranks (P(rank r) ∝ 1/(r+1)^s);
  /// 0 = uniform.
  double zipf_s = 1.0;
  int64_t tenants = 1;
  int64_t scenes = 1;

  /// Mission-switch storm period (µs); every elapsed period rotates the
  /// popularity-rank → task mapping by one. 0 disables storms.
  int64_t storm_period_us = 0;

  /// Occlusion/collaborative scenario: fraction of requests that become
  /// K-view group requests (views = group_views, with a fresh view_seed).
  /// 0 (the default) draws NOTHING from the rng for this axis, so existing
  /// schedules stay bit-identical to pre-knob ones at the same seed.
  double group_fraction = 0.0;
  int64_t group_views = 3;
};

/// Generates the full open-loop schedule, sorted by arrival_us. Validates
/// options via ITASK_CHECK; consumes `rng` (two generators with the same
/// seed and options yield identical schedules).
std::vector<GeneratedRequest> generate_schedule(const LoadGenOptions& options,
                                                Rng& rng);

}  // namespace itask::runtime
