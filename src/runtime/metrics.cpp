#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "tensor/tensor.h"

namespace itask::runtime {

Histogram::Histogram(double min_value, double max_value, double growth)
    : min_value_(min_value),
      inv_log_growth_(1.0 / std::log(growth)),
      growth_(growth) {
  ITASK_CHECK(min_value > 0.0 && max_value > min_value && growth > 1.0,
              "Histogram: need 0 < min_value < max_value and growth > 1");
  const auto num_buckets = static_cast<int64_t>(
      std::ceil(std::log(max_value / min_value) * inv_log_growth_));
  buckets_.assign(static_cast<size_t>(num_buckets) + 1, 0);
}

int64_t Histogram::bucket_of(double value) const {
  // The !(…) form sends NaN to bucket 0 instead of through std::log.
  if (!(value > min_value_)) return 0;
  const double index = std::log(value / min_value_) * inv_log_growth_;
  const int64_t last = static_cast<int64_t>(buckets_.size()) - 1;
  // Saturate while still a double: casting an out-of-range double (a sample
  // far above the top bucket, or +inf) to int64_t is UB and indexed out of
  // the bucket array before this guard.
  if (index >= static_cast<double>(last)) return last;
  return static_cast<int64_t>(index);
}

double Histogram::bucket_upper(int64_t i) const {
  return min_value_ * std::pow(growth_, static_cast<double>(i + 1));
}

void Histogram::record(double value) {
  // Clamp non-finite and negative samples up front: NaN → 0, ±inf → the
  // finite extremes. Keeps sum/mean/min/max finite and the snapshot
  // invariants (min <= mean <= max) intact whatever a caller feeds in.
  if (std::isnan(value)) value = 0.0;
  value = std::clamp(value, 0.0, std::numeric_limits<double>::max());
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[static_cast<size_t>(bucket_of(value))];
  sum_ += value;
  if (count_ == 0 || value < min_seen_) min_seen_ = value;
  if (count_ == 0 || value > max_seen_) max_seen_ = value;
  ++count_;
}

double Histogram::quantile_locked(double q, int64_t count) const {
  const auto rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp the bucket's upper bound by the true extremes so tiny
      // histograms don't report values outside the observed range.
      return std::clamp(bucket_upper(static_cast<int64_t>(i)), min_seen_,
                        max_seen_);
    }
  }
  return max_seen_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.count = count_;
  if (count_ == 0) return s;  // all-zero, nothing bucket-derived
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  s.min = min_seen_;
  s.max = max_seen_;
  s.p50 = quantile_locked(0.50, count_);
  s.p95 = quantile_locked(0.95, count_);
  s.p99 = quantile_locked(0.99, count_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) {
      s.buckets.push_back(
          Bucket{bucket_upper(static_cast<int64_t>(i)), buckets_[i]});
    }
  }
  return s;
}

namespace {

// Bucketed quantile over a merged bucket list — the same rule as
// Histogram::quantile_locked: the upper bound of the bucket holding the
// ceil(q*count)-th sample, clamped into the observed [min, max].
double merged_quantile(const std::vector<Histogram::Bucket>& buckets, double q,
                       int64_t count, double min_seen, double max_seen) {
  const auto rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  int64_t seen = 0;
  for (const Histogram::Bucket& b : buckets) {
    seen += b.count;
    if (seen >= rank) return std::clamp(b.upper, min_seen, max_seen);
  }
  return max_seen;
}

}  // namespace

RegistrySnapshot merge_snapshots(const std::vector<RegistrySnapshot>& parts) {
  std::map<std::string, int64_t> counters;
  struct Acc {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::map<double, int64_t> buckets;  // upper bound → merged count
  };
  std::map<std::string, Acc> histograms;
  for (const RegistrySnapshot& part : parts) {
    for (const auto& [name, value] : part.counters) counters[name] += value;
    for (const auto& [name, s] : part.histograms) {
      Acc& acc = histograms[name];
      if (s.count > 0) {
        if (acc.count == 0 || s.min < acc.min) acc.min = s.min;
        if (acc.count == 0 || s.max > acc.max) acc.max = s.max;
      }
      acc.count += s.count;
      acc.sum += s.sum;
      for (const Histogram::Bucket& b : s.buckets) acc.buckets[b.upper] += b.count;
    }
  }
  RegistrySnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    out.counters.emplace_back(name, value);
  }
  out.histograms.reserve(histograms.size());
  for (const auto& [name, acc] : histograms) {
    Histogram::Snapshot s;
    s.count = acc.count;
    if (acc.count > 0) {
      s.sum = acc.sum;
      s.mean = acc.sum / static_cast<double>(acc.count);
      s.min = acc.min;
      s.max = acc.max;
      s.buckets.reserve(acc.buckets.size());
      for (const auto& [upper, count] : acc.buckets) {
        s.buckets.push_back(Histogram::Bucket{upper, count});
      }
      s.p50 = merged_quantile(s.buckets, 0.50, s.count, s.min, s.max);
      s.p95 = merged_quantile(s.buckets, 0.95, s.count, s.min, s.max);
      s.p99 = merged_quantile(s.buckets, 0.99, s.count, s.min, s.max);
    }
    out.histograms.emplace_back(name, std::move(s));
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

std::string MetricsRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << ": " << c->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out << name << ": count " << s.count << " mean " << s.mean << " p50 "
        << s.p50 << " p95 " << s.p95 << " p99 " << s.p99 << " max " << s.max
        << '\n';
  }
  return out.str();
}

}  // namespace itask::runtime
