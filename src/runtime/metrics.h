// Serving-runtime metrics: atomic counters and streaming latency histograms
// with quantile snapshots, collected in a named registry.
//
// Histograms are geometric-bucket streaming estimators: record() is O(1) and
// never stores individual samples, so a server can run indefinitely; p50/p95/
// p99 come from the bucket counts (quantile error is bounded by the bucket
// growth factor, ~12% with the default 1.25).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace itask::runtime {

/// Monotonic event counter, safe to increment from any thread.
class Counter {
 public:
  void increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Streaming histogram over positive values (microseconds by convention).
class Histogram {
 public:
  /// Buckets are geometric: [min_value * growth^i, min_value * growth^(i+1)).
  explicit Histogram(double min_value = 1.0, double max_value = 1e8,
                     double growth = 1.25);

  /// Records one sample. Values below min_value clamp into bucket 0; values
  /// above the top bucket saturate into the last bucket (never index out of
  /// range). Non-finite input is clamped too — NaN records as 0, ±inf as the
  /// extreme finite double — so one bad sample can't poison mean/min/max.
  void record(double value);

  struct Bucket {
    double upper = 0.0;  // exclusive upper bound of the bucket
    int64_t count = 0;
  };

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Non-empty buckets in ascending upper-bound order. Invariant (taken
    /// under one lock, asserted by the multi-producer consistency test):
    /// count == Σ buckets[i].count, and min <= mean <= max when count > 0.
    std::vector<Bucket> buckets;
  };

  /// Consistent point-in-time view (count/sum/mean/buckets exact and
  /// mutually consistent; quantiles bucketed). An empty histogram reports
  /// all-zero fields, never a bucket bound or NaN.
  Snapshot snapshot() const;

 private:
  int64_t bucket_of(double value) const;
  /// Upper bound of bucket i — the reported quantile value.
  double bucket_upper(int64_t i) const;
  double quantile_locked(double q, int64_t count) const;

  double min_value_;
  double inv_log_growth_;
  double growth_;
  mutable std::mutex mutex_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Point-in-time copy of a whole registry, in name order — the input to the
/// exposition formats (runtime/exposition.h). Counters and each histogram
/// are individually consistent; the registry is read under one lock so the
/// name set is a single point in time.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Merges per-shard registry snapshots into one fleet-level view: counters
/// with the same name sum; histograms with the same name merge bucket-wise
/// (counts and sums add, min/max combine, p50/p95/p99 recomputed from the
/// merged buckets exactly the way Histogram::snapshot computes them). All
/// inputs must come from identically configured histograms — bucket upper
/// bounds are matched exactly, which holds for the default geometry every
/// runtime registry uses. The result feeds the same exposition formats as a
/// single registry's snapshot (the fleet's merged Prometheus scrape).
RegistrySnapshot merge_snapshots(const std::vector<RegistrySnapshot>& parts);

/// Named metrics for one server instance. counter()/histogram() create on
/// first use and return stable references usable without further locking.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Formatted multi-line report (counters, then histogram quantiles).
  std::string report() const;

  /// Machine-readable copy of every metric (see RegistrySnapshot).
  RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace itask::runtime
