// Bounded MPMC queue with admission control and micro-batch draining — the
// spine of the inference runtime.
//
// Producers call try_push(), which REJECTS (returns false) when the queue is
// full instead of blocking: admission control pushes backpressure to the
// client rather than letting latency grow without bound. Consumers call
// pop_batch(), which blocks for the first item, then keeps gathering until
// either `max_items` are in hand or `max_wait` has elapsed since the batch
// opened — the dynamic micro-batching rule (close at size OR deadline,
// whichever first).
//
// Storage is a fixed ring buffer sized at construction (capacity slots, no
// per-push node allocation), and pop_batch has an overload draining into a
// caller-owned vector — together these keep the queue off the steady-state
// heap: a worker reuses one batch vector across its whole life.
//
// close() starts a graceful shutdown: pushes fail from then on, but pops
// continue to drain whatever was admitted; pop_batch returns empty only once
// the queue is closed AND empty, which is the consumer's signal to exit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace itask::runtime {

/// Why a push was (or was not) admitted — "full" is transient backpressure,
/// "closed" is terminal shutdown; callers surface the two differently.
enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity)
      : capacity_(capacity), slots_(checked_capacity(capacity)) {}

  /// Admission control: enqueues unless the queue is full or closed, and
  /// says which of the two refused the item.
  PushResult push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (size_ >= capacity_) return PushResult::kFull;
      slots_[static_cast<size_t>((head_ + size_) % capacity_)] =
          std::move(item);
      ++size_;
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// push() for callers that only need admitted-or-not.
  bool try_push(T item) { return push(std::move(item)) == PushResult::kOk; }

  /// All-or-nothing multi-push for scatter/gather group requests: either
  /// every item is admitted under one lock acquisition (so views of one
  /// group are contiguous and no interleaved producer can split them past
  /// capacity), or none is and `items` is left untouched. A partial group in
  /// flight with its siblings rejected would burn worker time on views whose
  /// gather can never complete — this rules that state out by construction.
  PushResult push_all(std::vector<T>& items) {
    ITASK_CHECK(!items.empty(), "BoundedQueue: push_all needs >= 1 item");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (size_ + static_cast<int64_t>(items.size()) > capacity_)
        return PushResult::kFull;
      for (T& item : items) {
        slots_[static_cast<size_t>((head_ + size_) % capacity_)] =
            std::move(item);
        ++size_;
      }
    }
    ready_.notify_all();
    return PushResult::kOk;
  }

  /// Drains one micro-batch: blocks until an item arrives (or the queue
  /// closes), then gathers up to `max_items`, waiting at most `max_wait`
  /// after the first item before closing the batch. Returns an empty vector
  /// only when the queue is closed and fully drained.
  std::vector<T> pop_batch(int64_t max_items,
                           std::chrono::microseconds max_wait) {
    std::vector<T> batch;
    pop_batch(max_items, max_wait, batch);
    return batch;
  }

  /// Same, draining into `batch` (cleared first). The runtime workers use
  /// this with a long-lived per-worker vector, so steady-state pops reuse
  /// its capacity instead of allocating a fresh vector per micro-batch.
  void pop_batch(int64_t max_items, std::chrono::microseconds max_wait,
                 std::vector<T>& batch) {
    ITASK_CHECK(max_items >= 1, "BoundedQueue: max_items must be >= 1");
    batch.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return;  // closed and drained
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (static_cast<int64_t>(batch.size()) < max_items) {
      if (size_ > 0) {
        T& slot = slots_[static_cast<size_t>(head_)];
        batch.push_back(std::move(slot));
        // Reset the popped slot immediately: a moved-from T is only "valid
        // but unspecified" and may keep hold of whatever resources the move
        // left behind (request image buffers, promise state), pinning up to
        // `capacity` of them while the queue idles. Releasing here makes
        // pop — not the next push that happens to land on this slot — the
        // moment a request's resources die.
        slot = T{};
        head_ = (head_ + 1) % capacity_;
        --size_;
        continue;
      }
      if (closed_) break;
      if (ready_.wait_until(lock, deadline,
                            [&] { return size_ > 0 || closed_; })) {
        continue;  // new item (or closed); loop decides
      }
      break;  // deadline passed with the batch still open
    }
  }

  /// Stops admission; consumers drain the remainder. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  int64_t capacity() const { return capacity_; }

 private:
  static size_t checked_capacity(int64_t capacity) {
    ITASK_CHECK(capacity >= 1, "BoundedQueue: capacity must be >= 1");
    return static_cast<size_t>(capacity);
  }

  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// Fixed ring of default-constructed slots; [head_, head_+size_) mod
  /// capacity_ are live. pop_batch resets a slot to T{} right after moving
  /// it out, so a popped slot never pins the moved-from shell's resources
  /// until a later push overwrites it (BoundedQueue.PopReleasesSlot…).
  std::vector<T> slots_;
  int64_t head_ = 0;
  int64_t size_ = 0;
  bool closed_ = false;
};

}  // namespace itask::runtime
