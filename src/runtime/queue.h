// Bounded MPMC queue with admission control and micro-batch draining — the
// spine of the inference runtime.
//
// Producers call try_push(), which REJECTS (returns false) when the queue is
// full instead of blocking: admission control pushes backpressure to the
// client rather than letting latency grow without bound. Consumers call
// pop_batch(), which blocks for the first item, then keeps gathering until
// either `max_items` are in hand or `max_wait` has elapsed since the batch
// opened — the dynamic micro-batching rule (close at size OR deadline,
// whichever first).
//
// close() starts a graceful shutdown: pushes fail from then on, but pops
// continue to drain whatever was admitted; pop_batch returns empty only once
// the queue is closed AND empty, which is the consumer's signal to exit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace itask::runtime {

/// Why a push was (or was not) admitted — "full" is transient backpressure,
/// "closed" is terminal shutdown; callers surface the two differently.
enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    ITASK_CHECK(capacity >= 1, "BoundedQueue: capacity must be >= 1");
  }

  /// Admission control: enqueues unless the queue is full or closed, and
  /// says which of the two refused the item.
  PushResult push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (static_cast<int64_t>(items_.size()) >= capacity_)
        return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// push() for callers that only need admitted-or-not.
  bool try_push(T item) { return push(std::move(item)) == PushResult::kOk; }

  /// Drains one micro-batch: blocks until an item arrives (or the queue
  /// closes), then gathers up to `max_items`, waiting at most `max_wait`
  /// after the first item before closing the batch. Returns an empty vector
  /// only when the queue is closed and fully drained.
  std::vector<T> pop_batch(int64_t max_items,
                           std::chrono::microseconds max_wait) {
    ITASK_CHECK(max_items >= 1, "BoundedQueue: max_items must be >= 1");
    std::vector<T> batch;
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return batch;  // closed and drained
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (static_cast<int64_t>(batch.size()) < max_items) {
      if (!items_.empty()) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
        continue;
      }
      if (closed_) break;
      if (ready_.wait_until(lock, deadline, [&] {
            return !items_.empty() || closed_;
          })) {
        continue;  // new item (or closed); loop decides
      }
      break;  // deadline passed with the batch still open
    }
    return batch;
  }

  /// Stops admission; consumers drain the remainder. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(items_.size());
  }

  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace itask::runtime
