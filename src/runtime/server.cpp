#include "runtime/server.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "tensor/arena.h"
#include "tensor/format.h"
#include "tensor/kernel_pool.h"

namespace itask::runtime {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kTenantQuota: return "tenant_quota";
  }
  return "unknown";
}

InferenceServer::InferenceServer(
    std::shared_ptr<const core::DeploymentSnapshot> snapshot,
    RuntimeOptions options)
    : options_(options),
      clock_(options_.clock_us ? options_.clock_us : ClockFn(steady_clock_us)),
      queue_(options.queue_capacity),
      stages_(metrics_),
      // Hot-path counters resolved once here instead of a map lookup under
      // the registry lock per request (metric names unchanged — exposition
      // output is identical, and every admission counter now exists from
      // the first scrape).
      requests_submitted_(metrics_.counter("requests_submitted")),
      requests_invalid_(metrics_.counter("requests_invalid")),
      rejected_queue_full_(metrics_.counter("rejected_queue_full")),
      rejected_shutdown_(metrics_.counter("rejected_shutdown")),
      snapshots_published_(metrics_.counter("snapshots_published")),
      tasks_onboarded_(metrics_.counter("tasks_onboarded")),
      snapshot_version_skew_(metrics_.counter("snapshot_version_skew")),
      groups_submitted_(metrics_.counter("groups_submitted")),
      groups_completed_(metrics_.counter("groups_completed")),
      groups_failed_(metrics_.counter("groups_failed")),
      group_fuse_h_(metrics_.histogram("group_fuse_us")),
      snapshot_(std::move(snapshot)) {
  ITASK_CHECK(snapshot_ != nullptr,
              "InferenceServer: snapshot must not be null");
  ITASK_CHECK(options_.workers >= 1, "InferenceServer: workers must be >= 1");
  ITASK_CHECK(options_.max_batch >= 1,
              "InferenceServer: max_batch must be >= 1");
  ITASK_CHECK(options_.max_wait_us >= 0,
              "InferenceServer: max_wait_us must be >= 0");
  ITASK_CHECK(options_.deadline_us >= 0,
              "InferenceServer: deadline_us must be >= 0");
  ITASK_CHECK(options_.kernel_threads >= 0,
              "InferenceServer: kernel_threads must be >= 0");
  // Opt-in multi-core kernels: size the process-wide pool the snapshot
  // inference GEMMs split slab loops across. Left untouched at the default
  // (0) so plain servers stay single-core per worker.
  if (options_.kernel_threads > 0)
    gemm::KernelPool::instance().configure(options_.kernel_threads);
  // The initial snapshot counts as one publish; its tasks were never
  // *onboarded* live. (The init list above already created every admission
  // counter, so a scrape before the first install/request sees them all.)
  snapshots_published_.increment();
  // Size the per-worker arenas before any worker exists: the snapshot
  // measures its own peak workspace (stacked batch + every inference
  // intermediate) for the largest micro-batch this server forms.
  if (options_.use_arena) {
    workspace_bytes_.store(snapshot_->plan_workspace(options_.max_batch),
                           std::memory_order_relaxed);
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int64_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::install_snapshot(
    std::shared_ptr<const core::DeploymentSnapshot> snapshot) {
  ITASK_CHECK(snapshot != nullptr,
              "install_snapshot: snapshot must not be null");
  // Re-plan the per-worker workspace for the incoming snapshot before taking
  // the lock (the probe runs real inference). The published bound only ever
  // grows: in-flight batches may still serve the old snapshot, and workers
  // grow their arenas lazily at the next micro-batch boundary.
  if (options_.use_arena) {
    const int64_t bytes = snapshot->plan_workspace(options_.max_batch);
    int64_t cur = workspace_bytes_.load(std::memory_order_relaxed);
    while (bytes > cur && !workspace_bytes_.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }
  int64_t onboarded = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    ITASK_CHECK(snapshot->version() > snapshot_->version(),
                "install_snapshot: version " + fmt::i64(snapshot->version()) +
                    " does not increase over installed v" +
                    fmt::i64(snapshot_->version()));
    ITASK_CHECK(
        snapshot->expected_input_shape() == snapshot_->expected_input_shape(),
        "install_snapshot: expected input shape changed — the admission "
        "contract must stay stable across snapshots");
    onboarded = std::max<int64_t>(
        0, snapshot->task_count() - snapshot_->task_count());
    snapshot_ = std::move(snapshot);
    // The old snapshot_ value drops here; workers mid-batch still hold their
    // acquired reference, so it retires only when the last of them finishes.
  }
  snapshots_published_.increment();
  if (onboarded > 0) {
    tasks_onboarded_.increment(onboarded);
  }
}

std::shared_ptr<const core::DeploymentSnapshot>
InferenceServer::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

SubmitResult InferenceServer::try_submit(Tensor image, kg::TaskId task,
                                         core::ConfigKind config,
                                         std::optional<int64_t> deadline_us) {
  // Admission-time validation against the *current* snapshot: malformed
  // requests fail fast at the edge with a clear message, so a worker never
  // sees an image it cannot stack or a task no snapshot it acquires could
  // serve (task tables only grow across versions).
  const std::shared_ptr<const core::DeploymentSnapshot> snapshot =
      current_snapshot();
  const Shape& expected = snapshot->expected_input_shape();
  if (image.shape() != expected) {
    requests_invalid_.increment();
    ITASK_CHECK(false, "try_submit: image shape " +
                           shape_to_string(image.shape()) +
                           " does not match the deployment's expected "
                           "[C, H, W] shape " +
                           shape_to_string(expected));
  }
  if (!snapshot->servable(task, config)) {
    requests_invalid_.increment();
    ITASK_CHECK(false,
                std::string("try_submit: configuration ") +
                    core::config_kind_name(config) + " cannot serve " +
                    kg::task_id_to_string(task) + " from snapshot v" +
                    fmt::i64(snapshot->version()) +
                    " (publish and install a snapshot containing it first)");
  }
  const int64_t effective_deadline_us =
      deadline_us.value_or(options_.deadline_us);
  ITASK_CHECK(effective_deadline_us >= 0,
              "try_submit: deadline_us must be >= 0");

  Pending pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.image = std::move(image);
  pending.task = task;
  pending.config = config;
  pending.admitted_us = clock_();
  pending.admitted_version = snapshot->version();
  if (effective_deadline_us > 0) {
    pending.deadline_us = pending.admitted_us + effective_deadline_us;
  }
  SubmitResult result;
  result.future = pending.promise.get_future();
  switch (queue_.push(std::move(pending))) {
    case PushResult::kFull:
      rejected_queue_full_.increment();
      result.future.reset();
      result.reject = RejectReason::kQueueFull;
      return result;
    case PushResult::kClosed:
      rejected_shutdown_.increment();
      result.future.reset();
      result.reject = RejectReason::kShuttingDown;
      return result;
    case PushResult::kOk:
      break;
  }
  requests_submitted_.increment();
  return result;
}

GroupSubmitResult InferenceServer::try_submit_group(
    std::vector<Tensor> views, kg::TaskId task, core::ConfigKind config,
    std::optional<int64_t> deadline_us) {
  const int64_t k = static_cast<int64_t>(views.size());
  ITASK_CHECK(k >= 1, "try_submit_group: need at least one view");
  // A group larger than the queue could never be admitted whole; that is a
  // configuration error, not transient backpressure.
  ITASK_CHECK(k <= options_.queue_capacity,
              "try_submit_group: " + fmt::i64(k) +
                  " views can never fit the admission queue (capacity " +
                  fmt::i64(options_.queue_capacity) + ")");
  // Per-view admission validation, against ONE snapshot acquisition — the
  // same contract as try_submit, checked before anything is queued so a
  // malformed view rejects the whole logical request at the edge.
  const std::shared_ptr<const core::DeploymentSnapshot> snapshot =
      current_snapshot();
  const Shape& expected = snapshot->expected_input_shape();
  for (int64_t v = 0; v < k; ++v) {
    if (views[static_cast<size_t>(v)].shape() != expected) {
      requests_invalid_.increment();
      ITASK_CHECK(
          false,
          "try_submit_group: view " + fmt::i64(v) + " shape " +
              shape_to_string(views[static_cast<size_t>(v)].shape()) +
              " does not match the deployment's expected [C, H, W] shape " +
              shape_to_string(expected));
    }
  }
  if (!snapshot->servable(task, config)) {
    requests_invalid_.increment();
    ITASK_CHECK(false,
                std::string("try_submit_group: configuration ") +
                    core::config_kind_name(config) + " cannot serve " +
                    kg::task_id_to_string(task) + " from snapshot v" +
                    fmt::i64(snapshot->version()) +
                    " (publish and install a snapshot containing it first)");
  }
  const int64_t effective_deadline_us =
      deadline_us.value_or(options_.deadline_us);
  ITASK_CHECK(effective_deadline_us >= 0,
              "try_submit_group: deadline_us must be >= 0");

  auto gather = std::make_shared<GroupGather>();
  gather->group_id = next_group_id_.fetch_add(1, std::memory_order_relaxed);
  gather->admitted_us = clock_();
  gather->fusion = options_.fusion;
  gather->views.resize(static_cast<size_t>(k));
  gather->remaining = k;

  // Each view becomes an ordinary Pending riding the ordinary hot path; the
  // gather pointer is the only thing marking it as a group member.
  std::vector<Pending> members;
  members.reserve(static_cast<size_t>(k));
  for (int64_t v = 0; v < k; ++v) {
    Pending pending;
    pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    pending.image = std::move(views[static_cast<size_t>(v)]);
    pending.task = task;
    pending.config = config;
    pending.admitted_us = gather->admitted_us;
    pending.admitted_version = snapshot->version();
    if (effective_deadline_us > 0) {
      pending.deadline_us = gather->admitted_us + effective_deadline_us;
    }
    pending.group = gather;
    pending.view_index = v;
    members.push_back(std::move(pending));
  }
  GroupSubmitResult result;
  result.future = gather->promise.get_future();
  // All-or-nothing: either every view is queued contiguously under one lock
  // or none is — a partially admitted group (siblings rejected, gather never
  // completable) cannot exist.
  switch (queue_.push_all(members)) {
    case PushResult::kFull:
      rejected_queue_full_.increment();
      result.future.reset();
      result.reject = RejectReason::kQueueFull;
      return result;
    case PushResult::kClosed:
      rejected_shutdown_.increment();
      result.future.reset();
      result.reject = RejectReason::kShuttingDown;
      return result;
    case PushResult::kOk:
      break;
  }
  groups_submitted_.increment();
  requests_submitted_.increment(k);
  return result;
}

void InferenceServer::deliver(Pending& pending, InferenceResult&& result) {
  if (!pending.group) {
    pending.promise.set_value(std::move(result));
    return;
  }
  const std::shared_ptr<GroupGather> gather = pending.group;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(gather->mu);
    gather->views[static_cast<size_t>(pending.view_index)] = std::move(result);
    last = --gather->remaining == 0;
  }
  if (last) finish_group(gather);
}

void InferenceServer::deliver_error(Pending& pending,
                                    const std::exception_ptr& error,
                                    const std::string& what) {
  if (!pending.group) {
    pending.promise.set_exception(error);
    return;
  }
  const std::shared_ptr<GroupGather> gather = pending.group;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(gather->mu);
    ++gather->failed_views;
    // The *lowest* failed view index wins the headline, not whichever
    // failure arrived first — keeps the reported fault deterministic under
    // any worker interleaving.
    if (gather->first_failed_view < 0 ||
        pending.view_index < gather->first_failed_view) {
      gather->first_failed_view = pending.view_index;
      gather->first_error = what;
    }
    last = --gather->remaining == 0;
  }
  if (last) finish_group(gather);
}

void InferenceServer::finish_group(
    const std::shared_ptr<GroupGather>& gather) {
  // Sole owner of the finish: remaining hit 0 under gather->mu, so every
  // sibling's deposit happened-before this read and no lock is needed.
  const int64_t k = static_cast<int64_t>(gather->views.size());
  if (gather->failed_views > 0) {
    groups_failed_.increment();
    gather->promise.set_exception(std::make_exception_ptr(GroupViewFault(
        "group " + fmt::i64(gather->group_id) + ": " +
            fmt::i64(gather->failed_views) + " of " + fmt::i64(k) +
            " views failed (first: view " +
            fmt::i64(gather->first_failed_view) + ": " + gather->first_error +
            ")",
        gather->first_failed_view, gather->failed_views)));
    return;
  }
  // Fusion runs here, on the worker that delivered the last view — after
  // that worker's arena epilogue and with no ArenaScope bound, so the fused
  // Detections are heap-backed and the allocation-free hot-path contract is
  // untouched by group traffic.
  const int64_t fuse_start_us = clock_();
  std::vector<std::vector<detect::Detection>> per_view;
  per_view.reserve(static_cast<size_t>(k));
  for (const InferenceResult& r : gather->views) {
    per_view.push_back(r.detections);
  }
  GroupInferenceResult out;
  out.group_id = gather->group_id;
  out.fused = detect::fuse_views(per_view, gather->fusion);
  out.view_count = k;
  const int64_t fuse_end_us = clock_();
  out.fuse_us = span_us(fuse_start_us, fuse_end_us);
  out.total_us = span_us(gather->admitted_us, fuse_end_us);
  out.views = std::move(gather->views);
  groups_completed_.increment();
  group_fuse_h_.record(out.fuse_us);
  gather->promise.set_value(std::move(out));
}

void InferenceServer::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();  // admission stops; workers drain what was accepted
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void InferenceServer::worker_loop(int64_t worker_index) {
  Counter& completed = metrics_.counter("requests_completed");
  Counter& failed = metrics_.counter("requests_failed");
  Counter& expired = metrics_.counter("requests_expired");
  Counter& batches = metrics_.counter("batches");
  Counter& hot_allocs = metrics_.counter("hot_path_allocs");
  Counter& arena_overflow = metrics_.counter("arena_overflow_allocs");
  Histogram& queue_h = metrics_.histogram("queue_us");
  Histogram& infer_h = metrics_.histogram("infer_us");
  Histogram& total_h = metrics_.histogram("total_us");
  Histogram& batch_h = metrics_.histogram("batch_size");
  Histogram& arena_used_h = metrics_.histogram("arena_used_bytes");

  // This worker's whole steady state lives in storage hoisted out of the
  // loop: the micro-batch vector and done/group scratch reuse their heap
  // capacity forever, and the arena serves the per-group hot region.
  Arena arena(options_.use_arena
                  ? workspace_bytes_.load(std::memory_order_relaxed)
                  : 0);
  int64_t overflow_seen = 0;
  std::vector<Pending> batch;
  std::vector<char> done;
  std::vector<size_t> group;

  while (true) {
    queue_.pop_batch(options_.max_batch,
                     std::chrono::microseconds(options_.max_wait_us), batch);
    if (batch.empty()) return;  // closed and drained
    // One snapshot acquisition per micro-batch (RCU read-side critical
    // section): every group in this batch serves from the same immutable
    // version, however many installs happen while it runs.
    const std::shared_ptr<const core::DeploymentSnapshot> snapshot =
        current_snapshot();
    // A newly installed snapshot may have published a larger workspace
    // bound; the arena is empty between groups, so growing here (outside
    // the measured hot region) is legal and rare.
    if (options_.use_arena) {
      const int64_t want = workspace_bytes_.load(std::memory_order_relaxed);
      if (want > arena.capacity()) arena.grow(want);
    }
    const int64_t picked_us = clock_();
    batches.increment();
    batch_h.record(static_cast<double>(batch.size()));

    done.assign(batch.size(), 0);
    // Deadline shedding at batch-formation time: a request that already
    // missed its deadline gets DeadlineExceeded instead of inference time,
    // so under overload latency degrades boundedly rather than the queue
    // serving ever-staler work.
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = batch[i];
      if (p.deadline_us == 0 || picked_us < p.deadline_us) continue;
      expired.increment();
      // The wait is reported as what the queue-wait stage records: the
      // non-negative integer-µs span (no double→int truncation, no
      // negative value if clock readings ever raced).
      const int64_t waited_us = std::max<int64_t>(0, picked_us - p.admitted_us);
      const std::string what = "request " + std::to_string(p.id) +
                               " expired after " + fmt::i64(waited_us) +
                               " us in queue";
      deliver_error(p,
                    std::make_exception_ptr(DeadlineExceeded(what)), what);
      // Expired requests never reach inference: account their queue-wait
      // stage (the only real span), not a garbage end-to-end latency.
      StageTimeline t;
      t.admitted_us = p.admitted_us;
      t.picked_us = picked_us;
      t.snapshot_version = snapshot->version();
      stages_.expired(t);
      done[i] = 1;
    }

    // Admitted-vs-served version skew: try_submit validated each request
    // against the snapshot current at admission, but this batch serves from
    // whatever was installed by pick-up time. Safe by contract (task tables
    // only grow, weights for existing tasks are identical), but counted so
    // staged rollouts are observable rather than silent.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      if (batch[i].admitted_version != snapshot->version()) {
        snapshot_version_skew_.increment();
      }
    }

    // A micro-batch may mix configurations and tasks; each (config, task)
    // group becomes one stacked [B, C, H, W] forward. Submission order is
    // preserved within a group, so results stay deterministic.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      group.clear();
      for (size_t j = i; j < batch.size(); ++j) {
        if (!done[j] && batch[j].config == batch[i].config &&
            batch[j].task == batch[i].task) {
          group.push_back(j);
        }
      }

      // Fault isolation: a throw anywhere in this group's inference (stack,
      // fault_injector, infer_raw, decode_batch) fails exactly this group's
      // futures; the worker keeps draining, other groups and later batches
      // are untouched. Admission validated against an earlier snapshot and
      // tables only grow, so the not-servable throw is unreachable in
      // practice — but if it ever fires it lands here, on this group only.
      std::vector<std::vector<detect::Detection>> detections;
      int64_t infer_start_us = 0;
      int64_t infer_end_us = 0;
      bool group_failed = false;
      try {
        if (options_.fault_injector) {
          FaultSite site;
          site.worker = worker_index;
          site.first_request_id = batch[group.front()].id;
          site.group_size = static_cast<int64_t>(group.size());
          site.config = batch[i].config;
          site.task = batch[i].task;
          site.snapshot_version = snapshot->version();
          options_.fault_injector(site);
        }
        // The arena-scoped hot region: stacking plus the full model forward.
        // The raw outputs stay arena-resident; the scope must end before
        // decode so the Detections escaping into results are heap-backed,
        // and the arena resets only after decode finished reading them.
        vit::VitOutput raw;
        const int64_t allocs_before = allocdebug::thread_alloc_count();
        {
          std::optional<ArenaScope> scope;
          if (options_.use_arena) scope.emplace(arena);
          const Shape& img = batch[i].image.shape();
          if (group.size() == 1) {
            // Singleton group: serve a borrowed [1, C, H, W] view over the
            // request's own tensor — no stacking copy at all. infer_raw only
            // reads its input, honouring the borrow contract.
            const Tensor view = Tensor::borrow(
                {1, img[0], img[1], img[2]}, batch[group[0]].image.data());
            infer_start_us = clock_();
            raw = snapshot->infer_raw(view, batch[i].task, batch[i].config);
          } else {
            Tensor stacked(
                {static_cast<int64_t>(group.size()), img[0], img[1], img[2]});
            for (size_t g = 0; g < group.size(); ++g) {
              stacked.set_index(static_cast<int64_t>(g),
                                batch[group[g]].image);
            }
            infer_start_us = clock_();
            raw = snapshot->infer_raw(stacked, batch[i].task, batch[i].config);
          }
        }
        // Nonzero only in binaries that interpose operator new onto
        // allocdebug — the zero-steady-state-allocation contract's meter.
        const int64_t allocs_delta =
            allocdebug::thread_alloc_count() - allocs_before;
        if (allocs_delta > 0) hot_allocs.increment(allocs_delta);
        detections = snapshot->decode_batch(raw, batch[i].task,
                                            batch[i].config);
        infer_end_us = clock_();
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        std::string what = "unknown error";
        try {
          std::rethrow_exception(error);
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        for (const size_t member : group) {
          Pending& p = batch[member];
          deliver_error(p, error, what);
          failed.increment();
          // The fault hit somewhere in batch formation or inference, so the
          // queue-wait span is the only one known to be real.
          StageTimeline t;
          t.admitted_us = p.admitted_us;
          t.picked_us = picked_us;
          t.snapshot_version = snapshot->version();
          stages_.failed(t);
          done[member] = 1;
        }
        group_failed = true;
      }
      // Per-group arena epilogue, on success and failure alike: record the
      // footprint, surface any undersized-arena overflows, and reset —
      // `raw` is gone, so nothing references arena memory past this point.
      if (options_.use_arena) {
        arena_used_h.record(static_cast<double>(arena.used()));
        const int64_t overflows = arena.overflow_allocs();
        if (overflows > overflow_seen) {
          arena_overflow.increment(overflows - overflow_seen);
          overflow_seen = overflows;
        }
        arena.reset();
      }
      if (group_failed) continue;

      for (size_t g = 0; g < group.size(); ++g) {
        Pending& p = batch[group[g]];
        StageTimeline t;
        t.admitted_us = p.admitted_us;
        t.picked_us = picked_us;
        t.infer_start_us = infer_start_us;
        t.infer_end_us = infer_end_us;
        t.snapshot_version = snapshot->version();
        InferenceResult result;
        result.request_id = p.id;
        result.detections = std::move(detections[g]);
        result.batch_size = static_cast<int64_t>(batch.size());
        result.worker = worker_index;
        result.snapshot_version = snapshot->version();
        result.queue_us = span_us(t.admitted_us, t.picked_us);
        result.batch_formation_us = span_us(t.picked_us, t.infer_start_us);
        result.infer_us = span_us(t.infer_start_us, t.infer_end_us);
        result.total_us = span_us(t.admitted_us, t.infer_end_us);
        result.timeline = t;
        queue_h.record(result.queue_us);
        infer_h.record(result.infer_us);
        total_h.record(result.total_us);
        stages_.completed(t);
        completed.increment();
        // Group views gather here instead of resolving their own future; the
        // last view's deliver runs fusion — after the arena epilogue above.
        deliver(p, std::move(result));
        done[group[g]] = 1;
      }
    }
  }
}

}  // namespace itask::runtime
