#include "runtime/server.h"

#include <chrono>
#include <utility>

namespace itask::runtime {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(const core::Framework& framework,
                                 RuntimeOptions options)
    : framework_(framework),
      options_(options),
      queue_(options.queue_capacity) {
  ITASK_CHECK(options_.workers >= 1, "InferenceServer: workers must be >= 1");
  ITASK_CHECK(options_.max_batch >= 1,
              "InferenceServer: max_batch must be >= 1");
  ITASK_CHECK(options_.max_wait_us >= 0,
              "InferenceServer: max_wait_us must be >= 0");
  ITASK_CHECK(options_.deadline_us >= 0,
              "InferenceServer: deadline_us must be >= 0");
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int64_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::optional<std::future<InferenceResult>> InferenceServer::try_submit(
    Tensor image, const core::TaskHandle& task, core::ConfigKind config,
    std::optional<int64_t> deadline_us) {
  // Admission-time validation: malformed requests fail fast at the edge with
  // a clear message, so a worker never sees an image it cannot stack or a
  // configuration it cannot serve (which would otherwise throw mid-loop).
  const Shape expected = framework_.expected_input_shape();
  if (image.shape() != expected) {
    metrics_.counter("requests_invalid").increment();
    ITASK_CHECK(false, "try_submit: image shape " +
                           shape_to_string(image.shape()) +
                           " does not match the deployment's expected "
                           "[C, H, W] shape " +
                           shape_to_string(expected));
  }
  if (!framework_.is_prepared(task, config)) {
    metrics_.counter("requests_invalid").increment();
    ITASK_CHECK(false,
                std::string("try_submit: configuration ") +
                    core::config_kind_name(config) +
                    " is not prepared for task slot " +
                    std::to_string(task.slot) +
                    " (run prepare_task_specific/prepare_quantized first)");
  }
  const int64_t effective_deadline_us =
      deadline_us.value_or(options_.deadline_us);
  ITASK_CHECK(effective_deadline_us >= 0,
              "try_submit: deadline_us must be >= 0");

  Pending pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.image = std::move(image);
  pending.task = &task;
  pending.config = config;
  pending.admitted = std::chrono::steady_clock::now();
  if (effective_deadline_us > 0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.admitted + std::chrono::microseconds(effective_deadline_us);
  }
  std::future<InferenceResult> future = pending.promise.get_future();
  switch (queue_.push(std::move(pending))) {
    case PushResult::kFull:
      metrics_.counter("rejected_queue_full").increment();
      return std::nullopt;
    case PushResult::kClosed:
      metrics_.counter("rejected_shutdown").increment();
      return std::nullopt;
    case PushResult::kOk:
      break;
  }
  metrics_.counter("requests_submitted").increment();
  return future;
}

void InferenceServer::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();  // admission stops; workers drain what was accepted
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void InferenceServer::worker_loop(int64_t worker_index) {
  Counter& completed = metrics_.counter("requests_completed");
  Counter& failed = metrics_.counter("requests_failed");
  Counter& expired = metrics_.counter("requests_expired");
  Counter& batches = metrics_.counter("batches");
  Histogram& queue_h = metrics_.histogram("queue_us");
  Histogram& infer_h = metrics_.histogram("infer_us");
  Histogram& total_h = metrics_.histogram("total_us");
  Histogram& batch_h = metrics_.histogram("batch_size");

  while (true) {
    std::vector<Pending> batch = queue_.pop_batch(
        options_.max_batch, std::chrono::microseconds(options_.max_wait_us));
    if (batch.empty()) return;  // closed and drained
    const auto picked = std::chrono::steady_clock::now();
    batches.increment();
    batch_h.record(static_cast<double>(batch.size()));

    std::vector<char> done(batch.size(), 0);
    // Deadline shedding at batch-formation time: a request that already
    // missed its deadline gets DeadlineExceeded instead of inference time,
    // so under overload latency degrades boundedly rather than the queue
    // serving ever-staler work.
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = batch[i];
      if (!p.has_deadline || picked < p.deadline) continue;
      expired.increment();
      p.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "request " + std::to_string(p.id) + " expired after " +
          std::to_string(static_cast<int64_t>(elapsed_us(p.admitted, picked))) +
          " us in queue")));
      done[i] = 1;
    }

    // A micro-batch may mix configurations and tasks; each (config, task)
    // group becomes one stacked [B, C, H, W] forward. Submission order is
    // preserved within a group, so results stay deterministic.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      std::vector<size_t> group;
      for (size_t j = i; j < batch.size(); ++j) {
        if (!done[j] && batch[j].config == batch[i].config &&
            batch[j].task->slot == batch[i].task->slot) {
          group.push_back(j);
        }
      }

      // Fault isolation: a throw anywhere in this group's inference (stack,
      // fault_injector, infer_batch) fails exactly this group's futures; the
      // worker keeps draining, other groups and later batches are untouched.
      std::vector<std::vector<detect::Detection>> detections;
      std::chrono::steady_clock::time_point infer_start, infer_end;
      try {
        if (options_.fault_injector) {
          FaultSite site;
          site.worker = worker_index;
          site.first_request_id = batch[group.front()].id;
          site.group_size = static_cast<int64_t>(group.size());
          site.config = batch[i].config;
          site.task_slot = batch[i].task->slot;
          options_.fault_injector(site);
        }
        const Shape& img = batch[i].image.shape();
        Tensor stacked(
            {static_cast<int64_t>(group.size()), img[0], img[1], img[2]});
        for (size_t g = 0; g < group.size(); ++g) {
          stacked.set_index(static_cast<int64_t>(g), batch[group[g]].image);
        }
        infer_start = std::chrono::steady_clock::now();
        detections =
            framework_.infer_batch(stacked, *batch[i].task, batch[i].config);
        infer_end = std::chrono::steady_clock::now();
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        for (const size_t member : group) {
          batch[member].promise.set_exception(error);
          failed.increment();
          done[member] = 1;
        }
        continue;
      }
      const double group_infer_us = elapsed_us(infer_start, infer_end);

      for (size_t g = 0; g < group.size(); ++g) {
        Pending& p = batch[group[g]];
        InferenceResult result;
        result.request_id = p.id;
        result.detections = std::move(detections[g]);
        result.batch_size = static_cast<int64_t>(batch.size());
        result.worker = worker_index;
        result.queue_us = elapsed_us(p.admitted, picked);
        result.infer_us = group_infer_us;
        result.total_us = elapsed_us(p.admitted, infer_end);
        queue_h.record(result.queue_us);
        infer_h.record(group_infer_us);
        total_h.record(result.total_us);
        completed.increment();
        p.promise.set_value(std::move(result));
        done[group[g]] = 1;
      }
    }
  }
}

}  // namespace itask::runtime
