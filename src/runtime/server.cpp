#include "runtime/server.h"

#include <chrono>
#include <utility>

namespace itask::runtime {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(const core::Framework& framework,
                                 RuntimeOptions options)
    : framework_(framework),
      options_(options),
      queue_(options.queue_capacity) {
  ITASK_CHECK(options_.workers >= 1, "InferenceServer: workers must be >= 1");
  ITASK_CHECK(options_.max_batch >= 1,
              "InferenceServer: max_batch must be >= 1");
  ITASK_CHECK(options_.max_wait_us >= 0,
              "InferenceServer: max_wait_us must be >= 0");
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int64_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::optional<std::future<InferenceResult>> InferenceServer::try_submit(
    Tensor image, const core::TaskHandle& task, core::ConfigKind config) {
  ITASK_CHECK(image.ndim() == 3, "try_submit: image must be [C, H, W]");
  Pending pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.image = std::move(image);
  pending.task = &task;
  pending.config = config;
  pending.admitted = std::chrono::steady_clock::now();
  std::future<InferenceResult> future = pending.promise.get_future();
  if (!queue_.try_push(std::move(pending))) {
    metrics_.counter("requests_rejected").increment();
    return std::nullopt;
  }
  metrics_.counter("requests_submitted").increment();
  return future;
}

void InferenceServer::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();  // admission stops; workers drain what was accepted
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void InferenceServer::worker_loop(int64_t worker_index) {
  Counter& completed = metrics_.counter("requests_completed");
  Counter& batches = metrics_.counter("batches");
  Histogram& queue_h = metrics_.histogram("queue_us");
  Histogram& infer_h = metrics_.histogram("infer_us");
  Histogram& total_h = metrics_.histogram("total_us");
  Histogram& batch_h = metrics_.histogram("batch_size");

  while (true) {
    std::vector<Pending> batch = queue_.pop_batch(
        options_.max_batch, std::chrono::microseconds(options_.max_wait_us));
    if (batch.empty()) return;  // closed and drained
    const auto picked = std::chrono::steady_clock::now();
    batches.increment();
    batch_h.record(static_cast<double>(batch.size()));

    // A micro-batch may mix configurations and tasks; each (config, task)
    // group becomes one stacked [B, C, H, W] forward. Submission order is
    // preserved within a group, so results stay deterministic.
    std::vector<char> done(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      std::vector<size_t> group;
      for (size_t j = i; j < batch.size(); ++j) {
        if (!done[j] && batch[j].config == batch[i].config &&
            batch[j].task->slot == batch[i].task->slot) {
          group.push_back(j);
        }
      }

      const Shape& img = batch[i].image.shape();
      Tensor stacked(
          {static_cast<int64_t>(group.size()), img[0], img[1], img[2]});
      for (size_t g = 0; g < group.size(); ++g) {
        stacked.set_index(static_cast<int64_t>(g), batch[group[g]].image);
      }

      const auto infer_start = std::chrono::steady_clock::now();
      std::vector<std::vector<detect::Detection>> detections =
          framework_.infer_batch(stacked, *batch[i].task, batch[i].config);
      const auto infer_end = std::chrono::steady_clock::now();
      const double group_infer_us = elapsed_us(infer_start, infer_end);

      for (size_t g = 0; g < group.size(); ++g) {
        Pending& p = batch[group[g]];
        InferenceResult result;
        result.request_id = p.id;
        result.detections = std::move(detections[g]);
        result.batch_size = static_cast<int64_t>(batch.size());
        result.worker = worker_index;
        result.queue_us = elapsed_us(p.admitted, picked);
        result.infer_us = group_infer_us;
        result.total_us = elapsed_us(p.admitted, infer_end);
        queue_h.record(result.queue_us);
        infer_h.record(group_infer_us);
        total_h.record(result.total_us);
        completed.increment();
        p.promise.set_value(std::move(result));
        done[group[g]] = 1;
      }
    }
  }
}

}  // namespace itask::runtime
