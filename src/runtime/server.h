// The multi-threaded batched inference runtime (DESIGN.md §2 `runtime`,
// bench F6): a worker pool serving the paper's deployed dual-configuration
// models under concurrent load.
//
//   client threads ──try_submit──▶ BoundedQueue ──pop_batch──▶ workers
//        ▲ (SubmitResult carries        (micro-batches close at     │
//        │  the reject reason)           max_batch or max_wait)     │
//        └────────── std::future<InferenceResult> ◀── fulfil ───────┘
//
// The server holds an immutable core::DeploymentSnapshot behind an
// atomically swapped shared_ptr. Each worker acquires the pointer ONCE per
// micro-batch and runs the whole batch against that snapshot (RCU-style:
// an old snapshot retires when the last in-flight batch releases its
// reference), so install_snapshot() never blocks serving and the Framework
// may keep defining/preparing/publishing concurrently — a task becomes
// servable the instant a snapshot containing it is installed, with zero
// requests failed or shed attributable to the swap.
//
// Workers group each micro-batch by (configuration, task id), stack the
// images, and run the snapshot's thread-safe const inference entry point
// (`DeploymentSnapshot::infer_raw` + `decode_batch`), so both deployable
// configurations — the FP32 task-specific student and the INT8 multi-task
// student — serve real requests concurrently from one published deployment.
//
// Steady-state serving is allocation-free (RuntimeOptions::use_arena): each
// worker owns a bump arena (tensor/arena.h) sized from the snapshot's own
// measurement (DeploymentSnapshot::plan_workspace) and binds it around the
// hot region — a singleton group serves through a borrowed view of the
// request's tensor, larger groups stack into an arena-backed tensor, and
// every inference intermediate lands in the arena. The scope ends before
// decode (Detections escape into results, so they must stay heap-backed)
// and the arena resets once per (config, task) group. test_runtime asserts
// both halves of the contract: zero heap allocations in the scoped region
// after warmup, and detections element-wise identical to the heap path.
//
// Determinism contract: inference is cache-free and batch-composition-
// invariant, so every request's detections are element-wise identical to a
// serial `Framework::detect_batch` over the same weights, whatever the
// scheduling or which snapshot version served it — the property test_runtime
// proves for snapshots before and after each publish.
//
// Fault tolerance contract: one bad request never takes the server down.
// Malformed requests (wrong image shape, (task, config) not servable from
// the current snapshot) throw at admission; an inference fault inside a
// worker is delivered on exactly the affected group's futures while the
// worker keeps draining; requests whose deadline passed before a worker
// picked them are shed with DeadlineExceeded. Every admitted request's
// future is always fulfilled — with a value or an exception, never
// abandoned.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/itask.h"
#include "core/snapshot.h"
#include "detect/fusion.h"
#include "runtime/clock.h"
#include "runtime/metrics.h"
#include "runtime/queue.h"
#include "runtime/trace.h"

namespace itask::runtime {

/// Delivered on a request's future when its deadline passed before any
/// worker picked it into a micro-batch (bounded-latency load shedding).
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Delivered on a group request's future when at least one of its K views
/// failed (inference fault or deadline shed). The group fails as a unit —
/// fused output over a partial view set would silently change the evidence
/// denominator — while sibling requests in the same micro-batch are
/// unaffected (the PR 3 per-group isolation contract, view-granular here).
class GroupViewFault : public std::runtime_error {
 public:
  GroupViewFault(const std::string& what, int64_t first_failed_view,
                 int64_t failed_views)
      : std::runtime_error(what),
        first_failed_view_(first_failed_view),
        failed_views_(failed_views) {}

  /// Lowest view index that failed (deterministic, not arrival order).
  int64_t first_failed_view() const { return first_failed_view_; }
  /// How many of the K views failed.
  int64_t failed_views() const { return failed_views_; }

 private:
  int64_t first_failed_view_ = -1;
  int64_t failed_views_ = 0;
};

/// Identifies one (configuration, task) group of a micro-batch — the unit of
/// inference and therefore of fault isolation. Deterministic given the
/// submission order (first_request_id), so tests and benches can target
/// exact groups.
struct FaultSite {
  int64_t worker = -1;
  int64_t first_request_id = -1;
  int64_t group_size = 0;
  core::ConfigKind config = core::ConfigKind::kQuantizedMultiTask;
  kg::TaskId task;
  int64_t snapshot_version = 0;
};

struct RuntimeOptions {
  int64_t workers = 2;
  /// Micro-batch closes at this many requests…
  int64_t max_batch = 8;
  /// …or this long (µs) after its first request was picked up.
  int64_t max_wait_us = 2000;
  /// Admission bound: try_submit rejects beyond this many queued requests.
  int64_t queue_capacity = 64;
  /// Default per-request deadline (µs from admission); 0 disables. A request
  /// whose deadline has passed when a worker forms its micro-batch is shed
  /// with DeadlineExceeded instead of consuming inference time — bounded
  /// degradation under overload. try_submit can override per request.
  int64_t deadline_us = 0;
  /// Fault-injection hook, consulted once per (config, task) group just
  /// before its inference; anything it throws becomes that group's fault
  /// (delivered on every member future, other groups unaffected). Lets tests
  /// and bench_f6_runtime exercise the degradation paths deterministically.
  std::function<void(const FaultSite&)> fault_injector;
  /// Time source for request accounting — admission/pick/infer timestamps,
  /// stage histograms, deadlines. Defaults to steady_clock_us; tests inject
  /// FakeClock::fn() for exact stage durations. Micro-batch max_wait
  /// blocking in the queue stays on the real clock regardless.
  ClockFn clock_us;
  /// Lanes in the process-wide GEMM kernel pool (tensor/kernel_pool.h) that
  /// snapshot inference may split MC-slab loops across once a micro-batch's
  /// row count clears gemm::kKernelPoolMinRows. 0 (default) leaves every
  /// kernel single-core — the repo-wide bench budget; bench_f6_runtime is
  /// the sanctioned multi-core exception. Applied at server construction via
  /// KernelPool::configure (the pool is shared process-wide and outlives the
  /// server). Results are bit-exact at any setting.
  int64_t kernel_threads = 0;
  /// Per-worker bump arenas for the inference hot path (tensor/arena.h):
  /// each worker owns an arena sized from DeploymentSnapshot::
  /// plan_workspace(max_batch) and binds it around batch stacking + model
  /// inference, so steady-state serving performs zero heap allocations in
  /// that region (test_runtime proves it with an instrumented allocator).
  /// Results are element-wise identical to the heap path — the arena only
  /// changes where intermediates live, never the arithmetic. Off = every
  /// intermediate heap-allocates as before (the bench_f6_runtime A/B).
  bool use_arena = true;
  /// Cross-view fusion parameters for try_submit_group gathers
  /// (detect::fuse_views). Fusion runs on the worker delivering a group's
  /// last view, after that worker's arena epilogue — outside the ArenaScope
  /// and off the allocation-metered hot path by construction.
  detect::FusionOptions fusion;
};

/// Everything a client learns about one completed request. The stage spans
/// partition the request's life (queue + batch-formation + infer == total,
/// up to the non-negative clamp) and mirror what the stage histograms saw.
struct InferenceResult {
  int64_t request_id = -1;
  std::vector<detect::Detection> detections;
  int64_t batch_size = 0;   // size of the micro-batch this request rode in
  int64_t worker = -1;      // which worker served it
  int64_t snapshot_version = 0;  // deployment snapshot that served it
  double queue_us = 0.0;    // admission → picked into a batch
  double batch_formation_us = 0.0;  // picked → its group's forward began
  double infer_us = 0.0;    // model forward + decode for its group
  double total_us = 0.0;    // admission → result ready
  StageTimeline timeline;   // the raw clock readings behind the spans
};

/// Why a submission was declined; kNone means it was admitted. Shared by
/// every admission surface — InferenceServer::try_submit / try_submit_group
/// and the fleet twins — so callers branch on one vocabulary.
/// kTenantQuota is produced only by the fleet's per-tenant admission quota;
/// from a fleet, kQueueFull means every candidate replica was full.
enum class RejectReason { kNone, kQueueFull, kShuttingDown, kTenantQuota };

const char* reject_reason_name(RejectReason reason);

/// The typed outcome of try_submit: either the future for the admitted
/// request, or an explicit reject reason the caller can branch on (shed
/// load on kQueueFull, stop submitting on kShuttingDown) — replacing the
/// old bare optional that conflated the two.
struct SubmitResult {
  std::optional<std::future<InferenceResult>> future;
  RejectReason reject = RejectReason::kNone;

  bool admitted() const { return future.has_value(); }
  explicit operator bool() const { return admitted(); }
};

/// What a group request's future resolves to: the fused detections plus the
/// per-view results (index = view index) the gather assembled them from.
/// `fused` is a pure function of the per-view detection multisets
/// (detect::fuse_views), so it is element-wise identical whether the views
/// were served by one server, a fleet shard at any geometry, or fused
/// serially outside the runtime.
struct GroupInferenceResult {
  int64_t group_id = -1;
  std::vector<detect::Detection> fused;
  std::vector<InferenceResult> views;  // one per view, in view order
  int64_t view_count = 0;
  double fuse_us = 0.0;   // gather fusion span (outside the arena scope)
  double total_us = 0.0;  // group admission → fused result ready
};

/// The typed outcome of try_submit_group, mirroring SubmitResult.
struct GroupSubmitResult {
  std::optional<std::future<GroupInferenceResult>> future;
  RejectReason reject = RejectReason::kNone;

  bool admitted() const { return future.has_value(); }
  explicit operator bool() const { return admitted(); }
};

/// A serving engine over published core::DeploymentSnapshot bundles. The
/// server owns a shared reference to every snapshot it may still serve
/// from, so the publishing Framework is free to keep mutating (define_task,
/// prepare_*, publish) while the server runs — snapshots are immutable.
class InferenceServer {
 public:
  InferenceServer(std::shared_ptr<const core::DeploymentSnapshot> snapshot,
                  RuntimeOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Swaps in a newer published snapshot without pausing serving: requests
  /// admitted before the swap finish on whichever snapshot their worker
  /// acquired; micro-batches formed after it serve the new one. The
  /// snapshot's version must strictly increase over the current one and its
  /// expected input shape must match (the admission contract already handed
  /// to clients cannot change mid-flight). Increments snapshots_published;
  /// tasks_onboarded grows by the number of newly servable tasks.
  void install_snapshot(
      std::shared_ptr<const core::DeploymentSnapshot> snapshot);

  /// The snapshot new micro-batches will be served from right now.
  std::shared_ptr<const core::DeploymentSnapshot> current_snapshot() const;

  /// Admission-controlled submit of one image [C, H, W]. The result carries
  /// either the future or the explicit reject reason (queue full /
  /// shutting down) — the caller sheds load. Malformed requests fail fast
  /// here instead of inside a worker: an image whose shape differs from the
  /// snapshot's expected [C, H, W], or a (task, config) the *current*
  /// snapshot cannot serve, throws std::invalid_argument (counted as
  /// requests_invalid) — publish-and-install a snapshot containing the task
  /// first. `deadline_us` overrides RuntimeOptions::deadline_us for this
  /// request (0 = none).
  SubmitResult try_submit(Tensor image, kg::TaskId task,
                          core::ConfigKind config,
                          std::optional<int64_t> deadline_us = std::nullopt);

  /// Convenience overload: submits against the handle's stable task id.
  SubmitResult try_submit(Tensor image, const core::TaskHandle& task,
                          core::ConfigKind config,
                          std::optional<int64_t> deadline_us = std::nullopt) {
    return try_submit(std::move(image), task.id, config, deadline_us);
  }

  /// Scatter/gather submit of ONE logical request carrying K views of the
  /// same scene. Admission is all-or-nothing (one atomic multi-push: the
  /// whole group is queued or the whole group is rejected); each view then
  /// rides the ordinary batcher/arena hot path as an independent work item —
  /// workers are group-oblivious — and the worker completing the LAST view
  /// fuses the per-view detections (RuntimeOptions::fusion, outside its
  /// ArenaScope) and resolves the single future. Validation is per view
  /// (shape + servable, as try_submit); `deadline_us` applies to every view,
  /// and any view failing (fault or deadline shed) fails the group with
  /// GroupViewFault while sibling requests are unaffected.
  GroupSubmitResult try_submit_group(
      std::vector<Tensor> views, kg::TaskId task, core::ConfigKind config,
      std::optional<int64_t> deadline_us = std::nullopt);

  /// Convenience overload: submits against the handle's stable task id.
  GroupSubmitResult try_submit_group(
      std::vector<Tensor> views, const core::TaskHandle& task,
      core::ConfigKind config,
      std::optional<int64_t> deadline_us = std::nullopt) {
    return try_submit_group(std::move(views), task.id, config, deadline_us);
  }

  /// Graceful shutdown: stops admission, drains every queued request
  /// (all outstanding futures are fulfilled), joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  MetricsRegistry& metrics() { return metrics_; }
  /// Read-only view for scrapes (PeriodicReporter, exposition, benches).
  const MetricsRegistry& metrics() const { return metrics_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  /// Gather state shared by the K views of one group request. Workers
  /// deposit each view's outcome under `mu`; whoever decrements `remaining`
  /// to zero owns the finish (fuse or fail) — the mutex's release/acquire
  /// chain makes every sibling's deposit visible to the finisher.
  struct GroupGather {
    int64_t group_id = -1;
    int64_t admitted_us = 0;
    detect::FusionOptions fusion;
    std::mutex mu;
    std::vector<InferenceResult> views;  // indexed by view_index
    int64_t remaining = 0;
    int64_t failed_views = 0;
    int64_t first_failed_view = -1;  // lowest failed view index
    std::string first_error;         // what() of that view's failure
    std::promise<GroupInferenceResult> promise;
  };

  struct Pending {
    int64_t id = -1;
    Tensor image;                        // [C, H, W]
    kg::TaskId task;
    core::ConfigKind config = core::ConfigKind::kQuantizedMultiTask;
    std::promise<InferenceResult> promise;
    int64_t admitted_us = 0;  // clock_us() at admission
    int64_t deadline_us = 0;  // absolute clock_us() deadline; 0 = none
    /// Snapshot version try_submit validated this request against. The
    /// serving worker may acquire a newer snapshot (install_snapshot raced
    /// the queue); that skew is safe — task tables only grow — but no longer
    /// silent: served-version != admitted_version counts snapshot_version_
    /// skew, the fleet's staged-rollout observability signal.
    int64_t admitted_version = 0;
    /// Group membership: null for ordinary requests. A group view's
    /// `promise` is never used — its outcome routes into the gather instead.
    std::shared_ptr<GroupGather> group;
    int64_t view_index = 0;
  };

  void worker_loop(int64_t worker_index);
  /// Fulfillment seams every worker outcome routes through: an ordinary
  /// request resolves its own promise; a group view deposits into the gather
  /// and the last one runs finish_group. Never called with an ArenaScope
  /// bound — and the fusing finish (all K views succeeded, so the last
  /// delivery was a success delivery) specifically runs only from the
  /// post-arena-epilogue fulfillment loop.
  void deliver(Pending& pending, InferenceResult&& result);
  void deliver_error(Pending& pending, const std::exception_ptr& error,
                     const std::string& what);
  void finish_group(const std::shared_ptr<GroupGather>& gather);

  RuntimeOptions options_;
  ClockFn clock_;
  BoundedQueue<Pending> queue_;
  MetricsRegistry metrics_;
  StageRecorder stages_;
  // Admission-path counters resolved once at construction: try_submit runs
  // per request on client threads, so a string-keyed map lookup under the
  // registry lock per increment was pure hot-path overhead. Names (and thus
  // the exposition output) are unchanged; creating them eagerly also means
  // a scrape before the first request sees every admission counter at 0.
  Counter& requests_submitted_;
  Counter& requests_invalid_;
  Counter& rejected_queue_full_;
  Counter& rejected_shutdown_;
  Counter& snapshots_published_;
  Counter& tasks_onboarded_;
  Counter& snapshot_version_skew_;
  Counter& groups_submitted_;
  Counter& groups_completed_;
  Counter& groups_failed_;
  Histogram& group_fuse_h_;
  std::atomic<int64_t> next_id_{0};
  std::atomic<int64_t> next_group_id_{0};
  // The current snapshot, guarded by a mutex rather than an atomic
  // shared_ptr: acquisition is once per micro-batch (not per request), so
  // the lock is uncontended and trivially TSan-clean.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const core::DeploymentSnapshot> snapshot_;
  // Peak per-worker arena bytes any installed snapshot needs (plan_workspace
  // at construction and each install; monotone — never shrinks while old
  // batches may still be in flight). Workers re-read it each micro-batch and
  // grow their arena outside the measured region.
  std::atomic<int64_t> workspace_bytes_{0};
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace itask::runtime
