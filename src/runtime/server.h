// The multi-threaded batched inference runtime (DESIGN.md §2 `runtime`,
// bench F6): a worker pool serving the paper's deployed dual-configuration
// models under concurrent load.
//
//   client threads ──try_submit──▶ BoundedQueue ──pop_batch──▶ workers
//        ▲ (rejected when full:        (micro-batches close at      │
//        │  backpressure)               max_batch or max_wait)      │
//        └────────── std::future<InferenceResult> ◀── fulfil ───────┘
//
// Workers group each micro-batch by (configuration, task), stack the images,
// and run the Framework's thread-safe const inference entry point
// (`Framework::infer_batch`), so both deployable configurations — the FP32
// task-specific student and the INT8 multi-task student — serve real
// requests concurrently from one shared deployment.
//
// Determinism contract: inference is cache-free and batch-composition-
// invariant, so every request's detections are element-wise identical to a
// serial `Framework::detect_batch` over the same images, whatever the
// scheduling — the property test_runtime proves.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/itask.h"
#include "runtime/metrics.h"
#include "runtime/queue.h"

namespace itask::runtime {

struct RuntimeOptions {
  int64_t workers = 2;
  /// Micro-batch closes at this many requests…
  int64_t max_batch = 8;
  /// …or this long (µs) after its first request was picked up.
  int64_t max_wait_us = 2000;
  /// Admission bound: try_submit rejects beyond this many queued requests.
  int64_t queue_capacity = 64;
};

/// Everything a client learns about one completed request.
struct InferenceResult {
  int64_t request_id = -1;
  std::vector<detect::Detection> detections;
  int64_t batch_size = 0;   // size of the micro-batch this request rode in
  int64_t worker = -1;      // which worker served it
  double queue_us = 0.0;    // admission → picked into a batch
  double infer_us = 0.0;    // model forward + decode for its group
  double total_us = 0.0;    // admission → result ready
};

/// A serving engine over a *prepared* core::Framework deployment. The
/// framework (and every TaskHandle passed to try_submit) must outlive the
/// server and must not be re-prepared while the server runs.
class InferenceServer {
 public:
  InferenceServer(const core::Framework& framework, RuntimeOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admission-controlled submit of one image [C, H, W]. Returns the future
  /// for its result, or nullopt when the queue is full or the server is
  /// shutting down (the rejection is counted — the caller sheds load).
  std::optional<std::future<InferenceResult>> try_submit(
      Tensor image, const core::TaskHandle& task, core::ConfigKind config);

  /// Graceful shutdown: stops admission, drains every queued request
  /// (all outstanding futures are fulfilled), joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  MetricsRegistry& metrics() { return metrics_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  struct Pending {
    int64_t id = -1;
    Tensor image;                        // [C, H, W]
    const core::TaskHandle* task = nullptr;
    core::ConfigKind config = core::ConfigKind::kQuantizedMultiTask;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop(int64_t worker_index);

  const core::Framework& framework_;
  RuntimeOptions options_;
  BoundedQueue<Pending> queue_;
  MetricsRegistry metrics_;
  std::atomic<int64_t> next_id_{0};
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace itask::runtime
