#include "runtime/trace.h"

namespace itask::runtime {

const char* stage_histogram_name(Stage s) {
  switch (s) {
    case Stage::kQueueWait: return "stage_queue_wait_us";
    case Stage::kBatchFormation: return "stage_batch_formation_us";
    case Stage::kInfer: return "stage_infer_us";
    case Stage::kTotal: return "stage_total_us";
  }
  return "?";
}

double span_us(int64_t from_us, int64_t to_us) {
  return to_us > from_us ? static_cast<double>(to_us - from_us) : 0.0;
}

StageRecorder::StageRecorder(MetricsRegistry& metrics)
    : queue_wait_(metrics.histogram(stage_histogram_name(Stage::kQueueWait))),
      batch_formation_(
          metrics.histogram(stage_histogram_name(Stage::kBatchFormation))),
      infer_(metrics.histogram(stage_histogram_name(Stage::kInfer))),
      total_(metrics.histogram(stage_histogram_name(Stage::kTotal))) {}

void StageRecorder::completed(const StageTimeline& t) {
  queue_wait_.record(span_us(t.admitted_us, t.picked_us));
  batch_formation_.record(span_us(t.picked_us, t.infer_start_us));
  infer_.record(span_us(t.infer_start_us, t.infer_end_us));
  total_.record(span_us(t.admitted_us, t.infer_end_us));
}

void StageRecorder::failed(const StageTimeline& t) {
  queue_wait_.record(span_us(t.admitted_us, t.picked_us));
}

void StageRecorder::expired(const StageTimeline& t) {
  queue_wait_.record(span_us(t.admitted_us, t.picked_us));
}

}  // namespace itask::runtime
