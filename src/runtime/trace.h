// Per-request stage timeline for the serving runtime.
//
// A request's lifecycle is a fixed sequence of spans:
//
//   admitted ──queue-wait──▶ picked ──batch-formation──▶ infer-start
//            ──infer──▶ infer-end, terminal ∈ {completed, failed, expired}
//
// The span recorder turns the four clock readings into per-stage durations
// and feeds each stage's own Histogram in the MetricsRegistry
// (stage_queue_wait_us / stage_batch_formation_us / stage_infer_us /
// stage_total_us), which is what bench_f6_runtime's per-stage latency
// breakdown and the exposition formats read. Terminal kind decides which
// spans are real: an expired or failed request never finished inference, so
// only its queue-wait is recorded — not a garbage end-to-end latency.
#pragma once

#include <cstdint>

#include "runtime/metrics.h"

namespace itask::runtime {

enum class Stage { kQueueWait, kBatchFormation, kInfer, kTotal };

/// Histogram name for a stage ("stage_queue_wait_us", …).
const char* stage_histogram_name(Stage s);

/// Raw clock readings (injectable clock, µs) for one request's lifecycle,
/// plus which deployment snapshot version the serving micro-batch acquired.
struct StageTimeline {
  int64_t admitted_us = 0;     // try_submit accepted the request
  int64_t picked_us = 0;       // a worker popped it into a micro-batch
  int64_t infer_start_us = 0;  // its (config, task) group's forward began
  int64_t infer_end_us = 0;    // forward + decode returned
  int64_t snapshot_version = 0;  // DeploymentSnapshot::version() that served it
};

/// Non-negative span in µs: clock readings taken on different threads are
/// ordered by happens-before, but a defensive clamp turns any residual
/// skew/reordering into 0 instead of a negative duration corrupting the
/// histograms.
double span_us(int64_t from_us, int64_t to_us);

/// Feeds stage durations into the registry's stage histograms.
class StageRecorder {
 public:
  explicit StageRecorder(MetricsRegistry& metrics);

  /// All four spans are real.
  void completed(const StageTimeline& t);
  /// Fault during batch formation or inference: queue-wait is the only
  /// trustworthy span (infer_start/infer_end may never have been taken).
  void failed(const StageTimeline& t);
  /// Shed at batch formation: records the queue-wait stage only.
  void expired(const StageTimeline& t);

 private:
  Histogram& queue_wait_;
  Histogram& batch_formation_;
  Histogram& infer_;
  Histogram& total_;
};

}  // namespace itask::runtime
