#include "tensor/arena.h"

#include <new>

namespace itask {

namespace allocdebug {

namespace {
thread_local int64_t t_alloc_count = 0;
}  // namespace

void note_alloc() noexcept { ++t_alloc_count; }

int64_t thread_alloc_count() noexcept { return t_alloc_count; }

}  // namespace allocdebug

namespace {

constexpr std::align_val_t kArenaAlign{
    static_cast<size_t>(Arena::kAlign)};

int64_t round_up(int64_t bytes) {
  return (bytes + Arena::kAlign - 1) & ~(Arena::kAlign - 1);
}

}  // namespace

Arena::Arena(int64_t capacity_bytes) {
  ITASK_CHECK(capacity_bytes >= 0, "Arena: capacity must be >= 0");
  capacity_ = round_up(capacity_bytes);
  if (capacity_ > 0) {
    base_ = static_cast<char*>(
        ::operator new(static_cast<size_t>(capacity_), kArenaAlign));
  }
}

Arena::~Arena() {
  reset();
  if (base_ != nullptr) ::operator delete(base_, kArenaAlign);
}

void* Arena::allocate(int64_t bytes) {
  if (bytes <= 0) return nullptr;
  const int64_t rounded = round_up(bytes);
  used_ += rounded;
  if (used_ > high_water_) high_water_ = used_;
  if (offset_ + rounded <= capacity_) {
    void* p = base_ + offset_;
    offset_ += rounded;
    return p;
  }
  ++overflow_allocs_;
  void* p = ::operator new(static_cast<size_t>(rounded), kArenaAlign);
  overflow_.push_back(p);
  return p;
}

void Arena::reset() {
  for (void* p : overflow_) ::operator delete(p, kArenaAlign);
  overflow_.clear();
  offset_ = 0;
  used_ = 0;
}

void Arena::grow(int64_t capacity_bytes) {
  ITASK_CHECK(used_ == 0, "Arena: grow() requires an empty (reset) arena");
  const int64_t rounded = round_up(capacity_bytes);
  if (rounded <= capacity_) return;
  if (base_ != nullptr) ::operator delete(base_, kArenaAlign);
  base_ = static_cast<char*>(
      ::operator new(static_cast<size_t>(rounded), kArenaAlign));
  capacity_ = rounded;
}

namespace {
thread_local Arena* t_current_arena = nullptr;
}  // namespace

ArenaScope::ArenaScope(Arena& arena) : prev_(t_current_arena) {
  t_current_arena = &arena;
}

ArenaScope::~ArenaScope() { t_current_arena = prev_; }

Arena* ArenaScope::current() noexcept { return t_current_arena; }

}  // namespace itask
