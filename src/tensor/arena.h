// Bump arena allocator + thread-local binding — the tensor allocator seam.
//
// Serving wants allocation-free steady state (DESIGN.md §2, ROADMAP item 3):
// a runtime worker owns one Arena sized at install time from
// core::DeploymentSnapshot::plan_workspace(), binds it with an ArenaScope
// around the hot region (batch stacking + model inference), and resets it
// per (config, task) group. While a scope is bound on the thread, every
// Tensor allocation and ScratchVec lands in the arena instead of the heap;
// the arithmetic is untouched, so results stay element-wise identical to the
// heap path (test_runtime asserts it).
//
// Accounting rule: every allocation is rounded up to kAlign bytes in BOTH
// the bump pointer and the `used()` sum, and allocations that miss the
// buffer fall back to individually heap'd blocks (freed at reset()) while
// still adding their rounded size to `used()`. A bump arena never reuses
// memory within a region, so `used()` after a probe run over a
// zero-capacity arena is *exactly* the capacity a real arena needs to serve
// the same call sequence overflow-free — the measurement plan_workspace()
// relies on.
//
// Lifetime rule: arena memory is invalidated by reset(); nothing allocated
// under a scope may escape past the owning worker's reset. In the runtime,
// the scope ends before decode, so detect::Detection tensors (which escape
// into InferenceResult) are always heap-backed.
//
// An Arena is single-threaded by design (one per worker); only the
// ArenaScope binding is thread-local.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "tensor/shape.h"

namespace itask {

namespace allocdebug {

/// Hook for an instrumented global operator-new interposer (defined only in
/// test binaries): bumps the calling thread's allocation counter. noexcept
/// and safe before main.
void note_alloc() noexcept;

/// Heap allocations observed on this thread since it started (0 unless the
/// binary interposes operator new and routes it here).
int64_t thread_alloc_count() noexcept;

}  // namespace allocdebug

class Arena {
 public:
  /// Every allocation is rounded to this granularity (cache line).
  static constexpr int64_t kAlign = 64;

  explicit Arena(int64_t capacity_bytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns kAlign-aligned storage for `bytes` (nullptr when bytes <= 0).
  /// Falls back to a heap block — freed at reset() — when the buffer is
  /// exhausted; `used()` accounts the rounded size either way.
  void* allocate(int64_t bytes);

  /// Invalidates everything allocated since the last reset: rewinds the bump
  /// pointer and frees overflow blocks. used() returns to 0.
  void reset();

  /// Enlarges the backing buffer. Only legal when the arena is empty (right
  /// after reset()); a no-op when the arena is already at least this large.
  void grow(int64_t capacity_bytes);

  int64_t capacity() const { return capacity_; }
  /// Rounded bytes handed out since the last reset (exact even when
  /// allocations overflowed to the heap).
  int64_t used() const { return used_; }
  /// Maximum used() ever reached, across resets.
  int64_t high_water() const { return high_water_; }
  /// Cumulative count of allocations that missed the buffer (never reset —
  /// a nonzero delta in steady state means the arena was sized too small).
  int64_t overflow_allocs() const { return overflow_allocs_; }

 private:
  char* base_ = nullptr;
  int64_t capacity_ = 0;
  int64_t offset_ = 0;
  int64_t used_ = 0;
  int64_t high_water_ = 0;
  int64_t overflow_allocs_ = 0;
  std::vector<void*> overflow_;
};

/// RAII thread-local binding: while alive, Tensor/ScratchVec allocations on
/// this thread come from `arena`. Nests (restores the previous binding).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The arena bound on the calling thread, or nullptr (heap policy).
  static Arena* current() noexcept;

 private:
  Arena* prev_ = nullptr;
};

/// Raw scratch buffer for trivially-destructible element types: arena-backed
/// under an ArenaScope, a plain heap vector otherwise. Zero-filled by
/// default (arena memory is reused, so callers that skip the fill must
/// overwrite every element).
template <typename T>
class ScratchVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "ScratchVec elements must be trivially destructible");

 public:
  explicit ScratchVec(int64_t n, bool zero_fill = true) : size_(n) {
    if (size_ <= 0) {
      size_ = 0;
      return;
    }
    if (Arena* arena = ArenaScope::current()) {
      data_ = static_cast<T*>(
          arena->allocate(size_ * static_cast<int64_t>(sizeof(T))));
      if (zero_fill)
        std::memset(data_, 0, static_cast<size_t>(size_) * sizeof(T));
    } else {
      heap_.resize(static_cast<size_t>(size_));  // value-init: zero either way
      data_ = heap_.data();
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  int64_t size() const { return size_; }
  T& operator[](int64_t i) { return data_[i]; }
  const T& operator[](int64_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }

 private:
  T* data_ = nullptr;
  int64_t size_ = 0;
  std::vector<T> heap_;
};

}  // namespace itask
