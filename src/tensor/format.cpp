#include "tensor/format.h"

#include <cinttypes>
#include <cstdio>

namespace itask::fmt {

std::string i64(int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string f64(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string g6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string pad_left(const std::string& s, int width) {
  const auto w = static_cast<size_t>(width < 0 ? 0 : width);
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, int width) {
  const auto w = static_cast<size_t>(width < 0 ? 0 : width);
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

}  // namespace itask::fmt
