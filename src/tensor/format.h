// Locale-independent numeric formatting shared by the table printers
// (accel/report) and the metrics exposition module (runtime/exposition).
//
// GCC 12 ships no <format>, and printf-family formatting of int64_t is a
// portability trap: "%lld" is wrong for int64_t on LP64 (long) and "%ld" is
// wrong on LLP64 (long long). These helpers do the PRId64 dance exactly
// once, so call sites stay -Wformat/-Werror=format clean on both ABIs.
#pragma once

#include <cstdint>
#include <string>

namespace itask::fmt {

/// int64_t as decimal, portably ("%" PRId64 under the hood).
std::string i64(int64_t v);

/// Fixed-point with `precision` fractional digits (f64(1.5, 3) == "1.500").
std::string f64(double v, int precision);

/// Shortest readable form ("%.6g") — Prometheus/JSON sample values.
std::string g6(double v);

/// Right-aligns `s` to `width` columns with spaces; longer strings pass
/// through untouched. pad_right left-aligns.
std::string pad_left(const std::string& s, int width);
std::string pad_right(const std::string& s, int width);

}  // namespace itask::fmt
