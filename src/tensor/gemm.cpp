#include "tensor/gemm.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "tensor/kernel_pool.h"
#include "tensor/profile.h"

namespace itask::gemm {

namespace {

// Cache-block extents: KC·NR and KC·MR panels stay L1-resident, a full
// KC×NC packed B slab stays L2-resident. Model GEMMs in this repo are small
// (K ≤ 256), so most calls see exactly one slab per dimension.
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 128;
constexpr int64_t kNC = 128;

// Operand storage layouts the packers absorb so one micro-kernel serves all
// three public variants.
enum class ALayout { kMK, kKM };  // row-major [M,K] vs transposed [K,M]
enum class BLayout { kKN, kNK };  // row-major [K,N] vs transposed [N,K]

// Per-thread packing workspaces, reused across calls. Thread-local keeps the
// concurrent infer paths (runtime workers, kernel-pool lanes) contention-
// and race-free. Growth is bounded: pack_workspace() reserves exactly the
// requested slab (no geometric resize() overshoot) and no slab exceeds
// kMC·kKC (A) / kNC·kKC (B) floats — 128 KiB each — so per-thread footprint
// never passes pack_workspace_cap_bytes(). The thread_local storage itself
// is released by the vector destructors when the owning thread exits, or
// eagerly via pack_workspace_release() (KernelPool lanes call it as they
// retire so a reconfigured pool strands nothing).
thread_local std::vector<float> tl_apack;
thread_local std::vector<float> tl_bpack;

float* pack_workspace(std::vector<float>& ws, int64_t elems) {
  const auto n = static_cast<size_t>(elems);
  if (ws.capacity() < n) {
    ws.clear();     // nothing persists across calls — skip the copy…
    ws.reserve(n);  // …and allocate exactly n, capping capacity at the
                    // largest slab ever requested (≤ the blocking extents).
  }
  ws.resize(n);
  return ws.data();
}

// GCC/Clang vector extension: an NR-wide float lane. The explicit type is
// what makes the micro-kernel compile to broadcast-FMA — GCC 12's auto-
// vectorizer turns the equivalent scalar loop nest into a slower shuffle
// (vpermt2ps) sequence. aligned(4) keeps loads/stores unaligned-safe.
#if defined(__GNUC__) || defined(__clang__)
#define ITASK_GEMM_VECEXT 1
typedef float vnr
    __attribute__((vector_size(kNR * sizeof(float)), aligned(4)));
#endif

/// Packs the [mc × kc] block of A at (i0, p0) into ceil(mc/MR) panels, each
/// k-major: panel[p*MR + i] = A(i0 + panel_base + i, p0 + p). Rows past the
/// edge are zero-filled so the micro-kernel never branches on the tail.
void pack_a(const float* a, ALayout layout, int64_t lda, int64_t i0,
            int64_t mc, int64_t p0, int64_t kc, float* out) {
  const int64_t panels = (mc + kMR - 1) / kMR;
  for (int64_t pan = 0; pan < panels; ++pan) {
    const int64_t ibase = i0 + pan * kMR;
    const int64_t rows = std::min(kMR, i0 + mc - ibase);
    float* dst = out + pan * kMR * kc;
    if (layout == ALayout::kMK) {
      // Walk each source row sequentially; the strided writes stay within
      // the (cache-resident) panel.
      for (int64_t i = 0; i < rows; ++i) {
        const float* src = a + (ibase + i) * lda + p0;
        for (int64_t p = 0; p < kc; ++p) dst[p * kMR + i] = src[p];
      }
      for (int64_t i = rows; i < kMR; ++i)
        for (int64_t p = 0; p < kc; ++p) dst[p * kMR + i] = 0.0f;
    } else {  // A stored [K, M]: source rows are contiguous in i.
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + ibase;
        float* col = dst + p * kMR;
        for (int64_t i = 0; i < rows; ++i) col[i] = src[i];
        for (int64_t i = rows; i < kMR; ++i) col[i] = 0.0f;
      }
    }
  }
}

/// Packs the [kc × nc] block of B at (p0, j0) into ceil(nc/NR) panels, each
/// k-major: panel[p*NR + j] = B(p0 + p, j0 + panel_base + j), zero-padded.
void pack_b(const float* b, BLayout layout, int64_t ldb, int64_t p0,
            int64_t kc, int64_t j0, int64_t nc, float* out) {
  const int64_t panels = (nc + kNR - 1) / kNR;
  for (int64_t pan = 0; pan < panels; ++pan) {
    const int64_t jbase = j0 + pan * kNR;
    const int64_t cols = std::min(kNR, j0 + nc - jbase);
    float* dst = out + pan * kNR * kc;
    if (layout == BLayout::kKN) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + jbase;
        float* row = dst + p * kNR;
        for (int64_t j = 0; j < cols; ++j) row[j] = src[j];
        for (int64_t j = cols; j < kNR; ++j) row[j] = 0.0f;
      }
    } else {  // B stored [N, K]: walk each N-row sequentially, scatter into
              // the k-major panel (strided writes stay panel-resident).
      for (int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jbase + j) * ldb + p0;
        for (int64_t p = 0; p < kc; ++p) dst[p * kNR + j] = src[p];
      }
      for (int64_t j = cols; j < kNR; ++j)
        for (int64_t p = 0; p < kc; ++p) dst[p * kNR + j] = 0.0f;
    }
  }
}

/// The shared micro-kernel: C[mr × nr] += Apanel · Bpanel over kc steps.
/// Both panels are contiguous, k-major, and zero-padded to MR/NR, so the
/// accumulator loops have constant trip counts (fully unrolled + vectorized
/// across j); only the final write-back respects the real tile edge.
void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                  int64_t kc, float* __restrict c, int64_t ldc, int64_t mr,
                  int64_t nr) {
#ifdef ITASK_GEMM_VECEXT
  vnr acc[kMR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    vnr bv;
    __builtin_memcpy(&bv, bp + p * kNR, sizeof(bv));
    const float* __restrict av = ap + p * kMR;
    for (int64_t i = 0; i < kMR; ++i) acc[i] += av[i] * bv;
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      vnr cv;
      __builtin_memcpy(&cv, crow, sizeof(cv));
      cv += acc[i];
      __builtin_memcpy(crow, &cv, sizeof(cv));
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
#else
  float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* __restrict av = ap + p * kMR;
    const float* __restrict bv = bp + p * kNR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float ai = av[i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += ai * bv[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
#endif
}

/// One MC slab of one (KC, NC) block: packs the slab's A panels into the
/// calling thread's workspace and runs the micro-kernel grid against an
/// already-packed B block. The unit of work the kernel pool distributes —
/// each slab writes a disjoint C row range, and each element's accumulation
/// order is exactly the serial loop's, so splitting slabs across threads is
/// bit-exact.
void run_mc_slab(const float* a, ALayout alay, int64_t lda, int64_t ic,
                 int64_t m, int64_t pc, int64_t kc, int64_t jc,
                 int64_t npanels, const float* bpack, float* c, int64_t n) {
  const int64_t mc = std::min(kMC, m - ic);
  const int64_t mpanels = (mc + kMR - 1) / kMR;
  float* apack = pack_workspace(tl_apack, mpanels * kMR * kc);
  {
    ITASK_PROFILE_SCOPE(profile::Section::kGemmPack);
    pack_a(a, alay, lda, ic, mc, pc, kc, apack);
  }
  ITASK_PROFILE_SCOPE(profile::Section::kGemmKernel);
  for (int64_t pi = 0; pi < mpanels; ++pi) {
    const int64_t i = ic + pi * kMR;
    const int64_t mr = std::min(kMR, m - i);
    for (int64_t pj = 0; pj < npanels; ++pj) {
      const int64_t j = jc + pj * kNR;
      micro_kernel(apack + pi * kMR * kc, bpack + pj * kNR * kc, kc,
                   c + i * n + j, n, mr, std::min(kNR, n - j));
    }
  }
}

/// Runs every MC slab of one (KC, NC) block, splitting across the kernel
/// pool when it is enabled, free, and the shape clears the row threshold.
template <typename SlabFn>
void for_each_mc_slab(int64_t m, const SlabFn& slab) {
  const int64_t nslabs = (m + kMC - 1) / kMC;
  if (m >= kKernelPoolMinRows) {
    parallel_slabs(nslabs, [&](int64_t s) { slab(s * kMC); });
    return;
  }
  for (int64_t s = 0; s < nslabs; ++s) slab(s * kMC);
}

/// Five-loop blocked driver; the public variants differ only in the layout
/// tags handed to the packers.
void gemm_driver(const float* a, ALayout alay, const float* b, BLayout blay,
                 float* c, int64_t m, int64_t k, int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const int64_t lda = alay == ALayout::kMK ? k : m;
  const int64_t ldb = blay == BLayout::kKN ? n : k;
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      float* bpack = pack_workspace(tl_bpack, npanels * kNR * kc);
      {
        // Profiling hooks sit at cache-block granularity: one relaxed
        // atomic load per block when disabled, never inside the micro-
        // kernel loop.
        ITASK_PROFILE_SCOPE(profile::Section::kGemmPack);
        pack_b(b, blay, ldb, pc, kc, jc, nc, bpack);
      }
      for_each_mc_slab(m, [&](int64_t ic) {
        run_mc_slab(a, alay, lda, ic, m, pc, kc, jc, npanels, bpack, c, n);
      });
    }
  }
}

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  gemm_driver(a, ALayout::kMK, b, BLayout::kKN, c, m, k, n);
}

void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  gemm_driver(a, ALayout::kMK, b, BLayout::kNK, c, m, k, n);
}

void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  gemm_driver(a, ALayout::kKM, b, BLayout::kKN, c, m, k, n);
}

PackedB pack_weights_bt(const float* b, int64_t k, int64_t n) {
  PackedB out;
  out.k = k;
  out.n = n;
  if (k <= 0 || n <= 0) return out;
  size_t total = 0;
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      total += static_cast<size_t>(((nc + kNR - 1) / kNR) * kNR * kc);
    }
  }
  out.data.resize(total);
  float* dst = out.data.data();
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      pack_b(b, BLayout::kNK, k, pc, kc, jc, nc, dst);
      dst += npanels * kNR * kc;
    }
  }
  return out;
}

void gemm_bt_prepacked(const float* a, const PackedB& b, float* c, int64_t m) {
  const int64_t k = b.k;
  const int64_t n = b.n;
  if (m <= 0 || n <= 0 || k <= 0) return;
  ITASK_PROFILE_COUNT(profile::Counter::kGemmPrepackedCalls, 1);
  ITASK_PROFILE_COUNT(profile::Counter::kGemmPackBytesAvoided, b.bytes());
  const float* block = b.data.data();
  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t npanels = (nc + kNR - 1) / kNR;
      for_each_mc_slab(m, [&](int64_t ic) {
        run_mc_slab(a, ALayout::kMK, k, ic, m, pc, kc, jc, npanels, block, c,
                    n);
      });
      block += npanels * kNR * kc;
    }
  }
}

int64_t pack_workspace_bytes() {
  return static_cast<int64_t>((tl_apack.capacity() + tl_bpack.capacity()) *
                              sizeof(float));
}

int64_t pack_workspace_cap_bytes() {
  return static_cast<int64_t>((kMC * kKC + kNC * kKC) * sizeof(float));
}

namespace {

// Extra thread-local workspace releasers (the int8 kernel registers its
// int16 workspaces). Guarded: registration runs during static init of
// whichever binaries link quant, release runs on pool lanes.
std::mutex releaser_mu;
std::vector<void (*)()> releasers;

}  // namespace

void register_pack_workspace_releaser(void (*fn)()) {
  std::lock_guard<std::mutex> lock(releaser_mu);
  for (void (*r)() : releasers)
    if (r == fn) return;
  releasers.push_back(fn);
}

void pack_workspace_release() {
  std::vector<float>().swap(tl_apack);
  std::vector<float>().swap(tl_bpack);
  std::vector<void (*)()> fns;
  {
    std::lock_guard<std::mutex> lock(releaser_mu);
    fns = releasers;
  }
  for (void (*fn)() : fns) fn();
}

namespace reference {

// The pre-kernel-layer loops, kept verbatim (including the data-dependent
// av == 0 skip) as the measured "before" and the parity oracle.

void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace reference

}  // namespace itask::gemm
