// Blocked, packed GEMM kernel layer — the single fp32 inner kernel every
// matmul/bmm variant in ops.h routes through (DESIGN.md §2 row 13).
//
// Strategy (the classic three-loop blocking used by BLIS-family libraries):
//  * k is split into KC slabs, n into NC slabs, m into MC slabs;
//  * within a slab, A is packed into MR-row panels and B into NR-column
//    panels, both k-major and zero-padded to full tiles, so the micro-kernel
//    always walks two contiguous streams with no edge handling;
//  * the micro-kernel keeps an MR×NR accumulator tile in registers,
//    vectorizing across the NR columns — independent outputs, not a
//    reduction, so it vectorizes without -ffast-math — and has no
//    data-dependent branches in the inner loop.
//
// The three storage variants (NN, B-transposed, A-transposed) differ only in
// the pack routines; the micro-kernel is shared.
//
// Semantics: every kernel *accumulates* (C += op(A)·op(B)); callers pass a
// zeroed C for a plain product. Results are deterministic call-to-call but
// differ from the naive reference kernels by fp32 reassociation (blocked
// summation order); see EXPERIMENTS.md K0 for the measured drift.
#pragma once

#include <cstdint>

namespace itask::gemm {

/// Micro-tile extents. 8×16 fp32 accumulators = eight 512-bit (or sixteen
/// 256-bit) vector registers — sized for the FMA units this repo targets
/// with -march=native.
inline constexpr int64_t kMR = 8;
inline constexpr int64_t kNR = 16;

/// C[M,N] += A[M,K] · B[K,N] (all row-major).
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// C[M,N] += A[M,K] · B[N,K]ᵀ (B stored row-major transposed — the Linear
/// weight layout).
void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// C[M,N] += A[K,M]ᵀ · B[K,N] (the weight-gradient layout).
void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// The pre-kernel-layer naive triple loops, retained verbatim as the parity
/// baseline for tests and the old-vs-new comparison in bench_k0_gemm. Same
/// accumulate semantics as the packed kernels.
namespace reference {

void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);
void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);
void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

}  // namespace reference

}  // namespace itask::gemm
