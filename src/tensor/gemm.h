// Blocked, packed GEMM kernel layer — the single fp32 inner kernel every
// matmul/bmm variant in ops.h routes through (DESIGN.md §2 row 13).
//
// Strategy (the classic three-loop blocking used by BLIS-family libraries):
//  * k is split into KC slabs, n into NC slabs, m into MC slabs;
//  * within a slab, A is packed into MR-row panels and B into NR-column
//    panels, both k-major and zero-padded to full tiles, so the micro-kernel
//    always walks two contiguous streams with no edge handling;
//  * the micro-kernel keeps an MR×NR accumulator tile in registers,
//    vectorizing across the NR columns — independent outputs, not a
//    reduction, so it vectorizes without -ffast-math — and has no
//    data-dependent branches in the inner loop.
//
// The three storage variants (NN, B-transposed, A-transposed) differ only in
// the pack routines; the micro-kernel is shared.
//
// Semantics: every kernel *accumulates* (C += op(A)·op(B)); callers pass a
// zeroed C for a plain product. Results are deterministic call-to-call but
// differ from the naive reference kernels by fp32 reassociation (blocked
// summation order); see EXPERIMENTS.md K0 for the measured drift.
#pragma once

#include <cstdint>
#include <vector>

namespace itask::gemm {

/// Micro-tile extents. 8×16 fp32 accumulators = eight 512-bit (or sixteen
/// 256-bit) vector registers — sized for the FMA units this repo targets
/// with -march=native.
inline constexpr int64_t kMR = 8;
inline constexpr int64_t kNR = 16;

/// C[M,N] += A[M,K] · B[K,N] (all row-major).
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// C[M,N] += A[M,K] · B[N,K]ᵀ (B stored row-major transposed — the Linear
/// weight layout).
void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// C[M,N] += A[K,M]ᵀ · B[K,N] (the weight-gradient layout).
void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

/// A weight matrix packed ONCE into the exact k-major NR-column panels the
/// blocked driver otherwise builds per call, stored in the (KC-slab,
/// NC-slab) order the driver visits them. Built at publish time for the
/// immutable models a core::DeploymentSnapshot captures (nn::Linear::
/// prepack_for_serving), so the per-request B pack on the serving path
/// drops to zero. Read-only after construction — safe to share across
/// concurrent inference workers.
struct PackedB {
  int64_t k = 0;  // inner (reduction) extent
  int64_t n = 0;  // output columns (= weight rows in the [N,K] layout)
  std::vector<float> data;

  int64_t bytes() const {
    return static_cast<int64_t>(data.size() * sizeof(float));
  }
};

/// Packs a row-major [N, K] weight matrix (the Linear/Bᵀ layout) for
/// gemm_bt_prepacked.
PackedB pack_weights_bt(const float* b, int64_t k, int64_t n);

/// C[M,N] += A[M,K] · Bᵀ with B pre-packed. Bit-identical to gemm_bt on the
/// same operands: the panels, micro-kernel and loop order are the same —
/// only where the packed B lives differs. When the kernel pool is enabled
/// (tensor/kernel_pool.h) and m clears kKernelPoolMinRows, the MC-slab loop
/// splits across threads; results stay bit-exact at any thread count.
void gemm_bt_prepacked(const float* a, const PackedB& b, float* c, int64_t m);

/// Capacity (bytes) of the calling thread's packing workspaces. Bounded by
/// construction at pack_workspace_cap_bytes() — the workspaces reserve
/// exactly what a slab needs (no geometric overshoot) and a slab never
/// exceeds the KC×MC / KC×NC blocking extents. Storage is thread_local, so
/// it is released automatically when the owning thread exits.
int64_t pack_workspace_bytes();

/// The documented per-thread workspace bound: one A slab + one B slab.
int64_t pack_workspace_cap_bytes();

/// Frees the calling thread's packing workspaces, plus any additional
/// thread-local kernel workspaces registered below. Workspaces regrow
/// lazily on the next kernel call, so this is purely a release valve:
/// KernelPool lanes call it as they retire (configure(0) would otherwise
/// strand up to pack_workspace_cap_bytes() per joined worker until process
/// exit), and tests call it to measure growth from a clean slate.
void pack_workspace_release();

/// Registers another thread-local workspace releaser for
/// pack_workspace_release() to invoke on the calling thread
/// (quant/int8_gemm.cpp registers its int16 packing workspaces this way).
/// Idempotent per function pointer; thread-safe.
void register_pack_workspace_releaser(void (*fn)());

/// The pre-kernel-layer naive triple loops, retained verbatim as the parity
/// baseline for tests and the old-vs-new comparison in bench_k0_gemm. Same
/// accumulate semantics as the packed kernels.
namespace reference {

void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);
void gemm_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);
void gemm_at(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);

}  // namespace reference

}  // namespace itask::gemm
