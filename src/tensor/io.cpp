#include "tensor/io.h"

#include <cstdint>
#include <fstream>

namespace itask::io {

namespace {

constexpr uint32_t kMagic = 0x4954534Bu;  // "ITSK"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("itask::io: truncated file");
  return value;
}

}  // namespace

void save_state_dict(const StateDict& state, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("itask::io: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(state.size()));
  for (const auto& [name, tensor] : state) {
    write_pod(os, static_cast<uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<uint64_t>(tensor.ndim()));
    for (int64_t d = 0; d < tensor.ndim(); ++d)
      write_pod(os, static_cast<int64_t>(tensor.dim(d)));
    os.write(reinterpret_cast<const char*>(tensor.data().data()),
             static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("itask::io: write failure to " + path);
}

StateDict load_state_dict(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("itask::io: cannot open " + path);
  if (read_pod<uint32_t>(is) != kMagic)
    throw std::runtime_error("itask::io: bad magic in " + path);
  if (read_pod<uint32_t>(is) != kVersion)
    throw std::runtime_error("itask::io: unsupported version in " + path);
  const uint64_t count = read_pod<uint64_t>(is);
  StateDict state;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t name_len = read_pod<uint64_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = read_pod<uint64_t>(is);
    Shape shape;
    for (uint64_t d = 0; d < rank; ++d) shape.push_back(read_pod<int64_t>(is));
    Tensor tensor(shape);
    is.read(reinterpret_cast<char*>(tensor.data().data()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("itask::io: truncated tensor payload");
    state.emplace(std::move(name), std::move(tensor));
  }
  return state;
}

}  // namespace itask::io
