// Binary tensor / checkpoint serialization. Format is a tiny custom container
// ("ITSK"): magic, version, entry count, then (name, rank, dims, payload) per
// tensor — enough to round-trip model weights between processes.
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"

namespace itask::io {

/// Named tensor collection — the unit of (de)serialization for model weights.
using StateDict = std::map<std::string, Tensor>;

/// Writes a state dict to `path`; throws std::runtime_error on I/O failure.
void save_state_dict(const StateDict& state, const std::string& path);

/// Reads a state dict written by save_state_dict; throws on malformed input.
StateDict load_state_dict(const std::string& path);

}  // namespace itask::io
