#include "tensor/kernel_pool.h"

#include "tensor/gemm.h"

namespace itask::gemm {

KernelPool& KernelPool::instance() {
  static KernelPool pool;
  return pool;
}

KernelPool::~KernelPool() {
  std::lock_guard<std::mutex> user(user_mu_);
  stop_workers_locked();
}

void KernelPool::configure(int64_t threads) {
  std::lock_guard<std::mutex> user(user_mu_);  // waits out any in-flight run
  stop_workers_locked();
  // Joined lanes freed their own workspaces on exit; free the calling
  // thread's too so a configure(0) leaves no slab-sized buffers behind.
  pack_workspace_release();
  if (threads <= 1) {
    lanes_.store(threads <= 0 ? 0 : 1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
  }
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int64_t t = 0; t + 1 < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
  lanes_.store(threads, std::memory_order_relaxed);
}

void KernelPool::stop_workers_locked() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  lanes_.store(0, std::memory_order_relaxed);
}

bool KernelPool::run(int64_t tasks, const std::function<void(int64_t)>& fn) {
  if (tasks < 2 || threads() < 2) return false;
  std::unique_lock<std::mutex> user(user_mu_, std::try_to_lock);
  if (!user.owns_lock()) return false;  // pool busy — caller runs serially
  if (threads() < 2) return false;      // raced with configure()
  uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    tasks_ = tasks;
    next_ = 0;
    completed_ = 0;
    gen = ++generation_;
  }
  job_cv_.notify_all();
  drain(gen);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return completed_ == tasks_; });
  fn_ = nullptr;  // late-waking workers see no job (and a stale generation)
  return true;
}

void KernelPool::drain(uint64_t gen) {
  while (true) {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t index = -1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (generation_ != gen || fn_ == nullptr || next_ >= tasks_) return;
      index = next_++;
      fn = fn_;
    }
    (*fn)(index);
    std::lock_guard<std::mutex> lk(mu_);
    // The owner cannot retire the job (completed_ == tasks_) while any
    // claimed index is still running, so `fn` above never outlives its job.
    if (generation_ == gen && ++completed_ == tasks_) done_cv_.notify_all();
  }
}

void KernelPool::worker_loop() {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      job_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) break;
      seen = generation_;
    }
    drain(seen);
  }
  // Slab packing grew this lane's thread_local workspaces; release them on
  // the way out instead of stranding up to pack_workspace_cap_bytes() per
  // retired lane for the rest of the process.
  pack_workspace_release();
}

}  // namespace itask::gemm
