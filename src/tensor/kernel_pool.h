// Fixed-size, opt-in worker pool for splitting GEMM slab loops
// (tensor/gemm.cpp, quant/int8_gemm.cpp) across cores on the serving hot
// path. Disabled by default: every kernel stays single-core — the repo-wide
// bench budget — unless a caller opts in (RuntimeOptions::kernel_threads;
// bench_f6_runtime is the sanctioned multi-core bench, see CLAUDE.md).
//
// Determinism contract: callers hand the pool whole MC slabs, each writing a
// disjoint C row range, and every element's accumulation order is identical
// to the serial loop (the KC slab loop stays serial in the caller). Results
// are therefore bit-exact across thread counts for both fp32 and int8 —
// including when the pool is busy and run() declines, sending the caller
// down its serial loop.
//
// Concurrency: one run() owns the pool at a time (try-lock); concurrent
// GEMMs from other runtime workers simply run serially rather than queueing.
// Slab claims and completion accounting go through one mutex — slabs are
// hundreds of microseconds of kernel work, so the lock is not a bottleneck,
// and the lock/unlock pairs give TSan-visible happens-before edges between
// job setup, slab execution, and completion.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace itask::gemm {

/// Shapes below this many rows never use the pool: they have at most one or
/// two MC slabs, where handoff latency exceeds the kernel win. The d40
/// serving shapes cross it around batch 26 (m = batch · (tokens+1)).
inline constexpr int64_t kKernelPoolMinRows = 256;

class KernelPool {
 public:
  /// The process-wide pool (one per process, like the kernels it serves).
  static KernelPool& instance();

  /// (Re)sizes the pool to `threads` total lanes *including* the calling
  /// thread, so `threads - 1` workers are spawned; <= 1 disables and joins
  /// any existing workers. Blocks until no run() is in flight. Thread-safe.
  void configure(int64_t threads);

  /// Total lanes (0 or 1 = disabled).
  int64_t threads() const { return lanes_.load(std::memory_order_relaxed); }

  /// Runs fn(i) for every i in [0, tasks), the calling thread participating
  /// as one lane. Returns false — without invoking fn at all — when the pool
  /// is disabled, tasks < 2, or another run() currently owns the pool; the
  /// caller must then run its serial loop (same results by the determinism
  /// contract). Returns true once every index has completed.
  bool run(int64_t tasks, const std::function<void(int64_t)>& fn);

  KernelPool(const KernelPool&) = delete;
  KernelPool& operator=(const KernelPool&) = delete;

 private:
  KernelPool() = default;
  ~KernelPool();

  void stop_workers_locked();  // requires user_mu_
  void worker_loop();
  /// Claims and runs slab indices of generation `gen` until none remain (or
  /// the generation moved on, for a late-waking worker).
  void drain(uint64_t gen);

  std::mutex user_mu_;  // serializes run() owners and configure()
  std::mutex mu_;       // guards all job state below
  std::condition_variable job_cv_;   // workers: new job or stop
  std::condition_variable done_cv_;  // run() owner: all indices completed
  std::vector<std::thread> workers_;
  std::atomic<int64_t> lanes_{0};
  const std::function<void(int64_t)>* fn_ = nullptr;
  int64_t tasks_ = 0;
  int64_t next_ = 0;
  int64_t completed_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Splits `slabs` loop iterations across the pool when it is enabled and
/// free, otherwise runs them serially on the caller — the single call the
/// kernel drivers make around their MC-slab loops.
template <typename Fn>
void parallel_slabs(int64_t slabs, Fn&& fn) {
  if (slabs > 1 && KernelPool::instance().threads() > 1) {
    const std::function<void(int64_t)> task = std::forward<Fn>(fn);
    if (KernelPool::instance().run(slabs, task)) return;
    for (int64_t s = 0; s < slabs; ++s) task(s);
    return;
  }
  for (int64_t s = 0; s < slabs; ++s) fn(s);
}

}  // namespace itask::gemm
