#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"

namespace itask::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  ITASK_CHECK(a.shape() == b.shape(),
              std::string(op) + ": shape mismatch " +
                  shape_to_string(a.shape()) + " vs " +
                  shape_to_string(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  auto o = out.data();
  auto bd = b.data();
  for (size_t i = 0; i < o.size(); ++i) o[i] += bd[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  auto o = out.data();
  auto bd = b.data();
  for (size_t i = 0; i < o.size(); ++i) o[i] -= bd[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  auto o = out.data();
  auto bd = b.data();
  for (size_t i = 0; i < o.size(); ++i) o[i] *= bd[i];
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  for (float& v : out.data()) v += s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a;
  for (float& v : out.data()) v *= s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  auto ad = a.data();
  auto bd = b.data();
  for (size_t i = 0; i < ad.size(); ++i) ad[i] += bd[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  auto ad = a.data();
  auto bd = b.data();
  for (size_t i = 0; i < ad.size(); ++i) ad[i] += alpha * bd[i];
}

Tensor add_rowwise(const Tensor& a, const Tensor& bias) {
  ITASK_CHECK(bias.ndim() == 1, "add_rowwise: bias must be 1-D");
  ITASK_CHECK(a.ndim() >= 1, "add_rowwise: input must be at least 1-D");
  const int64_t c = a.dim(a.ndim() - 1);
  ITASK_CHECK(bias.dim(0) == c, "add_rowwise: bias length mismatch");
  Tensor out = a;
  auto o = out.data();
  auto bd = bias.data();
  const int64_t rows = a.numel() / c;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = o.data() + r * c;
    for (int64_t j = 0; j < c; ++j) row[j] += bd[j];
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul: need 2-D operands");
  ITASK_CHECK(a.dim(1) == b.dim(0), "matmul: inner dimension mismatch");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  gemm::gemm_nn(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  return out;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_bt: need 2-D operands");
  ITASK_CHECK(a.dim(1) == b.dim(1), "matmul_bt: inner dimension mismatch");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  gemm::gemm_bt(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  return out;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_at: need 2-D operands");
  ITASK_CHECK(a.dim(0) == b.dim(0), "matmul_at: inner dimension mismatch");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  gemm::gemm_at(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  return out;
}

namespace {

template <typename Fn>
Tensor batched(const Tensor& a, int64_t m, int64_t n, Fn&& per_batch) {
  const int64_t batches = a.dim(0);
  Tensor out({batches, m, n});
  for (int64_t i = 0; i < batches; ++i) per_batch(i, out);
  return out;
}

}  // namespace

Tensor bmm(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 3 && b.ndim() == 3, "bmm: need 3-D operands");
  ITASK_CHECK(a.dim(0) == b.dim(0), "bmm: batch mismatch");
  ITASK_CHECK(a.dim(2) == b.dim(1), "bmm: inner dimension mismatch");
  const int64_t m = a.dim(1), k = a.dim(2), n = b.dim(2);
  auto ad = a.data();
  auto bd = b.data();
  return batched(a, m, n, [&](int64_t i, Tensor& out) {
    gemm::gemm_nn(ad.data() + i * m * k, bd.data() + i * k * n,
                  out.data().data() + i * m * n, m, k, n);
  });
}

Tensor bmm_bt(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 3 && b.ndim() == 3, "bmm_bt: need 3-D operands");
  ITASK_CHECK(a.dim(0) == b.dim(0), "bmm_bt: batch mismatch");
  ITASK_CHECK(a.dim(2) == b.dim(2), "bmm_bt: inner dimension mismatch");
  const int64_t m = a.dim(1), k = a.dim(2), n = b.dim(1);
  auto ad = a.data();
  auto bd = b.data();
  return batched(a, m, n, [&](int64_t i, Tensor& out) {
    gemm::gemm_bt(ad.data() + i * m * k, bd.data() + i * n * k,
                  out.data().data() + i * m * n, m, k, n);
  });
}

Tensor bmm_at(const Tensor& a, const Tensor& b) {
  ITASK_CHECK(a.ndim() == 3 && b.ndim() == 3, "bmm_at: need 3-D operands");
  ITASK_CHECK(a.dim(0) == b.dim(0), "bmm_at: batch mismatch");
  ITASK_CHECK(a.dim(1) == b.dim(1), "bmm_at: inner dimension mismatch");
  const int64_t k = a.dim(1), m = a.dim(2), n = b.dim(2);
  auto ad = a.data();
  auto bd = b.data();
  return batched(a, m, n, [&](int64_t i, Tensor& out) {
    gemm::gemm_at(ad.data() + i * k * m, bd.data() + i * k * n,
                  out.data().data() + i * m * n, m, k, n);
  });
}

Tensor transpose2d(const Tensor& a) {
  ITASK_CHECK(a.ndim() == 2, "transpose2d: need 2-D operand");
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  auto ad = a.data();
  auto od = out.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) od[j * m + i] = ad[i * n + j];
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a;
  for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor relu_grad(const Tensor& input, const Tensor& grad_out) {
  check_same_shape(input, grad_out, "relu_grad");
  Tensor out = grad_out;
  auto o = out.data();
  auto in = input.data();
  for (size_t i = 0; i < o.size(); ++i)
    if (in[i] <= 0.0f) o[i] = 0.0f;
  return out;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor gelu(const Tensor& a) {
  Tensor out = a;
  for (float& v : out.data()) {
    const float inner = kGeluC * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
  return out;
}

Tensor gelu_grad(const Tensor& input, const Tensor& grad_out) {
  check_same_shape(input, grad_out, "gelu_grad");
  Tensor out = grad_out;
  auto o = out.data();
  auto in = input.data();
  for (size_t i = 0; i < o.size(); ++i) {
    const float x = in[i];
    const float inner = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(inner);
    const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    const float dgelu = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
    o[i] *= dgelu;
  }
  return out;
}

Tensor sigmoid(const Tensor& a) {
  Tensor out = a;
  for (float& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
  return out;
}

Tensor tanh_t(const Tensor& a) {
  Tensor out = a;
  for (float& v : out.data()) v = std::tanh(v);
  return out;
}

Tensor softmax_lastdim(const Tensor& a) {
  ITASK_CHECK(a.ndim() >= 1, "softmax_lastdim: need at least 1-D");
  const int64_t c = a.dim(a.ndim() - 1);
  const int64_t rows = a.numel() / c;
  Tensor out = a;
  auto o = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = o.data() + r * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return out;
}

Tensor log_softmax_lastdim(const Tensor& a) {
  ITASK_CHECK(a.ndim() >= 1, "log_softmax_lastdim: need at least 1-D");
  const int64_t c = a.dim(a.ndim() - 1);
  const int64_t rows = a.numel() / c;
  Tensor out = a;
  auto o = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = o.data() + r * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + std::log(denom);
    for (int64_t j = 0; j < c; ++j) row[j] -= lse;
  }
  return out;
}

Tensor softmax_backward_lastdim(const Tensor& y, const Tensor& g) {
  check_same_shape(y, g, "softmax_backward_lastdim");
  const int64_t c = y.dim(y.ndim() - 1);
  const int64_t rows = y.numel() / c;
  Tensor out = y;
  auto o = out.data();
  auto yd = y.data();
  auto gd = g.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* yrow = yd.data() + r * c;
    const float* grow = gd.data() + r * c;
    float dot = 0.0f;
    for (int64_t j = 0; j < c; ++j) dot += yrow[j] * grow[j];
    float* orow = o.data() + r * c;
    for (int64_t j = 0; j < c; ++j) orow[j] = yrow[j] * (grow[j] - dot);
  }
  return out;
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  ITASK_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  ITASK_CHECK(a.numel() > 0, "max of empty tensor");
  float mx = a.data()[0];
  for (float v : a.data()) mx = std::max(mx, v);
  return mx;
}

std::vector<int64_t> argmax_lastdim(const Tensor& a) {
  ITASK_CHECK(a.ndim() >= 1, "argmax_lastdim: need at least 1-D");
  const int64_t c = a.dim(a.ndim() - 1);
  const int64_t rows = a.numel() / c;
  std::vector<int64_t> out(static_cast<size_t>(rows));
  auto ad = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = ad.data() + r * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

Tensor sum_to_lastdim(const Tensor& a) {
  ITASK_CHECK(a.ndim() >= 1, "sum_to_lastdim: need at least 1-D");
  const int64_t c = a.dim(a.ndim() - 1);
  const int64_t rows = a.numel() / c;
  Tensor out({c});
  auto o = out.data();
  auto ad = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = ad.data() + r * c;
    for (int64_t j = 0; j < c; ++j) o[j] += row[j];
  }
  return out;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Tensor concat1d(const std::vector<Tensor>& parts) {
  ITASK_CHECK(!parts.empty(), "concat1d: empty input");
  std::vector<float> values;
  for (const Tensor& t : parts) {
    ITASK_CHECK(t.ndim() == 1, "concat1d: all parts must be 1-D");
    values.insert(values.end(), t.data().begin(), t.data().end());
  }
  // Read the size before moving: argument evaluation order is unspecified.
  const int64_t total = static_cast<int64_t>(values.size());
  return Tensor({total}, std::move(values));
}

Tensor stack(const std::vector<Tensor>& parts) {
  ITASK_CHECK(!parts.empty(), "stack: empty input");
  const Shape& sub = parts.front().shape();
  Shape shape;
  shape.push_back(static_cast<int64_t>(parts.size()));
  shape.insert(shape.end(), sub.begin(), sub.end());
  Tensor out(std::move(shape));
  for (size_t i = 0; i < parts.size(); ++i) {
    ITASK_CHECK(parts[i].shape() == sub, "stack: shape mismatch");
    out.set_index(static_cast<int64_t>(i), parts[i]);
  }
  return out;
}

}  // namespace itask::ops
