// Free-function tensor operations: GEMM, elementwise math, reductions,
// softmax family. These are the numeric kernels the nn/ layers compose.
//
// Conventions:
//  * 2-D matmul treats tensors as [M, K] x [K, N] -> [M, N].
//  * Batched matmul operates on [B, M, K] x [B, K, N] -> [B, M, N].
//  * "lastdim" ops apply independently over the trailing axis.
#pragma once

#include "tensor/tensor.h"

namespace itask::ops {

// ---- elementwise ----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);   // Hadamard product.
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
void add_inplace(Tensor& a, const Tensor& b);
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);  // a += alpha*b

/// Adds a 1-D bias of length C to every row of a [..., C] tensor.
Tensor add_rowwise(const Tensor& a, const Tensor& bias);

// ---- matrix products ------------------------------------------------------

/// [M, K] x [K, N] -> [M, N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// [M, K] x [N, K]^T -> [M, N] (i.e. B is stored row-major transposed).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// [K, M]^T x [K, N] -> [M, N].
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// [B, M, K] x [B, K, N] -> [B, M, N].
Tensor bmm(const Tensor& a, const Tensor& b);

/// [B, M, K] x [B, N, K]^T -> [B, M, N].
Tensor bmm_bt(const Tensor& a, const Tensor& b);

/// [B, K, M]^T x [B, K, N] -> [B, M, N].
Tensor bmm_at(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor transpose2d(const Tensor& a);

// ---- nonlinearities -------------------------------------------------------

Tensor relu(const Tensor& a);
Tensor relu_grad(const Tensor& input, const Tensor& grad_out);
Tensor gelu(const Tensor& a);        // tanh approximation
Tensor gelu_grad(const Tensor& input, const Tensor& grad_out);
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);

// ---- softmax family (over the trailing axis) ------------------------------

Tensor softmax_lastdim(const Tensor& a);
Tensor log_softmax_lastdim(const Tensor& a);

/// Backward of softmax given its *output* y and upstream gradient g:
/// dx = y * (g - sum(g*y)).
Tensor softmax_backward_lastdim(const Tensor& y, const Tensor& g);

// ---- reductions -----------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);

/// Index of the maximum element along the trailing axis; result shape is the
/// input shape with the trailing axis removed (flat vector of int64).
std::vector<int64_t> argmax_lastdim(const Tensor& a);

/// Sums over all leading axes, producing a 1-D tensor of the trailing size.
/// (This is the bias-gradient reduction.)
Tensor sum_to_lastdim(const Tensor& a);

/// L2 norm of all elements.
float l2_norm(const Tensor& a);

// ---- shape utilities ------------------------------------------------------

/// Concatenates 1-D tensors.
Tensor concat1d(const std::vector<Tensor>& parts);

/// Stacks equal-shaped tensors along a new leading axis.
Tensor stack(const std::vector<Tensor>& parts);

}  // namespace itask::ops
