#include "tensor/profile.h"

namespace itask::profile {

namespace detail {

std::atomic<bool> g_enabled{false};
SectionCell g_cells[static_cast<int>(Section::kCount)];
std::atomic<int64_t> g_counters[static_cast<int>(Counter::kCounterCount)];

}  // namespace detail

const char* section_name(Section s) {
  switch (s) {
    case Section::kGemmPack: return "gemm_pack";
    case Section::kGemmKernel: return "gemm_kernel";
    case Section::kInt8Pack: return "int8_pack";
    case Section::kInt8Kernel: return "int8_kernel";
    case Section::kInt8Quantize: return "int8_quantize";
    case Section::kInt8Dequant: return "int8_dequant";
    case Section::kCount: break;
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kGemmPrepackedCalls: return "gemm_prepacked_calls";
    case Counter::kGemmPackBytesAvoided: return "gemm_pack_bytes_avoided";
    case Counter::kInt8PrepackedCalls: return "int8_prepacked_calls";
    case Counter::kInt8PackBytesAvoided: return "int8_pack_bytes_avoided";
    case Counter::kCounterCount: break;
  }
  return "?";
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  for (auto& cell : detail::g_cells) {
    cell.calls.store(0, std::memory_order_relaxed);
    cell.total_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& counter : detail::g_counters)
    counter.store(0, std::memory_order_relaxed);
}

std::vector<SectionStats> snapshot() {
  std::vector<SectionStats> out;
  for (int i = 0; i < static_cast<int>(Section::kCount); ++i) {
    const auto& cell = detail::g_cells[i];
    SectionStats s;
    s.section = static_cast<Section>(i);
    s.name = section_name(s.section);
    s.calls = cell.calls.load(std::memory_order_relaxed);
    s.total_ns = cell.total_ns.load(std::memory_order_relaxed);
    if (s.calls > 0) out.push_back(s);
  }
  return out;
}

std::vector<CounterStats> counter_snapshot() {
  std::vector<CounterStats> out;
  for (int i = 0; i < static_cast<int>(Counter::kCounterCount); ++i) {
    CounterStats s;
    s.counter = static_cast<Counter>(i);
    s.name = counter_name(s.counter);
    s.value = detail::g_counters[i].load(std::memory_order_relaxed);
    if (s.value != 0) out.push_back(s);
  }
  return out;
}

}  // namespace itask::profile
