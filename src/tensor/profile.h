// Near-zero-cost kernel profiling hooks for the hot GEMM paths.
//
// A ScopedTimer placed around a kernel section costs one relaxed atomic load
// (and a predictable branch) while profiling is disabled — cheap enough to
// live permanently in tensor/gemm.cpp and quant/int8_gemm.cpp without
// perturbing bench_k0 numbers. When enabled at runtime
// (profile::set_enabled(true)), each section accumulates call count and
// wall nanoseconds into lock-free per-section atomics, so concurrent
// inference workers (src/runtime) record without contention or races.
//
// Sections are a fixed enum, not named strings: registration-free, no
// allocation on the hot path, and snapshot() is a handful of relaxed loads.
// The snapshot feeds the same exposition formats as the serving metrics
// (runtime/exposition), which is how bench_k0/bench_f6 attribute wall time
// to pack vs micro-kernel vs quantize/dequantize.
//
// ITASK_PROFILE_SCOPE compiles to nothing under -DITASK_NO_PROFILING for
// builds that want the hooks gone entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace itask::profile {

enum class Section : int {
  kGemmPack = 0,   // fp32 A/B panel packing (tensor/gemm.cpp)
  kGemmKernel,     // fp32 micro-kernel loop nest incl. C writeback
  kInt8Pack,       // int8→int16 k-pair panel packing (quant/int8_gemm.cpp)
  kInt8Kernel,     // int8 micro-kernel loop nest incl. writeback/correction
  kInt8Quantize,   // fp32→int8 activation quantization (qlinear_forward)
  kInt8Dequant,    // int32→fp32 dequant + bias epilogue (qlinear_forward)
  kCount
};

const char* section_name(Section s);

/// Event counters beside the section timers: the prepacked GEMM entry points
/// tick these so the attribution tables show the pack work *avoided* by
/// publish-time weight pre-packing instead of pack time silently vanishing.
/// Same cost model as the timers: one relaxed load when disabled.
enum class Counter : int {
  kGemmPrepackedCalls = 0,  // fp32 gemm_bt_prepacked invocations
  kGemmPackBytesAvoided,    // fp32 B-panel bytes NOT packed thanks to prepack
  kInt8PrepackedCalls,      // int8_gemm_bt_prepacked invocations
  kInt8PackBytesAvoided,    // int16 W-panel bytes NOT packed thanks to prepack
  kCounterCount
};

const char* counter_name(Counter c);

namespace detail {

extern std::atomic<bool> g_enabled;

struct SectionCell {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> total_ns{0};
};

extern SectionCell g_cells[static_cast<int>(Section::kCount)];
extern std::atomic<int64_t> g_counters[static_cast<int>(Counter::kCounterCount)];

}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// Zeroes every section (counts and nanoseconds). Not atomic with respect to
/// concurrent timers — call it between runs, not during one.
void reset();

struct SectionStats {
  Section section{};
  const char* name = "";
  int64_t calls = 0;
  int64_t total_ns = 0;
};

/// Sections with at least one recorded call, in enum order. Empty when the
/// hooks are disabled or no instrumented kernel ran — the "hooks off ⇒ no
/// histogram created" contract tests assert exactly this.
std::vector<SectionStats> snapshot();

struct CounterStats {
  Counter counter{};
  const char* name = "";
  int64_t value = 0;
};

/// Counters with a non-zero value, in enum order. Like snapshot(), empty when
/// the hooks are disabled or no prepacked kernel ran.
std::vector<CounterStats> counter_snapshot();

/// Adds `delta` to a counter when profiling is enabled (relaxed atomic; safe
/// from concurrent inference workers). Prefer ITASK_PROFILE_COUNT, which
/// compiles out under -DITASK_NO_PROFILING.
inline void add_count(Counter c, int64_t delta) {
  if (enabled())
    detail::g_counters[static_cast<int>(c)].fetch_add(
        delta, std::memory_order_relaxed);
}

/// RAII section timer. Reads the enable flag once at construction; a timer
/// alive across set_enabled() keeps its construction-time decision.
class ScopedTimer {
 public:
  explicit ScopedTimer(Section s) {
    if (enabled()) {
      section_ = s;
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      auto& cell = detail::g_cells[static_cast<int>(section_)];
      cell.calls.fetch_add(1, std::memory_order_relaxed);
      cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Section section_ = Section::kGemmPack;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace itask::profile

#ifdef ITASK_NO_PROFILING
#define ITASK_PROFILE_SCOPE(section)
#define ITASK_PROFILE_COUNT(counter, delta)
#else
#define ITASK_PROFILE_COUNT(counter, delta) \
  ::itask::profile::add_count((counter), (delta))
#define ITASK_PROFILE_CONCAT_IMPL(a, b) a##b
#define ITASK_PROFILE_CONCAT(a, b) ITASK_PROFILE_CONCAT_IMPL(a, b)
#define ITASK_PROFILE_SCOPE(section)                 \
  ::itask::profile::ScopedTimer ITASK_PROFILE_CONCAT( \
      itask_profile_scope_, __LINE__)(section)
#endif
