#include "tensor/rng.h"

#include <algorithm>
#include <numeric>

namespace itask {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::randint(int64_t lo, int64_t hi) {
  ITASK_CHECK(lo <= hi, "randint: empty range");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

std::vector<int64_t> Rng::sample_indices(int64_t n, int64_t k) {
  ITASK_CHECK(k >= 0 && k <= n, "sample_indices: k out of range");
  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  shuffle(all);
  all.resize(static_cast<size_t>(k));
  std::sort(all.begin(), all.end());
  return all;
}

Tensor Rng::randn(Shape shape, float mean, float stddev) {
  Tensor out(std::move(shape));
  for (float& v : out.data()) v = normal(mean, stddev);
  return out;
}

Tensor Rng::rand(Shape shape, float lo, float hi) {
  Tensor out(std::move(shape));
  for (float& v : out.data()) v = uniform(lo, hi);
  return out;
}

}  // namespace itask
