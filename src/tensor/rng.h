// Deterministic random number generation. Every stochastic component in the
// iTask stack (init, data generation, LLM-oracle noise, samplers) takes an
// explicit Rng so experiments are bit-reproducible across runs (DESIGN.md §6.5).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/tensor.h"

namespace itask {

/// Seeded Mersenne-Twister wrapper with tensor factories.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);

  /// Normal with the given mean and standard deviation.
  float normal(float mean = 0.0f, float stddev = 1.0f);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t randint(int64_t lo, int64_t hi);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Derives an independent child generator (stable given call order).
  Rng fork();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(randint(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n).
  std::vector<int64_t> sample_indices(int64_t n, int64_t k);

  /// Tensor with i.i.d. N(mean, stddev) entries.
  Tensor randn(Shape shape, float mean = 0.0f, float stddev = 1.0f);

  /// Tensor with i.i.d. U[lo, hi) entries.
  Tensor rand(Shape shape, float lo = 0.0f, float hi = 1.0f);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace itask
