// itask::Shape — fixed-capacity inline dimension vector.
//
// Tensor shapes were a std::vector<int64_t>, which made *every* Tensor
// construction heap-allocate even when its payload came from an arena
// (tensor/arena.h). Ranks in this repo never exceed 4; an inline array of
// kMaxRank dims keeps the full std::vector-ish surface the codebase uses
// (brace init, iterator-range construction, push_back/insert/back) with no
// allocation ever — a precondition for the zero-steady-state-allocation
// serving contract test_runtime asserts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace itask {

/// Throws std::invalid_argument with a formatted message when `cond` is false.
/// Used for shape/precondition checks across the tensor and nn libraries.
#define ITASK_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw std::invalid_argument(std::string("itask: ") + (msg) +    \
                                  " [" #cond "]");                    \
    }                                                                 \
  } while (false)

class Shape {
 public:
  /// Twice the deepest rank the stack uses ([B, C, H, W]) — headroom, not a
  /// tuning knob.
  static constexpr int64_t kMaxRank = 8;

  using value_type = int64_t;
  using iterator = int64_t*;
  using const_iterator = const int64_t*;

  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) {
    for (int64_t d : dims) push_back(d);
  }
  template <typename It>
  Shape(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  size_t size() const { return static_cast<size_t>(size_); }
  bool empty() const { return size_ == 0; }

  int64_t& operator[](size_t i) { return dims_[i]; }
  int64_t operator[](size_t i) const { return dims_[i]; }

  int64_t& back() { return dims_[size_ - 1]; }
  int64_t back() const { return dims_[size_ - 1]; }

  iterator begin() { return dims_; }
  iterator end() { return dims_ + size_; }
  const_iterator begin() const { return dims_; }
  const_iterator end() const { return dims_ + size_; }

  void push_back(int64_t d) {
    ITASK_CHECK(size_ < kMaxRank, "Shape: rank exceeds kMaxRank");
    dims_[size_++] = d;
  }

  iterator insert(const_iterator pos, int64_t value) {
    return insert(pos, &value, &value + 1);
  }

  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const int64_t at = pos - dims_;
    int64_t count = 0;
    for (It it = first; it != last; ++it) ++count;
    ITASK_CHECK(size_ + count <= kMaxRank, "Shape: rank exceeds kMaxRank");
    for (int64_t i = size_ - 1; i >= at; --i) dims_[i + count] = dims_[i];
    int64_t* dst = dims_ + at;
    for (; first != last; ++first) *dst++ = *first;
    size_ += count;
    return dims_ + at;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.size_ != b.size_) return false;
    for (int64_t i = 0; i < a.size_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  int64_t dims_[kMaxRank] = {};
  int64_t size_ = 0;
};

/// Returns the number of elements implied by a shape (product of dims).
int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering of a shape, for error messages.
std::string shape_to_string(const Shape& shape);

}  // namespace itask
