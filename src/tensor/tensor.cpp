#include "tensor/tensor.h"

#include <numeric>
#include <sstream>

namespace itask {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ITASK_CHECK(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  ITASK_CHECK(static_cast<int64_t>(data_.size()) == shape_numel(shape_),
              "value count does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const int64_t r = static_cast<int64_t>(rows.size());
  ITASK_CHECK(r > 0, "from_rows needs at least one row");
  const int64_t c = static_cast<int64_t>(rows.begin()->size());
  std::vector<float> values;
  values.reserve(static_cast<size_t>(r * c));
  for (const auto& row : rows) {
    ITASK_CHECK(static_cast<int64_t>(row.size()) == c,
                "ragged rows in from_rows");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(values));
}

int64_t Tensor::dim(int64_t i) const {
  ITASK_CHECK(i >= 0 && i < ndim(), "dim index out of range");
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::operator[](int64_t flat_index) {
  ITASK_CHECK(flat_index >= 0 && flat_index < numel(),
              "flat index out of range");
  return data_[static_cast<size_t>(flat_index)];
}

float Tensor::operator[](int64_t flat_index) const {
  ITASK_CHECK(flat_index >= 0 && flat_index < numel(),
              "flat index out of range");
  return data_[static_cast<size_t>(flat_index)];
}

int64_t Tensor::flat_offset(std::initializer_list<int64_t> indices) const {
  ITASK_CHECK(static_cast<int64_t>(indices.size()) == ndim(),
              "index rank mismatch for shape " + shape_to_string(shape_));
  int64_t offset = 0;
  size_t axis = 0;
  for (int64_t idx : indices) {
    const int64_t extent = shape_[axis];
    ITASK_CHECK(idx >= 0 && idx < extent, "index out of range on axis");
    offset = offset * extent + idx;
    ++axis;
  }
  return offset;
}

float& Tensor::at(std::initializer_list<int64_t> indices) {
  return data_[static_cast<size_t>(flat_offset(indices))];
}

float Tensor::at(std::initializer_list<int64_t> indices) const {
  return data_[static_cast<size_t>(flat_offset(indices))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  ITASK_CHECK(shape_numel(new_shape) == numel(),
              "reshape element count mismatch: " + shape_to_string(shape_) +
                  " -> " + shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::row(int64_t i) const {
  ITASK_CHECK(ndim() == 2, "row() requires a 2-D tensor");
  return index(i);
}

Tensor Tensor::index(int64_t i) const {
  ITASK_CHECK(ndim() >= 1, "index() requires at least 1-D");
  const int64_t lead = shape_[0];
  ITASK_CHECK(i >= 0 && i < lead, "index() out of range");
  Shape sub(shape_.begin() + 1, shape_.end());
  const int64_t stride = shape_numel(sub);
  std::vector<float> values(data_.begin() + i * stride,
                            data_.begin() + (i + 1) * stride);
  return Tensor(std::move(sub), std::move(values));
}

void Tensor::set_index(int64_t i, const Tensor& value) {
  ITASK_CHECK(ndim() >= 1, "set_index() requires at least 1-D");
  const int64_t lead = shape_[0];
  ITASK_CHECK(i >= 0 && i < lead, "set_index() out of range");
  Shape sub(shape_.begin() + 1, shape_.end());
  ITASK_CHECK(value.shape() == sub, "set_index() shape mismatch");
  const int64_t stride = shape_numel(sub);
  std::copy(value.data_.begin(), value.data_.end(),
            data_.begin() + i * stride);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    const float diff = data_[i] - other.data_[i];
    if (diff > atol || diff < -atol) return false;
  }
  return true;
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < show; ++i) {
    if (i != 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > show) os << ", …";
  os << '}';
  return os.str();
}

}  // namespace itask
