#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "tensor/arena.h"

namespace itask {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ITASK_CHECK(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

void Tensor::allocate(float fill) {
  allocate_uninit();
  std::fill_n(data_, numel_, fill);
}

// Note: a default-constructed Tensor has an empty shape AND numel 0, while
// shape_numel({}) is 1 (a scalar) — so copies/views size themselves from the
// source's numel, never by recomputing it from the shape.
void Tensor::allocate_uninit() {
  if (Arena* arena = ArenaScope::current()) {
    data_ = static_cast<float*>(
        arena->allocate(numel_ * static_cast<int64_t>(sizeof(float))));
  } else {
    // heap_.resize value-initialises; the "uninit" contract only matters on
    // the arena path, where memory is reused across resets. Every caller of
    // allocate_uninit overwrites the full extent (or fills, for allocate).
    heap_.resize(static_cast<size_t>(numel_));
    data_ = heap_.data();
  }
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  allocate(0.0f);
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  allocate(fill);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), heap_(std::move(values)) {
  ITASK_CHECK(static_cast<int64_t>(heap_.size()) == shape_numel(shape_),
              "value count does not match shape " + shape_to_string(shape_));
  numel_ = static_cast<int64_t>(heap_.size());
  data_ = heap_.data();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), numel_(other.numel_) {
  allocate_uninit();
  if (numel_ > 0)
    std::memcpy(data_, other.data_,
                static_cast<size_t>(numel_) * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    Tensor copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      data_(other.data_),
      numel_(other.numel_),
      heap_(std::move(other.heap_)) {
  // A moved vector keeps its buffer, so a heap-backed data_ stays valid.
  other.shape_ = Shape{};
  other.data_ = nullptr;
  other.numel_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    shape_ = other.shape_;
    data_ = other.data_;
    numel_ = other.numel_;
    heap_ = std::move(other.heap_);
    other.shape_ = Shape{};
    other.data_ = nullptr;
    other.numel_ = 0;
  }
  return *this;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const int64_t r = static_cast<int64_t>(rows.size());
  ITASK_CHECK(r > 0, "from_rows needs at least one row");
  const int64_t c = static_cast<int64_t>(rows.begin()->size());
  std::vector<float> values;
  values.reserve(static_cast<size_t>(r * c));
  for (const auto& row : rows) {
    ITASK_CHECK(static_cast<int64_t>(row.size()) == c,
                "ragged rows in from_rows");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(values));
}

Tensor Tensor::borrow(Shape shape, std::span<const float> storage) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  ITASK_CHECK(static_cast<int64_t>(storage.size()) == t.numel_,
              "borrow: storage size does not match shape " +
                  shape_to_string(t.shape_));
  // Read-only by contract (see tensor.h); the view itself never writes.
  t.data_ = const_cast<float*>(storage.data());
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  ITASK_CHECK(i >= 0 && i < ndim(), "dim index out of range");
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::operator[](int64_t flat_index) {
  ITASK_CHECK(flat_index >= 0 && flat_index < numel(),
              "flat index out of range");
  return data_[flat_index];
}

float Tensor::operator[](int64_t flat_index) const {
  ITASK_CHECK(flat_index >= 0 && flat_index < numel(),
              "flat index out of range");
  return data_[flat_index];
}

int64_t Tensor::flat_offset(std::initializer_list<int64_t> indices) const {
  ITASK_CHECK(static_cast<int64_t>(indices.size()) == ndim(),
              "index rank mismatch for shape " + shape_to_string(shape_));
  int64_t offset = 0;
  size_t axis = 0;
  for (int64_t idx : indices) {
    const int64_t extent = shape_[axis];
    ITASK_CHECK(idx >= 0 && idx < extent, "index out of range on axis");
    offset = offset * extent + idx;
    ++axis;
  }
  return offset;
}

float& Tensor::at(std::initializer_list<int64_t> indices) {
  return data_[flat_offset(indices)];
}

float Tensor::at(std::initializer_list<int64_t> indices) const {
  return data_[flat_offset(indices)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  ITASK_CHECK(shape_numel(new_shape) == numel(),
              "reshape element count mismatch: " + shape_to_string(shape_) +
                  " -> " + shape_to_string(new_shape));
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  out.allocate_uninit();
  if (out.numel_ > 0)
    std::memcpy(out.data_, data_,
                static_cast<size_t>(out.numel_) * sizeof(float));
  return out;
}

Tensor Tensor::row(int64_t i) const {
  ITASK_CHECK(ndim() == 2, "row() requires a 2-D tensor");
  return index(i);
}

Tensor Tensor::index(int64_t i) const {
  ITASK_CHECK(ndim() >= 1, "index() requires at least 1-D");
  const int64_t lead = shape_[0];
  ITASK_CHECK(i >= 0 && i < lead, "index() out of range");
  Tensor out;
  out.shape_ = Shape(shape_.begin() + 1, shape_.end());
  out.numel_ = shape_numel(out.shape_);
  out.allocate_uninit();
  if (out.numel_ > 0)
    std::memcpy(out.data_, data_ + i * out.numel_,
                static_cast<size_t>(out.numel_) * sizeof(float));
  return out;
}

void Tensor::set_index(int64_t i, const Tensor& value) {
  ITASK_CHECK(ndim() >= 1, "set_index() requires at least 1-D");
  const int64_t lead = shape_[0];
  ITASK_CHECK(i >= 0 && i < lead, "set_index() out of range");
  const Shape sub(shape_.begin() + 1, shape_.end());
  ITASK_CHECK(value.shape() == sub, "set_index() shape mismatch");
  const int64_t stride = shape_numel(sub);
  if (stride > 0)
    std::memcpy(data_ + i * stride, value.data_,
                static_cast<size_t>(stride) * sizeof(float));
}

void Tensor::fill(float value) { std::fill_n(data_, numel_, value); }

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < numel_; ++i) {
    const float diff = data_[i] - other.data_[i];
    if (diff > atol || diff < -atol) return false;
  }
  return true;
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < show; ++i) {
    if (i != 0) os << ", ";
    os << data_[i];
  }
  if (numel() > show) os << ", …";
  os << '}';
  return os.str();
}

}  // namespace itask
