// itask::Tensor — minimal dense FP32 tensor used throughout the iTask stack.
//
// Design notes (see DESIGN.md §6):
//  * Row-major contiguous storage, value semantics. At the model sizes this
//    reproduction trains (tiny ViTs), copies are cheap and keep the code
//    obviously correct; no view/stride machinery is needed.
//  * All shape arithmetic uses int64_t to avoid narrowing surprises.
//  * Errors are programming errors, reported via ITASK_CHECK (throws
//    std::invalid_argument) so tests can assert on misuse.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace itask {

/// Throws std::invalid_argument with a formatted message when `cond` is false.
/// Used for shape/precondition checks across the tensor and nn libraries.
#define ITASK_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw std::invalid_argument(std::string("itask: ") + (msg) +    \
                                  " [" #cond "]");                    \
    }                                                                 \
  } while (false)

using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape (product of dims).
int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering of a shape, for error messages.
std::string shape_to_string(const Shape& shape);

/// Dense row-major FP32 tensor with value semantics.
class Tensor {
 public:
  /// Empty tensor: zero dims, zero elements.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor with explicit contents; `values.size()` must equal the shape's
  /// element count.
  Tensor(Shape shape, std::vector<float> values);

  /// Builds a 1-D tensor from a list of values.
  static Tensor from_values(std::initializer_list<float> values);

  /// Builds a 2-D tensor from nested lists; all rows must be equal length.
  static Tensor from_rows(
      std::initializer_list<std::initializer_list<float>> rows);

  const Shape& shape() const { return shape_; }
  int64_t dim(int64_t i) const;
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return std::span<float>(data_); }
  std::span<const float> data() const { return std::span<const float>(data_); }

  /// Flat element access (row-major order).
  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;

  /// Multi-dimensional access; the number of indices must equal ndim().
  float& at(std::initializer_list<int64_t> indices);
  float at(std::initializer_list<int64_t> indices) const;

  /// Returns a copy with the new shape; element count must match.
  Tensor reshape(Shape new_shape) const;

  /// Returns a copy of row `i` of a 2-D tensor as a 1-D tensor.
  Tensor row(int64_t i) const;

  /// Returns a copy of sub-tensor `t[i]` (drops the leading dimension).
  Tensor index(int64_t i) const;

  /// Writes `value` (shape = this->shape() minus leading dim) into slot `i`.
  void set_index(int64_t i, const Tensor& value);

  void fill(float value);

  /// True when shapes are equal and all elements differ by at most `atol`.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  /// Summarised "Tensor[2, 3] {…}" string (first few elements) for debugging.
  std::string to_string() const;

 private:
  int64_t flat_offset(std::initializer_list<int64_t> indices) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace itask
