// itask::Tensor — minimal dense FP32 tensor used throughout the iTask stack.
//
// Design notes (see DESIGN.md §6):
//  * Row-major contiguous storage, value semantics. At the model sizes this
//    reproduction trains (tiny ViTs), copies are cheap and keep the code
//    obviously correct; no view/stride machinery is needed.
//  * All shape arithmetic uses int64_t to avoid narrowing surprises.
//  * Errors are programming errors, reported via ITASK_CHECK (throws
//    std::invalid_argument) so tests can assert on misuse.
//  * Allocator seam (tensor/arena.h): a tensor owns a heap vector by
//    default, but while an ArenaScope is bound on the constructing thread,
//    new storage comes from that arena instead — same values, same layout,
//    no heap traffic. Arena-backed tensors are invalidated by the arena's
//    reset(); they must not outlive the scope's owner (the runtime ends its
//    scope before anything escapes a worker). Tensor::borrow() additionally
//    gives a non-owning view over caller storage.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace itask {

/// Dense row-major FP32 tensor with value semantics.
class Tensor {
 public:
  /// Empty tensor: zero dims, zero elements.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor with explicit contents; `values.size()` must equal the shape's
  /// element count. Always adopts the vector as heap storage (the values
  /// were already allocated), even under an ArenaScope.
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  /// Builds a 1-D tensor from a list of values.
  static Tensor from_values(std::initializer_list<float> values);

  /// Builds a 2-D tensor from nested lists; all rows must be equal length.
  static Tensor from_rows(
      std::initializer_list<std::initializer_list<float>> rows);

  /// Non-owning read-only view over caller storage (no copy, no
  /// allocation) — how the runtime serves a singleton group straight from
  /// the request's own tensor. Contract: the storage outlives the view and
  /// the view is only read through const access; copying it makes a normal
  /// owning tensor.
  static Tensor borrow(Shape shape, std::span<const float> storage);

  const Shape& shape() const { return shape_; }
  int64_t dim(int64_t i) const;
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  std::span<float> data() {
    return std::span<float>(data_, static_cast<size_t>(numel_));
  }
  std::span<const float> data() const {
    return std::span<const float>(data_, static_cast<size_t>(numel_));
  }

  /// Flat element access (row-major order).
  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;

  /// Multi-dimensional access; the number of indices must equal ndim().
  float& at(std::initializer_list<int64_t> indices);
  float at(std::initializer_list<int64_t> indices) const;

  /// Returns a copy with the new shape; element count must match.
  Tensor reshape(Shape new_shape) const;

  /// Returns a copy of row `i` of a 2-D tensor as a 1-D tensor.
  Tensor row(int64_t i) const;

  /// Returns a copy of sub-tensor `t[i]` (drops the leading dimension).
  Tensor index(int64_t i) const;

  /// Writes `value` (shape = this->shape() minus leading dim) into slot `i`.
  void set_index(int64_t i, const Tensor& value);

  void fill(float value);

  /// True when shapes are equal and all elements differ by at most `atol`.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  /// Summarised "Tensor[2, 3] {…}" string (first few elements) for debugging.
  std::string to_string() const;

 private:
  int64_t flat_offset(std::initializer_list<int64_t> indices) const;
  /// Sizes storage for shape_ via the current allocation policy (arena when
  /// an ArenaScope is bound, heap otherwise) and fills it.
  void allocate(float fill);
  /// Same, leaving arena storage uninitialised (callers overwrite fully).
  void allocate_uninit();

  Shape shape_;
  float* data_ = nullptr;
  int64_t numel_ = 0;
  /// Owning storage on the heap policy; empty for arena-backed or borrowed
  /// tensors (whose data_ the tensor does not own).
  std::vector<float> heap_;
};

}  // namespace itask
