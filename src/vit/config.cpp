#include "vit/config.h"

#include <sstream>

namespace itask::vit {

ViTConfig ViTConfig::teacher() {
  ViTConfig c;
  c.dim = 64;
  c.depth = 4;
  c.heads = 4;
  c.mlp_ratio = 2;
  return c;
}

ViTConfig ViTConfig::student() {
  ViTConfig c;
  c.dim = 40;
  c.depth = 2;
  c.heads = 4;
  c.mlp_ratio = 2;
  return c;
}

std::string ViTConfig::to_string() const {
  std::ostringstream os;
  os << "ViT(img=" << image_size << ", patch=" << patch_size
     << ", dim=" << dim << ", depth=" << depth << ", heads=" << heads
     << ", mlp=" << mlp_hidden() << ", classes=" << num_classes
     << ", attrs=" << num_attributes << ")";
  return os.str();
}

}  // namespace itask::vit
