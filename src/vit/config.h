// Vision-transformer configuration and the teacher/student presets used by
// the iTask dual-configuration scheme (DESIGN.md §2.3).
#pragma once

#include <cstdint>
#include <string>

namespace itask::vit {

/// Hyper-parameters of a detection ViT. The patch grid doubles as the
/// detection grid: each patch token predicts objectness/class/attributes/box
/// for its cell.
struct ViTConfig {
  int64_t image_size = 24;
  int64_t patch_size = 8;
  int64_t channels = 3;
  int64_t dim = 48;
  int64_t depth = 3;
  int64_t heads = 4;
  int64_t mlp_ratio = 2;
  int64_t num_classes = 13;     // object classes, including background = 0
  int64_t num_attributes = 16;  // abstract attribute vocabulary size

  /// Patch tokens per image (excludes the CLS token).
  int64_t tokens() const {
    const int64_t g = image_size / patch_size;
    return g * g;
  }
  int64_t grid() const { return image_size / patch_size; }
  int64_t mlp_hidden() const { return dim * mlp_ratio; }

  /// The high-capacity model trained on the full multi-task corpus; source
  /// of distillation targets.
  static ViTConfig teacher();

  /// The compact model distilled per task (task-specific configuration) or
  /// quantized for the multi-task configuration.
  static ViTConfig student();

  std::string to_string() const;
};

}  // namespace itask::vit
