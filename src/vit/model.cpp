#include "vit/model.h"

#include "tensor/ops.h"

namespace itask::vit {

VitModel::VitModel(const ViTConfig& config, Rng& rng)
    : config_(config),
      embed_(config.image_size, config.patch_size, config.channels, config.dim,
             rng),
      encoder_(config.dim, config.depth, config.heads, config.mlp_hidden(),
               rng),
      obj_head_(config.dim, 1, rng),
      cls_head_(config.dim, config.num_classes, rng),
      attr_head_(config.dim, config.num_attributes, rng),
      box_fc1_(config.dim, config.dim, rng),
      box_fc2_(config.dim, 4, rng),
      rel_head_(config.dim, 1, rng) {
  register_child("embed", embed_);
  register_child("encoder", encoder_);
  register_child("obj_head", obj_head_);
  register_child("cls_head", cls_head_);
  register_child("attr_head", attr_head_);
  register_child("box_fc1", box_fc1_);
  register_child("box_fc2", box_fc2_);
  register_child("rel_head", rel_head_);
  // Prior: objects are ~0.55 of a cell, so start the log-size outputs there
  // instead of at zero (log 1.0) — halves the box-regression burn-in.
  if (nn::Parameter* bias = box_fc2_.bias(); bias != nullptr) {
    bias->value[2] = -0.6f;
    bias->value[3] = -0.6f;
  }
}

Tensor VitModel::patch_tokens(const Tensor& tokens) const {
  const int64_t b = tokens.dim(0);
  const int64_t t = config_.tokens();
  const int64_t d = config_.dim;
  Tensor out({b, t, d});
  auto in = tokens.data();
  auto o = out.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* src = in.data() + (bi * (t + 1) + 1) * d;
    std::copy(src, src + t * d, o.data() + bi * t * d);
  }
  return out;
}

VitOutput VitModel::forward(const Tensor& images) {
  const int64_t b = images.dim(0);
  cached_batch_ = b;
  Tensor tokens = encoder_.forward(embed_.forward(images));  // [B, T+1, D]
  Tensor patches = patch_tokens(tokens);                     // [B, T, D]
  VitOutput out;
  out.objectness = obj_head_.forward(patches);
  out.class_logits = cls_head_.forward(patches);
  out.attr_logits = attr_head_.forward(patches);
  out.box_deltas = box_fc2_.forward(box_gelu_.forward(box_fc1_.forward(patches)));
  out.relevance = rel_head_.forward(patches);
  out.features = std::move(tokens);
  return out;
}

VitOutput VitModel::infer(const Tensor& images) const {
  Tensor tokens = encoder_.infer(embed_.infer(images));  // [B, T+1, D]
  Tensor patches = patch_tokens(tokens);                 // [B, T, D]
  VitOutput out;
  out.objectness = obj_head_.infer(patches);
  out.class_logits = cls_head_.infer(patches);
  out.attr_logits = attr_head_.infer(patches);
  out.box_deltas = box_fc2_.infer(box_gelu_.infer(box_fc1_.infer(patches)));
  out.relevance = rel_head_.infer(patches);
  out.features = std::move(tokens);
  return out;
}

Tensor VitModel::backward(const VitOutputGrads& grads) {
  ITASK_CHECK(cached_batch_ > 0, "VitModel: backward before forward");
  const int64_t b = cached_batch_;
  const int64_t t = config_.tokens();
  const int64_t d = config_.dim;
  // Accumulate per-patch gradients from each active head.
  Tensor d_patches({b, t, d});
  if (!grads.objectness.empty())
    ops::add_inplace(d_patches, obj_head_.backward(grads.objectness));
  if (!grads.class_logits.empty())
    ops::add_inplace(d_patches, cls_head_.backward(grads.class_logits));
  if (!grads.attr_logits.empty())
    ops::add_inplace(d_patches, attr_head_.backward(grads.attr_logits));
  if (!grads.box_deltas.empty())
    ops::add_inplace(
        d_patches,
        box_fc1_.backward(box_gelu_.backward(box_fc2_.backward(grads.box_deltas))));
  if (!grads.relevance.empty())
    ops::add_inplace(d_patches, rel_head_.backward(grads.relevance));
  // Scatter patch grads into the full token layout (CLS slot gets the
  // feature-distillation gradient, if any).
  Tensor d_tokens({b, t + 1, d});
  {
    auto dp = d_patches.data();
    auto dt = d_tokens.data();
    for (int64_t bi = 0; bi < b; ++bi) {
      float* dst = dt.data() + (bi * (t + 1) + 1) * d;
      std::copy(dp.data() + bi * t * d, dp.data() + (bi + 1) * t * d, dst);
    }
  }
  if (!grads.features.empty()) {
    ITASK_CHECK(grads.features.shape() == d_tokens.shape(),
                "VitModel: feature grad shape mismatch");
    ops::add_inplace(d_tokens, grads.features);
  }
  return embed_.backward(encoder_.backward(d_tokens));
}

}  // namespace itask::vit

namespace itask::vit {

Tensor VitModel::attention_rollout() const {
  ITASK_CHECK(cached_batch_ > 0, "attention_rollout: forward first");
  const int64_t b = cached_batch_;
  const int64_t t = config_.tokens() + 1;
  const int64_t heads = config_.heads;
  // rollout starts as identity per image.
  Tensor rollout({b, t, t});
  for (int64_t bi = 0; bi < b; ++bi)
    for (int64_t i = 0; i < t; ++i) rollout.at({bi, i, i}) = 1.0f;
  for (int64_t blk = 0; blk < config_.depth; ++blk) {
    const Tensor& attn = encoder_.block(blk).attention().last_attention();
    ITASK_CHECK(!attn.empty(), "attention_rollout: missing attention cache");
    // Head-average into [B, T, T] and mix with the residual path.
    Tensor layer({b, t, t});
    auto a = attn.data();
    auto l = layer.data();
    const float inv_h = 1.0f / static_cast<float>(heads);
    for (int64_t bi = 0; bi < b; ++bi)
      for (int64_t h = 0; h < heads; ++h) {
        const float* src = a.data() + ((bi * heads + h) * t) * t;
        float* dst = l.data() + bi * t * t;
        for (int64_t i = 0; i < t * t; ++i) dst[i] += src[i] * inv_h;
      }
    for (int64_t bi = 0; bi < b; ++bi)
      for (int64_t i = 0; i < t; ++i) {
        for (int64_t j = 0; j < t; ++j) {
          float& v = layer.at({bi, i, j});
          v = 0.5f * v + (i == j ? 0.5f : 0.0f);
        }
      }
    rollout = ops::bmm(layer, rollout);
  }
  return rollout;
}

}  // namespace itask::vit
