// The detection Vision Transformer: patch embedding, encoder, and four
// per-patch prediction heads (objectness, class, attributes, box offsets).
//
// The patch grid doubles as the detection grid, so token t (t >= 1 after the
// CLS token) predicts for grid cell t-1. This keeps the detection formulation
// fully transformer-native while staying cheap enough to train on one core.
#pragma once

#include <optional>

#include "nn/activation.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/transformer.h"
#include "vit/config.h"

namespace itask::vit {

/// Per-batch raw model outputs (logits; apply sigmoid/softmax downstream).
struct VitOutput {
  Tensor objectness;  // [B, T, 1]
  Tensor class_logits;// [B, T, C]
  Tensor attr_logits; // [B, T, A]
  Tensor box_deltas;  // [B, T, 4] (dx, dy, dw, dh relative to the cell)
  Tensor relevance;   // [B, T, 1] task-relevance logit (task-specific config)
  Tensor features;    // [B, T+1, D] encoder output (distillation target)
};

/// Upstream gradients for backward(); any tensor may be empty (treated as 0).
struct VitOutputGrads {
  Tensor objectness;   // [B, T, 1]
  Tensor class_logits; // [B, T, C]
  Tensor attr_logits;  // [B, T, A]
  Tensor box_deltas;   // [B, T, 4]
  Tensor relevance;    // [B, T, 1]
  Tensor features;     // [B, T+1, D] (feature-distillation gradient)
};

class VitModel : public nn::Module {
 public:
  VitModel(const ViTConfig& config, Rng& rng);

  const ViTConfig& config() const { return config_; }

  /// Forward over a batch of images [B, C, H, W].
  VitOutput forward(const Tensor& images);

  /// Cache-free forward for concurrent inference: numerically identical to
  /// forward() but touches no mutable state, so many threads may call it on
  /// one model at once. Does not feed backward() or attention_rollout().
  VitOutput infer(const Tensor& images) const;

  /// Attention rollout (Abnar & Zuidema, 2020) of the most recent forward:
  /// per-image token-to-token attribution [B, T+1, T+1] obtained by
  /// propagating head-averaged attention (with residual mixing 0.5A + 0.5I)
  /// through the encoder stack. Row t says which input tokens token t's
  /// final representation draws on — the interpretability view of which
  /// cells ground a detection.
  Tensor attention_rollout() const;

  /// Accumulates gradients for all heads + encoder + embedding.
  /// Returns the gradient w.r.t. the input images.
  Tensor backward(const VitOutputGrads& grads);

 private:
  /// Splits encoder output into (cls [B,1,D], patches [B,T,D]).
  Tensor patch_tokens(const Tensor& tokens) const;

  ViTConfig config_;
  nn::PatchEmbed embed_;
  nn::TransformerEncoder encoder_;
  nn::Linear obj_head_;
  nn::Linear cls_head_;
  nn::Linear attr_head_;
  // Box regression gets a small MLP: precise sub-cell localisation needs
  // more than a linear probe of the token (measured: +0.1 mean IoU).
  nn::Linear box_fc1_;
  nn::Gelu box_gelu_;
  nn::Linear box_fc2_;
  nn::Linear rel_head_;
  int64_t cached_batch_ = 0;
};

}  // namespace itask::vit
