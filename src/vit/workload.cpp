#include "vit/workload.h"

#include "tensor/tensor.h"

namespace itask::vit {

int64_t InferenceWorkload::total_macs() const {
  int64_t acc = 0;
  for (const GemmOp& g : gemms) acc += g.macs();
  return acc;
}

int64_t InferenceWorkload::total_weight_bytes_int8() const {
  int64_t acc = 0;
  for (const GemmOp& g : gemms) acc += g.weight_bytes_int8();
  return acc;
}

int64_t InferenceWorkload::total_activation_bytes_int8() const {
  int64_t acc = 0;
  for (const GemmOp& g : gemms)
    acc += g.input_bytes_int8() + g.output_bytes_int8();
  return acc;
}

double InferenceWorkload::total_vector_flops() const {
  double acc = 0.0;
  for (const VectorOp& v : vector_ops)
    acc += static_cast<double>(v.elements) * v.flops_per_element;
  return acc;
}

InferenceWorkload build_workload(const ViTConfig& c, int64_t batch,
                                 const std::string& model_name) {
  ITASK_CHECK(batch >= 1, "build_workload: batch must be >= 1");
  InferenceWorkload w;
  w.model_name = model_name;
  w.batch = batch;
  const int64_t t = c.tokens() + 1;  // tokens incl. CLS
  const int64_t d = c.dim;
  const int64_t hd = d / c.heads;
  const int64_t pv = c.channels * c.patch_size * c.patch_size;
  const int64_t rows = batch * t;

  w.gemms.push_back({"patch_embed", batch * c.tokens(), pv, d, true});
  for (int64_t blk = 0; blk < c.depth; ++blk) {
    const std::string p = "block" + std::to_string(blk) + ".";
    w.vector_ops.push_back({p + "ln1", rows * d, 6.0});
    w.gemms.push_back({p + "qkv", rows, d, 3 * d, true});
    // Attention products are activation×activation: one logical GEMM per
    // (batch, head) pair, folded into a single row-blocked op.
    w.gemms.push_back({p + "attn_scores", batch * c.heads * t, hd, t, false});
    w.vector_ops.push_back({p + "softmax", batch * c.heads * t * t, 4.0});
    w.gemms.push_back({p + "attn_value", batch * c.heads * t, t, hd, false});
    w.gemms.push_back({p + "proj", rows, d, d, true});
    w.vector_ops.push_back({p + "ln2", rows * d, 6.0});
    w.gemms.push_back({p + "fc1", rows, d, c.mlp_hidden(), true});
    w.vector_ops.push_back({p + "gelu", rows * c.mlp_hidden(), 8.0});
    w.gemms.push_back({p + "fc2", rows, c.mlp_hidden(), d, true});
  }
  w.vector_ops.push_back({"final_ln", rows * d, 6.0});
  const int64_t prows = batch * c.tokens();
  w.gemms.push_back({"obj_head", prows, d, 1, true});
  w.gemms.push_back({"cls_head", prows, d, c.num_classes, true});
  w.gemms.push_back({"attr_head", prows, d, c.num_attributes, true});
  w.gemms.push_back({"box_fc1", prows, d, d, true});
  w.gemms.push_back({"box_fc2", prows, d, 4, true});
  w.gemms.push_back({"rel_head", prows, d, 1, true});
  w.vector_ops.push_back({"head_activations",
                          prows * (1 + c.num_classes + c.num_attributes),
                          3.0});
  return w;
}

}  // namespace itask::vit
