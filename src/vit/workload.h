// Bridges the ViT model to the hardware simulator: describes one inference
// as an ordered list of GEMM and vector operations with exact dimensions.
// The accelerator scheduler (accel/) consumes this; it never needs to see
// tensors, only shapes — the same separation a real compiler stack has.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vit/config.h"

namespace itask::vit {

/// One matrix multiplication [m, k] x [k, n]. `weight_resident` is true when
/// the B operand is a static weight (can be pre-staged / reused across
/// batches); false for activation×activation products (attention).
struct GemmOp {
  std::string name;
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  bool weight_resident = true;

  int64_t macs() const { return m * k * n; }
  int64_t weight_bytes_int8() const { return weight_resident ? k * n : 0; }
  int64_t input_bytes_int8() const { return m * k; }
  int64_t output_bytes_int8() const { return m * n; }
};

/// One elementwise / row-wise vector operation (softmax, layernorm, GELU…)
/// executed on the accelerator's vector unit or the GPU's SIMT lanes.
struct VectorOp {
  std::string name;
  int64_t elements = 0;
  /// Relative cost per element (softmax ≈ 4 flops/elt, layernorm ≈ 6, …).
  double flops_per_element = 1.0;
};

/// A full single-model inference, in execution order.
struct InferenceWorkload {
  std::string model_name;
  int64_t batch = 1;
  std::vector<GemmOp> gemms;
  std::vector<VectorOp> vector_ops;

  int64_t total_macs() const;
  int64_t total_weight_bytes_int8() const;
  int64_t total_activation_bytes_int8() const;
  double total_vector_flops() const;
  /// Number of distinct kernels a GPU launch would issue (one per op).
  int64_t kernel_count() const {
    return static_cast<int64_t>(gemms.size() + vector_ops.size());
  }
};

/// Enumerates every op of a detection-ViT forward pass at batch size `batch`.
InferenceWorkload build_workload(const ViTConfig& config, int64_t batch,
                                 const std::string& model_name = "vit");

}  // namespace itask::vit
