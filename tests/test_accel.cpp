// Hardware-simulator tests: closed-form cycle counts, tiling/monotonicity
// properties, residency, energy accounting, and the GPU cost model.
#include <gtest/gtest.h>

#include "accel/gpu_model.h"
#include "accel/systolic.h"

namespace itask::accel {
namespace {

vit::GemmOp gemm(int64_t m, int64_t k, int64_t n, bool resident = true) {
  vit::GemmOp op;
  op.name = "g";
  op.m = m;
  op.k = k;
  op.n = n;
  op.weight_resident = resident;
  return op;
}

TEST(Systolic, ExactFitClosedForm) {
  SystolicConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.double_buffered = true;
  const SystolicArray array(cfg);
  // k = rows, n = cols → exactly one tile.
  const GemmTiming t = array.simulate_gemm(gemm(10, 8, 8));
  EXPECT_EQ(t.tiles, 1);
  EXPECT_EQ(t.compute_cycles, 10 + 8 + 8 - 2);
  EXPECT_EQ(t.weight_load_cycles, 8);  // first tile load not hidden
  EXPECT_EQ(t.total_cycles, t.compute_cycles + 8);
}

TEST(Systolic, TileCountCeils) {
  SystolicConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const SystolicArray array(cfg);
  EXPECT_EQ(array.simulate_gemm(gemm(4, 9, 8)).tiles, 2);   // ceil(9/8)=2
  EXPECT_EQ(array.simulate_gemm(gemm(4, 16, 17)).tiles, 6); // 2 × 3
  EXPECT_EQ(array.simulate_gemm(gemm(4, 1, 1)).tiles, 1);
}

TEST(Systolic, DoubleBufferingHidesWeightLoads) {
  SystolicConfig on;
  on.double_buffered = true;
  SystolicConfig off = on;
  off.double_buffered = false;
  const auto t_on = SystolicArray(on).simulate_gemm(gemm(32, 64, 64));
  const auto t_off = SystolicArray(off).simulate_gemm(gemm(32, 64, 64));
  EXPECT_LT(t_on.weight_load_cycles, t_off.weight_load_cycles);
  EXPECT_LT(t_on.total_cycles, t_off.total_cycles);
  EXPECT_EQ(t_on.compute_cycles, t_off.compute_cycles);
}

class PeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeSweep, MorePesNeverSlower) {
  const int64_t pe = GetParam();
  SystolicConfig small;
  small.rows = pe;
  small.cols = pe;
  SystolicConfig big;
  big.rows = pe * 2;
  big.cols = pe * 2;
  const vit::GemmOp op = gemm(24, 96, 64);
  const auto t_small = SystolicArray(small).simulate_gemm(op);
  const auto t_big = SystolicArray(big).simulate_gemm(op);
  EXPECT_LE(t_big.total_cycles, t_small.total_cycles);
}

TEST_P(PeSweep, UtilizationInUnitRange) {
  const int64_t pe = GetParam();
  SystolicConfig cfg;
  cfg.rows = pe;
  cfg.cols = pe;
  const auto t = SystolicArray(cfg).simulate_gemm(gemm(16, 48, 40));
  EXPECT_GT(t.utilization, 0.0);
  EXPECT_LE(t.utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PeSweep, ::testing::Values(4, 8, 16, 32));

TEST(Systolic, ResidentWeightsSkipDram) {
  const vit::ViTConfig model = vit::ViTConfig::student();
  const auto workload = vit::build_workload(model, 1);
  SystolicConfig cfg;
  cfg.sram_kb = 1024;  // plenty: weights resident
  const SimReport resident = SystolicArray(cfg).run(workload);
  for (const auto& layer : resident.layers) EXPECT_EQ(layer.dram_bytes, 0);
  cfg.weights_resident = false;
  const SimReport streaming = SystolicArray(cfg).run(workload);
  int64_t dram = 0;
  for (const auto& layer : streaming.layers) dram += layer.dram_bytes;
  EXPECT_GT(dram, 0);
  EXPECT_GT(streaming.dynamic_energy_uj, resident.dynamic_energy_uj);
}

TEST(Systolic, FrameDeadlineEnforced) {
  const vit::ViTConfig model = vit::ViTConfig::student();
  const auto workload = vit::build_workload(model, 1);
  const SystolicArray array;
  EXPECT_NO_THROW(array.run(workload, 30.0));
  // An absurd frame rate the accelerator cannot meet must throw.
  EXPECT_THROW(array.run(workload, 1e6), std::invalid_argument);
}

TEST(Systolic, ReportTotalsAreConsistent) {
  const auto workload = vit::build_workload(vit::ViTConfig::student(), 1);
  const SimReport r = SystolicArray().run(workload);
  EXPECT_GT(r.total_micros, 0.0);
  EXPECT_NEAR(r.fps_capability, 1e6 / r.total_micros, 1e-6);
  double layer_energy = 0.0;
  for (const auto& l : r.layers) layer_energy += l.dynamic_energy_uj;
  // Totals include activation-I/O DMA energy on top of per-layer terms.
  EXPECT_GE(r.dynamic_energy_uj, layer_energy);
  EXPECT_EQ(r.layers.size(),
            workload.gemms.size() + workload.vector_ops.size());
}

TEST(Systolic, BadConfigThrows) {
  SystolicConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(SystolicArray{cfg}, std::invalid_argument);
  SystolicConfig cfg2;
  cfg2.freq_mhz = 0.0;
  EXPECT_THROW(SystolicArray{cfg2}, std::invalid_argument);
}

TEST(Gpu, LaunchOverheadFloorsLatency) {
  const auto workload = vit::build_workload(vit::ViTConfig::student(), 1);
  GpuConfig cfg;
  const SimReport r = GpuModel(cfg).run(workload);
  EXPECT_GE(r.total_micros,
            cfg.kernel_launch_us *
                static_cast<double>(workload.kernel_count()));
}

TEST(Gpu, OccupancyPenalisesTinyKernels) {
  GpuModel gpu;
  // Same FLOPs, one big vs many small: the batched shape is faster.
  vit::InferenceWorkload big;
  big.gemms.push_back(gemm(512, 512, 512));
  vit::InferenceWorkload small;
  for (int i = 0; i < 64; ++i) small.gemms.push_back(gemm(64, 64, 512));
  const double t_big = gpu.run(big, 10.0).total_micros;
  const double t_small = gpu.run(small, 10.0).total_micros;
  EXPECT_LT(t_big, t_small);
}

TEST(Gpu, EnergyScalesWithSystemPower) {
  const auto workload = vit::build_workload(vit::ViTConfig::student(), 1);
  GpuConfig low;
  low.system.idle_w = 1.0;
  GpuConfig high = low;
  high.system.idle_w = 5.0;
  EXPECT_LT(GpuModel(low).run(workload).frame_energy_mj,
            GpuModel(high).run(workload).frame_energy_mj);
}

TEST(Comparison, RatiosComputedCorrectly) {
  SimReport base;
  base.total_micros = 100.0;
  base.dynamic_energy_uj = 10.0;
  base.frame_energy_mj = 50.0;
  SimReport cand;
  cand.total_micros = 25.0;
  cand.dynamic_energy_uj = 2.0;
  cand.frame_energy_mj = 30.0;
  const Comparison c = compare(base, cand);
  EXPECT_NEAR(c.speedup, 4.0, 1e-9);
  EXPECT_NEAR(c.dynamic_energy_ratio, 0.2, 1e-9);
  EXPECT_NEAR(c.frame_energy_ratio, 0.6, 1e-9);
}

TEST(Headline, DeploymentPointReproducesPaperRatios) {
  // T2/T3 headline: at the 24 px / batch-1 deployment point the accelerator
  // must land near the paper's 3.5x speedup and ~40% energy reduction.
  const auto workload = vit::build_workload(vit::ViTConfig::student(), 1);
  const SimReport gpu = GpuModel().run(workload);
  const SimReport acc = SystolicArray().run(workload);
  const Comparison c = compare(gpu, acc);
  EXPECT_GT(c.speedup, 3.0);
  EXPECT_LT(c.speedup, 4.2);
  EXPECT_GT(c.frame_energy_ratio, 0.5);
  EXPECT_LT(c.frame_energy_ratio, 0.7);
}

TEST(Report, TableRendersAllLayers) {
  const auto workload = vit::build_workload(vit::ViTConfig::student(), 1);
  const SimReport r = SystolicArray().run(workload);
  const std::string table = r.to_table();
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_NE(table.find("patch_embed"), std::string::npos);
  EXPECT_NE(table.find("qkv"), std::string::npos);
}

}  // namespace
}  // namespace itask::accel
