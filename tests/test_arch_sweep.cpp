// Architecture-sweep property tests: the full model must be correct (shapes,
// gradients, quantized tracking) for every configuration in the deployable
// envelope, not just the two presets.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "quant/qvit.h"
#include "tensor/ops.h"
#include "vit/model.h"
#include "vit/workload.h"

namespace itask::vit {
namespace {

// (dim, depth, heads, image, patch)
using Arch = std::tuple<int, int, int, int, int>;

ViTConfig make_config(const Arch& a) {
  ViTConfig c;
  c.dim = std::get<0>(a);
  c.depth = std::get<1>(a);
  c.heads = std::get<2>(a);
  c.image_size = std::get<3>(a);
  c.patch_size = std::get<4>(a);
  c.num_classes = 5;
  c.num_attributes = 6;
  return c;
}

class ArchSweep : public ::testing::TestWithParam<Arch> {};

TEST_P(ArchSweep, ForwardShapesAndFiniteness) {
  const ViTConfig cfg = make_config(GetParam());
  Rng rng(11);
  VitModel model(cfg, rng);
  const Tensor img = rng.rand({2, 3, cfg.image_size, cfg.image_size});
  const VitOutput out = model.forward(img);
  const int64_t t = cfg.tokens();
  EXPECT_EQ(out.objectness.shape(), (Shape{2, t, 1}));
  EXPECT_EQ(out.class_logits.shape(), (Shape{2, t, 5}));
  EXPECT_EQ(out.attr_logits.shape(), (Shape{2, t, 6}));
  EXPECT_EQ(out.relevance.shape(), (Shape{2, t, 1}));
  EXPECT_EQ(out.features.shape(), (Shape{2, t + 1, cfg.dim}));
  for (float v : out.class_logits.data()) EXPECT_TRUE(std::isfinite(v));
  for (float v : out.box_deltas.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(ArchSweep, BackwardProducesFiniteGradsEverywhere) {
  const ViTConfig cfg = make_config(GetParam());
  Rng rng(13);
  VitModel model(cfg, rng);
  const Tensor img = rng.rand({1, 3, cfg.image_size, cfg.image_size});
  const VitOutput out = model.forward(img);
  VitOutputGrads grads;
  grads.objectness =
      nn::bce_with_logits(out.objectness, Tensor(out.objectness.shape(), 1.0f))
          .grad;
  grads.attr_logits =
      nn::mse(out.attr_logits, Tensor(out.attr_logits.shape(), 0.3f)).grad;
  model.zero_grad();
  model.backward(grads);
  int64_t nonzero_params = 0;
  for (nn::Parameter* p : model.parameters()) {
    bool any = false;
    for (float g : p->grad.data()) {
      EXPECT_TRUE(std::isfinite(g)) << p->name;
      any |= (g != 0.0f);
    }
    if (any) ++nonzero_params;
  }
  // Gradients must reach most of the network (the class/box/rel heads get
  // none here by construction).
  EXPECT_GT(nonzero_params,
            static_cast<int64_t>(model.parameters().size()) / 2);
}

TEST_P(ArchSweep, QuantizedRuntimeTracksFp32) {
  const ViTConfig cfg = make_config(GetParam());
  Rng rng(17);
  VitModel model(cfg, rng);
  model.set_training(false);
  const Tensor img = rng.rand({2, 3, cfg.image_size, cfg.image_size});
  const VitOutput ref = model.forward(img);
  quant::QuantizedVit qvit = quant::QuantizedVit::from_model(model);
  qvit.calibrate(img);
  qvit.finalize();
  const VitOutput out = qvit.forward(img);
  double err = 0.0, mag = 0.0;
  for (int64_t i = 0; i < ref.attr_logits.numel(); ++i) {
    err += std::abs(out.attr_logits[i] - ref.attr_logits[i]);
    mag += std::abs(ref.attr_logits[i]);
  }
  EXPECT_LT(err / std::max(mag, 1e-6), 0.25)
      << "dim=" << cfg.dim << " depth=" << cfg.depth;
}

TEST_P(ArchSweep, WorkloadMacsMatchHandCount) {
  const ViTConfig cfg = make_config(GetParam());
  const auto w = build_workload(cfg, 1);
  // Independent MAC count from first principles.
  const int64_t t = cfg.tokens() + 1;
  const int64_t d = cfg.dim;
  const int64_t hd = d / cfg.heads;
  const int64_t pv = 3 * cfg.patch_size * cfg.patch_size;
  int64_t expected = cfg.tokens() * pv * d;  // patch embed
  expected += cfg.depth *
              (t * d * 3 * d +                      // qkv
               cfg.heads * t * hd * t +             // scores
               cfg.heads * t * t * hd +             // attn·v
               t * d * d +                          // proj
               2 * t * d * cfg.mlp_hidden());       // fc1 + fc2
  expected += cfg.tokens() *
              (d * 1 + d * cfg.num_classes + d * cfg.num_attributes +
               d * d + d * 4 + d * 1);              // heads (box is an MLP)
  EXPECT_EQ(w.total_macs(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, ArchSweep,
    ::testing::Values(Arch{16, 1, 1, 16, 8}, Arch{16, 1, 2, 24, 8},
                      Arch{24, 2, 2, 24, 8}, Arch{32, 2, 4, 24, 8},
                      Arch{40, 2, 4, 24, 8}, Arch{48, 3, 4, 24, 8},
                      Arch{64, 4, 4, 24, 8}, Arch{32, 2, 2, 32, 8},
                      Arch{32, 2, 2, 48, 16}));

}  // namespace
}  // namespace itask::vit
