// Attention, transformer, patch embedding, and full-model gradient checks.
#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "vit/model.h"
#include "vit/workload.h"

namespace itask {
namespace {

using nn::merge_heads;
using nn::split_heads;

TEST(Heads, SplitMergeRoundTrip) {
  Rng rng(1);
  Tensor x = rng.randn({2, 5, 8});
  for (int64_t heads : {1, 2, 4, 8}) {
    Tensor split = split_heads(x, heads);
    EXPECT_EQ(split.shape(), (Shape{2 * heads, 5, 8 / heads}));
    EXPECT_TRUE(merge_heads(split, heads).allclose(x, 0.0f));
  }
}

TEST(Heads, SplitLayout) {
  // [B=1, T=2, D=4], 2 heads: head h sees dims [h*2, h*2+2).
  Tensor x({1, 2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = split_heads(x, 2);
  EXPECT_EQ(s.at({0, 0, 0}), 0.0f);  // head 0, token 0
  EXPECT_EQ(s.at({0, 1, 1}), 5.0f);  // head 0, token 1
  EXPECT_EQ(s.at({1, 0, 0}), 2.0f);  // head 1, token 0
  EXPECT_EQ(s.at({1, 1, 1}), 7.0f);  // head 1, token 1
}

TEST(Heads, IndivisibleThrows) {
  EXPECT_THROW(split_heads(Tensor({1, 2, 5}), 2), std::invalid_argument);
}

TEST(Attention, OutputShapeAndGradCheck) {
  Rng rng(2);
  nn::MultiHeadAttention attn(8, 2, rng);
  const Tensor x = rng.randn({2, 4, 8}, 0.0f, 0.5f);
  Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 8}));
  const Tensor target = rng.randn({2, 4, 8});
  auto loss_fn = [&]() {
    Tensor out = attn.forward(x);
    auto res = nn::mse(out, target);
    attn.backward(res.grad);
    return res.value;
  };
  const auto result = nn::check_gradients(attn, loss_fn, 1e-2f, 4e-2f, 12);
  EXPECT_TRUE(result.ok) << result.worst_parameter << " rel "
                         << result.max_rel_error;
}

TEST(Attention, PermutationEquivariance) {
  // Self-attention without masking is equivariant to token permutation.
  Rng rng(3);
  nn::MultiHeadAttention attn(8, 2, rng);
  Tensor x = rng.randn({1, 3, 8});
  Tensor y = attn.forward(x);
  // Swap tokens 0 and 2 of the input.
  Tensor xp = x;
  for (int64_t j = 0; j < 8; ++j) {
    std::swap(xp.data()[0 * 8 + j], xp.data()[2 * 8 + j]);
  }
  Tensor yp = attn.forward(xp);
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(yp.at({0, 0, j}), y.at({0, 2, j}), 1e-4f);
    EXPECT_NEAR(yp.at({0, 2, j}), y.at({0, 0, j}), 1e-4f);
    EXPECT_NEAR(yp.at({0, 1, j}), y.at({0, 1, j}), 1e-4f);
  }
}

TEST(TransformerBlock, GradCheck) {
  Rng rng(4);
  nn::TransformerBlock block(6, 2, 12, rng);
  const Tensor x = rng.randn({1, 3, 6}, 0.0f, 0.5f);
  const Tensor target = rng.randn({1, 3, 6});
  auto loss_fn = [&]() {
    Tensor y = block.forward(x);
    auto res = nn::mse(y, target);
    block.backward(res.grad);
    return res.value;
  };
  const auto result = nn::check_gradients(block, loss_fn, 1e-2f, 5e-2f, 8);
  EXPECT_TRUE(result.ok) << result.worst_parameter << " rel "
                         << result.max_rel_error;
}

TEST(TransformerEncoder, DepthAndShape) {
  Rng rng(5);
  nn::TransformerEncoder enc(8, 3, 2, 16, rng);
  EXPECT_EQ(enc.depth(), 3);
  Tensor x = rng.randn({2, 5, 8});
  EXPECT_EQ(enc.forward(x).shape(), (Shape{2, 5, 8}));
  EXPECT_THROW(nn::TransformerEncoder(8, 0, 2, 16, rng),
               std::invalid_argument);
}

TEST(Patchify, LayoutAndAdjoint) {
  // 1 image, 1 channel, 4x4, patch 2 → 4 patches of 4 values.
  Tensor img({1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) img[i] = static_cast<float>(i);
  Tensor patches = nn::patchify(img, 2);
  EXPECT_EQ(patches.shape(), (Shape{1, 4, 4}));
  // Patch (0,0) = pixels {0,1,4,5}.
  EXPECT_EQ(patches.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(patches.at({0, 0, 1}), 1.0f);
  EXPECT_EQ(patches.at({0, 0, 2}), 4.0f);
  EXPECT_EQ(patches.at({0, 0, 3}), 5.0f);
  // Patch (1,1) = pixels {10,11,14,15}.
  EXPECT_EQ(patches.at({0, 3, 0}), 10.0f);
  EXPECT_EQ(patches.at({0, 3, 3}), 15.0f);
  // unpatchify_grad is the exact adjoint: scattering ones and re-gathering
  // equals identity for non-overlapping patches.
  Tensor back = nn::unpatchify_grad(patches, 2, 1, 4, 4);
  EXPECT_TRUE(back.allclose(img, 0.0f));
}

TEST(PatchEmbed, ShapeAndClsToken) {
  Rng rng(6);
  nn::PatchEmbed embed(8, 4, 3, 16, rng);
  EXPECT_EQ(embed.tokens(), 4);
  Tensor img = rng.randn({2, 3, 8, 8});
  Tensor tokens = embed.forward(img);
  EXPECT_EQ(tokens.shape(), (Shape{2, 5, 16}));
}

TEST(PatchEmbed, GradCheck) {
  Rng rng(7);
  nn::PatchEmbed embed(4, 2, 1, 6, rng);
  const Tensor img = rng.randn({2, 1, 4, 4});
  const Tensor target = rng.randn({2, 5, 6});
  auto loss_fn = [&]() {
    Tensor tokens = embed.forward(img);
    auto res = nn::mse(tokens, target);
    embed.backward(res.grad);
    return res.value;
  };
  const auto result = nn::check_gradients(embed, loss_fn, 1e-2f, 3e-2f, 16);
  EXPECT_TRUE(result.ok) << result.worst_parameter << " rel "
                         << result.max_rel_error;
}

vit::ViTConfig tiny_config() {
  vit::ViTConfig c;
  c.image_size = 8;
  c.patch_size = 4;
  c.dim = 8;
  c.depth = 1;
  c.heads = 2;
  c.mlp_ratio = 2;
  c.num_classes = 3;
  c.num_attributes = 4;
  return c;
}

TEST(VitModel, OutputShapes) {
  Rng rng(8);
  vit::VitModel model(tiny_config(), rng);
  Tensor img = rng.randn({2, 3, 8, 8});
  const vit::VitOutput out = model.forward(img);
  EXPECT_EQ(out.objectness.shape(), (Shape{2, 4, 1}));
  EXPECT_EQ(out.class_logits.shape(), (Shape{2, 4, 3}));
  EXPECT_EQ(out.attr_logits.shape(), (Shape{2, 4, 4}));
  EXPECT_EQ(out.box_deltas.shape(), (Shape{2, 4, 4}));
  EXPECT_EQ(out.relevance.shape(), (Shape{2, 4, 1}));
  EXPECT_EQ(out.features.shape(), (Shape{2, 5, 8}));
}

TEST(VitModel, FullGradCheckThroughAllHeads) {
  Rng rng(9);
  vit::VitModel model(tiny_config(), rng);
  const Tensor img = rng.randn({1, 3, 8, 8}, 0.0f, 0.5f);
  const std::vector<int64_t> labels{0, 1, 2, 0};
  auto loss_fn = [&]() {
    const vit::VitOutput out = model.forward(img);
    vit::VitOutputGrads grads;
    float total = 0.0f;
    {
      auto res = nn::bce_with_logits(out.objectness,
                                     Tensor({1, 4, 1}, 1.0f));
      total += res.value;
      grads.objectness = res.grad;
    }
    {
      auto res = nn::softmax_cross_entropy(out.class_logits, labels);
      total += res.value;
      grads.class_logits = res.grad;
    }
    {
      auto res = nn::mse(out.attr_logits, Tensor({1, 4, 4}, 0.5f));
      total += res.value;
      grads.attr_logits = res.grad;
    }
    {
      auto res = nn::mse(out.box_deltas, Tensor({1, 4, 4}, 0.1f));
      total += res.value;
      grads.box_deltas = res.grad;
    }
    {
      auto res = nn::bce_with_logits(out.relevance, Tensor({1, 4, 1}, 0.0f));
      total += res.value;
      grads.relevance = res.grad;
    }
    model.backward(grads);
    return total;
  };
  const auto result = nn::check_gradients(model, loss_fn, 2e-3f, 5e-2f, 6);
  EXPECT_TRUE(result.ok) << result.worst_parameter << " rel "
                         << result.max_rel_error;
}

TEST(VitModel, DeterministicForward) {
  Rng rng1(10), rng2(10);
  vit::VitModel m1(tiny_config(), rng1), m2(tiny_config(), rng2);
  Rng data(11);
  Tensor img = data.randn({1, 3, 8, 8});
  EXPECT_TRUE(m1.forward(img).objectness.allclose(m2.forward(img).objectness,
                                                  0.0f));
}

TEST(Workload, OpInventoryMatchesConfig) {
  vit::ViTConfig c = tiny_config();
  const auto w = vit::build_workload(c, 2);
  // patch_embed + depth*(qkv, scores, attn_value, proj, fc1, fc2) + 6 heads.
  EXPECT_EQ(static_cast<int64_t>(w.gemms.size()), 1 + c.depth * 6 + 6);
  EXPECT_GT(w.total_macs(), 0);
  EXPECT_GT(w.total_weight_bytes_int8(), 0);
  EXPECT_EQ(w.batch, 2);
  // Attention products carry no weights.
  for (const auto& g : w.gemms) {
    if (g.name.find("attn_") != std::string::npos)
      EXPECT_EQ(g.weight_bytes_int8(), 0) << g.name;
  }
}

TEST(Workload, MacsScaleLinearlyWithBatch) {
  vit::ViTConfig c = tiny_config();
  const auto w1 = vit::build_workload(c, 1);
  const auto w4 = vit::build_workload(c, 4);
  EXPECT_EQ(w4.total_macs(), 4 * w1.total_macs());
  // Weight bytes do NOT scale with batch.
  EXPECT_EQ(w4.total_weight_bytes_int8(), w1.total_weight_bytes_int8());
}

}  // namespace
}  // namespace itask
