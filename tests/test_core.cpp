// Core framework tests: the adaptability policy, task definition via the
// oracle, lifecycle enforcement, and a reduced-budget end-to-end integration
// run exercising both configurations.
#include <gtest/gtest.h>

#include "core/itask.h"

namespace itask::core {
namespace {

TEST(Policy, UnknownTasksForceQuantized) {
  SituationProfile p;
  p.tasks_known_ahead = false;
  const PolicyDecision d = choose_configuration(p, 0.1, 0.05);
  EXPECT_EQ(d.config, ConfigKind::kQuantizedMultiTask);
  EXPECT_FALSE(d.rationale.empty());
}

TEST(Policy, MemoryBudgetForcesQuantized) {
  SituationProfile p;
  p.tasks_known_ahead = true;
  p.expected_task_count = 100;
  p.memory_budget_mb = 1.0;
  const PolicyDecision d = choose_configuration(p, 0.5, 0.1);
  EXPECT_EQ(d.config, ConfigKind::kQuantizedMultiTask);
}

TEST(Policy, SingleKnownAccuracyCriticalTaskGetsSpecific) {
  SituationProfile p;
  p.tasks_known_ahead = true;
  p.expected_task_count = 1;
  p.accuracy_critical = true;
  const PolicyDecision d = choose_configuration(p, 0.1, 0.05);
  EXPECT_EQ(d.config, ConfigKind::kTaskSpecific);
}

TEST(Policy, ManyTasksWithoutAccuracyPressureGetQuantized) {
  SituationProfile p;
  p.tasks_known_ahead = true;
  p.expected_task_count = 6;
  p.accuracy_critical = false;
  p.memory_budget_mb = 100.0;
  const PolicyDecision d = choose_configuration(p, 0.1, 0.05);
  EXPECT_EQ(d.config, ConfigKind::kQuantizedMultiTask);
}

TEST(Policy, KindNames) {
  EXPECT_STREQ(config_kind_name(ConfigKind::kTaskSpecific), "task_specific");
  EXPECT_STREQ(config_kind_name(ConfigKind::kQuantizedMultiTask),
               "quantized_multi_task");
}

FrameworkOptions fast_options() {
  FrameworkOptions o;
  o.corpus_size = 256;
  o.task_corpus_size = 128;
  o.multitask_corpus_size = 128;
  o.calibration_scenes = 8;
  o.teacher_training.epochs = 16;
  o.distillation.epochs = 18;
  o.multitask_distillation.epochs = 18;
  o.seed = 7;
  return o;
}

TEST(Framework, LifecycleEnforced) {
  Framework fw(fast_options());
  const data::TaskSpec& spec = data::task_by_id(1);
  const TaskHandle task = fw.define_task(spec);
  EXPECT_THROW(fw.prepare_task_specific(task), std::invalid_argument);
  EXPECT_THROW(fw.prepare_quantized(), std::invalid_argument);
  Tensor image({3, 24, 24});
  EXPECT_THROW(fw.detect(image, task, ConfigKind::kTaskSpecific),
               std::invalid_argument);
}

TEST(Framework, DefineTaskBuildsGraphAndMatcher) {
  Framework fw(fast_options());
  const TaskHandle task = fw.define_task(data::task_by_id(1));
  EXPECT_GT(task.graph.node_count(), 0);
  EXPECT_EQ(task.compiled.positive.numel(), data::kNumAttributes);
  // surgical_sharps requires "sharp".
  EXPECT_GT(task.compiled.positive[data::attr_index(data::Attribute::kSharp)],
            0.0f);
  // 2-hop: scalpel should have high affinity.
  EXPECT_GT(task.compiled.class_affinity[data::class_index(
                data::ObjectClass::kScalpel)],
            0.5f);
}

TEST(Framework, DefineTaskFromText) {
  Framework fw(fast_options());
  const TaskHandle task =
      fw.define_task_from_text("find fragile items to pack");
  EXPECT_GT(
      task.compiled.positive[data::attr_index(data::Attribute::kFragile)],
      0.5f);
}

// One reduced-budget end-to-end run shared by the remaining assertions
// (teacher pretraining is the expensive step; do it once).
class FrameworkEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fw_ = new Framework(fast_options());
    fw_->pretrain_teacher();
    task_ = new TaskHandle(fw_->define_task(data::task_by_id(1)));
    fw_->prepare_task_specific(*task_);
    fw_->prepare_quantized();
    Rng rng(99);
    data::SceneGenerator gen(fw_->options().generator);
    eval_ = new data::Dataset(data::Dataset::generate(gen, 48, rng));
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete task_;
    delete fw_;
  }
  static Framework* fw_;
  static TaskHandle* task_;
  static data::Dataset* eval_;
};

Framework* FrameworkEndToEnd::fw_ = nullptr;
TaskHandle* FrameworkEndToEnd::task_ = nullptr;
data::Dataset* FrameworkEndToEnd::eval_ = nullptr;

TEST_F(FrameworkEndToEnd, TaskSpecificBeatsChance) {
  const auto r = fw_->evaluate(*eval_, *task_, ConfigKind::kTaskSpecific);
  EXPECT_GT(r.f1, 0.25f) << "P=" << r.precision << " R=" << r.recall;
}

TEST_F(FrameworkEndToEnd, QuantizedPathProducesDetections) {
  const auto r =
      fw_->evaluate(*eval_, *task_, ConfigKind::kQuantizedMultiTask);
  EXPECT_GT(r.true_positives + r.false_positives, 0);
  EXPECT_GT(r.f1, 0.05f);
}

TEST_F(FrameworkEndToEnd, SingleImageDetectApi) {
  const auto dets =
      fw_->detect(eval_->scene(0).image, *task_, ConfigKind::kTaskSpecific);
  for (const auto& d : dets) {
    EXPECT_GE(d.confidence, 0.0f);
    EXPECT_LE(d.confidence, 1.0f);
    EXPECT_GE(d.cell, 0);
    EXPECT_LT(d.cell, 9);
  }
}

TEST_F(FrameworkEndToEnd, GroundTruthMatchesTaskPredicate) {
  const auto truth = Framework::ground_truth(*eval_, task_->spec);
  ASSERT_EQ(truth.size(), static_cast<size_t>(eval_->size()));
  for (int64_t i = 0; i < eval_->size(); ++i) {
    ASSERT_EQ(truth[static_cast<size_t>(i)].size(),
              eval_->scene(i).objects.size());
    for (size_t j = 0; j < truth[static_cast<size_t>(i)].size(); ++j) {
      EXPECT_EQ(truth[static_cast<size_t>(i)][j].task_relevant,
                task_->spec.is_relevant(eval_->scene(i).objects[j].attributes));
    }
  }
}

TEST_F(FrameworkEndToEnd, ModelFootprints) {
  // INT8 multi-task model must be smaller than the FP32 per-task student.
  EXPECT_LT(fw_->quantized_model_mb(), fw_->task_specific_model_mb());
  EXPECT_GT(fw_->quantized_model_mb(), 0.0);
}

TEST_F(FrameworkEndToEnd, PolicyUsesRealFootprints) {
  SituationProfile p;
  p.tasks_known_ahead = true;
  p.expected_task_count = 1;
  EXPECT_EQ(fw_->choose_configuration(p).config, ConfigKind::kTaskSpecific);
  p.expected_task_count = 1000;
  p.memory_budget_mb = 0.5;
  EXPECT_EQ(fw_->choose_configuration(p).config,
            ConfigKind::kQuantizedMultiTask);
}

TEST_F(FrameworkEndToEnd, DoublePretrainThrows) {
  EXPECT_THROW(fw_->pretrain_teacher(), std::invalid_argument);
}

}  // namespace
}  // namespace itask::core
