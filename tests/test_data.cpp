// Data substrate tests: ontology consistency, instance attribute resolution,
// rasterizer behaviour, scene generation invariants, task predicates, and
// box encoding round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/renderer.h"
#include "data/tasks.h"

namespace itask::data {
namespace {

TEST(Attributes, NamesAndCounts) {
  EXPECT_EQ(kNumAttributes, 16);
  EXPECT_EQ(kNumClasses, 13);
  EXPECT_EQ(attribute_name(Attribute::kMetallic), "metallic");
  EXPECT_EQ(attribute_name(Attribute::kOrganic), "organic");
  EXPECT_EQ(class_name(ObjectClass::kBackground), "background");
  EXPECT_EQ(class_name(ObjectClass::kAnimal), "animal");
}

TEST(Attributes, BackgroundPrototypeIsZero) {
  const Tensor p = class_attribute_prototype(ObjectClass::kBackground);
  for (int64_t i = 0; i < kNumAttributes; ++i) EXPECT_EQ(p[i], 0.0f);
}

class PrototypeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrototypeProperty, ValuesInUnitRange) {
  const auto cls = static_cast<ObjectClass>(GetParam());
  const Tensor p = class_attribute_prototype(cls);
  EXPECT_EQ(p.numel(), kNumAttributes);
  for (int64_t i = 0; i < kNumAttributes; ++i) {
    EXPECT_GE(p[i], 0.0f);
    EXPECT_LE(p[i], 1.0f);
  }
}

TEST_P(PrototypeProperty, InstanceResolutionRespectsSizeRule) {
  const auto cls = static_cast<ObjectClass>(GetParam());
  if (cls == ObjectClass::kBackground) return;
  float r, g, b;
  class_base_color(cls, r, g, b);
  const Tensor big = resolve_instance_attributes(cls, 0.95f, r, g, b, false);
  EXPECT_EQ(big[attr_index(Attribute::kLarge)], 1.0f);
  EXPECT_EQ(big[attr_index(Attribute::kSmall)], 0.0f);
  const Tensor small = resolve_instance_attributes(cls, 0.5f, r, g, b, false);
  EXPECT_EQ(small[attr_index(Attribute::kLarge)], 0.0f);
  EXPECT_EQ(small[attr_index(Attribute::kSmall)], 1.0f);
}

TEST_P(PrototypeProperty, MovingFlagReflected) {
  const auto cls = static_cast<ObjectClass>(GetParam());
  if (cls == ObjectClass::kBackground) return;
  float r, g, b;
  class_base_color(cls, r, g, b);
  EXPECT_EQ(resolve_instance_attributes(cls, 0.7f, r, g, b,
                                        true)[attr_index(Attribute::kMoving)],
            1.0f);
  EXPECT_EQ(resolve_instance_attributes(cls, 0.7f, r, g, b,
                                        false)[attr_index(Attribute::kMoving)],
            0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, PrototypeProperty,
                         ::testing::Range(0, static_cast<int>(kNumClasses)));

TEST(InstanceAttributes, HueFollowsDominantChannel) {
  const Tensor red = resolve_instance_attributes(ObjectClass::kFruit, 0.7f,
                                                 0.9f, 0.2f, 0.2f, false);
  EXPECT_EQ(red[attr_index(Attribute::kRedHue)], 1.0f);
  EXPECT_EQ(red[attr_index(Attribute::kGreenHue)], 0.0f);
  const Tensor green = resolve_instance_attributes(ObjectClass::kFruit, 0.7f,
                                                   0.2f, 0.9f, 0.2f, false);
  EXPECT_EQ(green[attr_index(Attribute::kGreenHue)], 1.0f);
}

TEST(InstanceAttributes, LuminanceDrivesBrightDark) {
  const Tensor bright = resolve_instance_attributes(ObjectClass::kGauze, 0.7f,
                                                    0.95f, 0.95f, 0.9f, false);
  EXPECT_EQ(bright[attr_index(Attribute::kBright)], 1.0f);
  EXPECT_EQ(bright[attr_index(Attribute::kDark)], 0.0f);
  const Tensor dark = resolve_instance_attributes(ObjectClass::kCrack, 0.7f,
                                                  0.1f, 0.1f, 0.1f, false);
  EXPECT_EQ(dark[attr_index(Attribute::kDark)], 1.0f);
  EXPECT_EQ(dark[attr_index(Attribute::kBright)], 0.0f);
}

TEST(Canvas, RequiresRgbImage) {
  Tensor bad({1, 4, 4});
  EXPECT_THROW(Canvas{bad}, std::invalid_argument);
}

TEST(Canvas, BlendIgnoresOutOfBounds) {
  Tensor img({3, 4, 4});
  Canvas canvas(img);
  canvas.blend(-1, 0, 1, 1, 1);
  canvas.blend(0, 99, 1, 1, 1);
  for (float v : img.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Canvas, BlendAlphaMath) {
  Tensor img({3, 2, 2}, 0.5f);
  Canvas canvas(img);
  canvas.blend(0, 0, 1.0f, 0.0f, 0.5f, 0.5f);
  EXPECT_NEAR(img.at({0, 0, 0}), 0.75f, 1e-6f);  // r
  EXPECT_NEAR(img.at({1, 0, 0}), 0.25f, 1e-6f);  // g
  EXPECT_NEAR(img.at({2, 0, 0}), 0.5f, 1e-6f);   // b
}

TEST(Canvas, FillRectCoversInterior) {
  Tensor img({3, 8, 8});
  Canvas canvas(img);
  canvas.fill_rect(2, 2, 6, 6, 1, 1, 1);
  EXPECT_EQ(img.at({0, 4, 4}), 1.0f);
  EXPECT_EQ(img.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(img.at({0, 7, 7}), 0.0f);
}

TEST(Canvas, FillCircleRespectsRadius) {
  Tensor img({3, 9, 9});
  Canvas canvas(img);
  canvas.fill_circle(4.5f, 4.5f, 2.0f, 1, 0, 0);
  EXPECT_EQ(img.at({0, 4, 4}), 1.0f);   // centre
  EXPECT_EQ(img.at({0, 0, 0}), 0.0f);   // far corner untouched
  EXPECT_EQ(img.at({0, 4, 8}), 0.0f);   // outside radius
}

TEST(Generator, InvariantsOverManyScenes) {
  GeneratorOptions opt;
  SceneGenerator gen(opt);
  Rng rng(77);
  for (int s = 0; s < 30; ++s) {
    const Scene scene = gen.generate(rng);
    EXPECT_EQ(scene.image.shape(), (Shape{3, 24, 24}));
    EXPECT_GE(static_cast<int64_t>(scene.objects.size()), opt.min_objects);
    EXPECT_LE(static_cast<int64_t>(scene.objects.size()), opt.max_objects);
    std::set<int64_t> cells;
    for (const ObjectInstance& o : scene.objects) {
      EXPECT_TRUE(cells.insert(o.cell).second) << "duplicate cell";
      EXPECT_GE(o.cell, 0);
      EXPECT_LT(o.cell, 9);
      EXPECT_NE(o.cls, ObjectClass::kBackground);
      // Instance attributes must equal the resolver output.
      EXPECT_TRUE(o.attributes.allclose(
          resolve_instance_attributes(o.cls, o.scale, o.r, o.g, o.b,
                                      o.moving),
          0.0f));
      // Centre stays within its cell ± jitter.
      const float cell_px = 8.0f;
      const float cx_cell = (static_cast<float>(o.cell % 3) + 0.5f) * cell_px;
      EXPECT_NEAR(o.box.cx, cx_cell, cell_px * 0.2f);
    }
    // Rendering leaves background noise in [0.05, 0.15] plus object pixels.
    float mx = 0.0f;
    for (float v : scene.image.data()) mx = std::max(mx, v);
    EXPECT_GT(mx, 0.2f);  // something was drawn
  }
}

TEST(Generator, ClassPoolRestrictsClasses) {
  GeneratorOptions opt;
  opt.class_pool = std::vector<ObjectClass>{ObjectClass::kScalpel,
                                            ObjectClass::kGauze};
  SceneGenerator gen(opt);
  Rng rng(5);
  for (int s = 0; s < 10; ++s) {
    for (const auto& o : gen.generate(rng).objects) {
      EXPECT_TRUE(o.cls == ObjectClass::kScalpel ||
                  o.cls == ObjectClass::kGauze);
    }
  }
}

TEST(Generator, BadOptionsThrow) {
  GeneratorOptions opt;
  opt.image_size = 25;  // not divisible by grid 3
  EXPECT_THROW(SceneGenerator{opt}, std::invalid_argument);
  GeneratorOptions opt2;
  opt2.min_objects = 5;
  opt2.max_objects = 3;
  EXPECT_THROW(SceneGenerator{opt2}, std::invalid_argument);
  GeneratorOptions opt3;
  opt3.max_objects = 10;  // > 9 cells
  EXPECT_THROW(SceneGenerator{opt3}, std::invalid_argument);
}

TEST(Tasks, LibraryHasEightStableTasks) {
  const auto& lib = task_library();
  ASSERT_EQ(lib.size(), 8u);
  for (size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(lib[i].id, static_cast<int64_t>(i));
    EXPECT_FALSE(lib[i].name.empty());
    EXPECT_FALSE(lib[i].description.empty());
    EXPECT_EQ(lib[i].positive.numel(), kNumAttributes);
    EXPECT_EQ(lib[i].negative.numel(), kNumAttributes);
  }
  EXPECT_THROW(task_by_id(8), std::invalid_argument);
  EXPECT_THROW(task_by_id(-1), std::invalid_argument);
}

TEST(Tasks, SurgicalSharpsPredicate) {
  const TaskSpec& t = task_by_id(1);
  float r, g, b;
  class_base_color(ObjectClass::kScalpel, r, g, b);
  // A scalpel (sharp + metallic) is relevant regardless of size.
  EXPECT_TRUE(t.is_relevant(
      resolve_instance_attributes(ObjectClass::kScalpel, 0.9f, r, g, b,
                                  false)));
  // A fruit is not.
  class_base_color(ObjectClass::kFruit, r, g, b);
  EXPECT_FALSE(t.is_relevant(
      resolve_instance_attributes(ObjectClass::kFruit, 0.7f, r, g, b, false)));
}

TEST(Tasks, MovingEntitiesPredicateIsInstanceLevel) {
  const TaskSpec& t = task_by_id(7);
  float r, g, b;
  class_base_color(ObjectClass::kCar, r, g, b);
  EXPECT_TRUE(t.is_relevant(
      resolve_instance_attributes(ObjectClass::kCar, 0.9f, r, g, b, true)));
  EXPECT_FALSE(t.is_relevant(
      resolve_instance_attributes(ObjectClass::kCar, 0.9f, r, g, b, false)));
}

TEST(Tasks, DrivingHazardsExcludesSmallObjects) {
  const TaskSpec& t = task_by_id(0);
  float r, g, b;
  class_base_color(ObjectClass::kScalpel, r, g, b);
  // A small scalpel is hazardous but not a *driving* hazard.
  EXPECT_FALSE(t.is_relevant(resolve_instance_attributes(
      ObjectClass::kScalpel, 0.5f, r, g, b, false)));
}

TEST(Boxes, EncodeDecodeRoundTrip) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    BoxPx box;
    const int64_t cell = rng.randint(0, 8);
    const float cell_px = 8.0f;
    box.cx = (static_cast<float>(cell % 3) + 0.5f) * cell_px +
             rng.uniform(-2.0f, 2.0f);
    box.cy = (static_cast<float>(cell / 3) + 0.5f) * cell_px +
             rng.uniform(-2.0f, 2.0f);
    box.w = rng.uniform(2.0f, 8.0f);
    box.h = rng.uniform(2.0f, 8.0f);
    float enc[4];
    encode_box(box, cell, 3, cell_px, enc);
    const BoxPx back = decode_box(enc, cell, 3, cell_px);
    EXPECT_NEAR(back.cx, box.cx, 1e-4f);
    EXPECT_NEAR(back.cy, box.cy, 1e-4f);
    EXPECT_NEAR(back.w, box.w, 1e-3f);
    EXPECT_NEAR(back.h, box.h, 1e-3f);
  }
}

TEST(Dataset, BatchLabelsMatchScenes) {
  GeneratorOptions opt;
  SceneGenerator gen(opt);
  Rng rng(41);
  const Dataset ds = Dataset::generate(gen, 8, rng);
  EXPECT_EQ(ds.size(), 8);
  const auto idx = ds.all_indices();
  const TaskSpec& task = task_by_id(2);  // fragile_items
  const Batch batch = ds.make_batch(idx, &task);
  EXPECT_EQ(batch.images.shape(), (Shape{8, 3, 24, 24}));
  for (int64_t bi = 0; bi < 8; ++bi) {
    const Scene& scene = ds.scene(bi);
    int64_t object_cells = 0;
    for (int64_t cell = 0; cell < 9; ++cell)
      if (batch.objectness.at({bi, cell, 0}) > 0.5f) ++object_cells;
    EXPECT_EQ(object_cells, static_cast<int64_t>(scene.objects.size()));
    for (const ObjectInstance& o : scene.objects) {
      EXPECT_EQ(batch.cell_class[static_cast<size_t>(bi * 9 + o.cell)],
                class_index(o.cls));
      EXPECT_EQ(batch.relevance.at({bi, o.cell, 0}),
                task.is_relevant(o.attributes) ? 1.0f : 0.0f);
      for (int64_t a = 0; a < kNumAttributes; ++a) {
        EXPECT_EQ(batch.attributes.at({bi, o.cell, a}), o.attributes[a]);
        EXPECT_EQ(batch.attr_mask.at({bi, o.cell, a}), 1.0f);
      }
    }
  }
}

TEST(Dataset, EmptyBatchThrows) {
  Dataset ds;
  std::vector<int64_t> none;
  EXPECT_THROW(ds.make_batch(none), std::invalid_argument);
}

TEST(Occlusion, SeededDeterministicAndSeverityZeroIsExactNoOp) {
  GeneratorOptions opt;
  SceneGenerator gen(opt);
  Rng scene_rng(31);
  const Scene clean = gen.generate(scene_rng);

  // severity = 0: byte-identical image, whatever the rng state.
  {
    Scene s(clean);
    Rng rng(5);
    apply_occlusion(s, OcclusionOptions{}, rng);
    const auto a = s.image.data();
    const auto b = clean.image.data();
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }

  // Same (scene, options, seed) → byte-identical occluded image; a
  // different seed diverges (the corruption actually draws).
  OcclusionOptions occ;
  occ.severity = 0.5f;
  Scene s1(clean);
  Scene s2(clean);
  Scene s3(clean);
  Rng r1(9);
  Rng r2(9);
  Rng r3(10);
  apply_occlusion(s1, occ, r1);
  apply_occlusion(s2, occ, r2);
  apply_occlusion(s3, occ, r3);
  const auto p1 = s1.image.data();
  const auto p2 = s2.image.data();
  const auto p3 = s3.image.data();
  bool changed = false;
  bool seeds_differ = false;
  const auto base = clean.image.data();
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]);
    changed = changed || p1[i] != base[i];
    seeds_differ = seeds_differ || p1[i] != p3[i];
  }
  EXPECT_TRUE(changed);
  EXPECT_TRUE(seeds_differ);
  // Pixels stay valid image values.
  for (float v : p1) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Occlusion, GroundTruthUntouchedAndOptionsValidated) {
  GeneratorOptions opt;
  SceneGenerator gen(opt);
  Rng scene_rng(32);
  const Scene clean = gen.generate(scene_rng);

  Scene occluded(clean);
  OcclusionOptions occ;
  occ.severity = 0.6f;
  Rng rng(4);
  apply_occlusion(occluded, occ, rng);
  // Occlusion corrupts pixels only: every labelled object keeps its box,
  // class, cell and attributes — evaluation targets never move.
  ASSERT_EQ(occluded.objects.size(), clean.objects.size());
  for (size_t i = 0; i < clean.objects.size(); ++i) {
    EXPECT_EQ(occluded.objects[i].cls, clean.objects[i].cls);
    EXPECT_EQ(occluded.objects[i].cell, clean.objects[i].cell);
    EXPECT_EQ(occluded.objects[i].box.cx, clean.objects[i].box.cx);
    EXPECT_EQ(occluded.objects[i].box.cy, clean.objects[i].box.cy);
    EXPECT_EQ(occluded.objects[i].box.w, clean.objects[i].box.w);
    EXPECT_EQ(occluded.objects[i].box.h, clean.objects[i].box.h);
    EXPECT_TRUE(
        occluded.objects[i].attributes.allclose(clean.objects[i].attributes,
                                                0.0f));
  }

  Scene victim(clean);
  OcclusionOptions bad;
  bad.severity = 1.0f;  // must stay < 1: a fully covered object is deletion
  EXPECT_THROW(apply_occlusion(victim, bad, rng), std::invalid_argument);
  bad = {};
  bad.severity = 0.5f;
  bad.truncation_prob = -0.1f;
  EXPECT_THROW(apply_occlusion(victim, bad, rng), std::invalid_argument);
  bad.truncation_prob = 0.5f;
  bad.occlude_prob = 1.5f;
  EXPECT_THROW(apply_occlusion(victim, bad, rng), std::invalid_argument);
}

TEST(Dataset, FewShotSamplerReturnsRelevantScenes) {
  GeneratorOptions opt;
  SceneGenerator gen(opt);
  Rng rng(51);
  const Dataset ds = Dataset::generate(gen, 64, rng);
  const TaskSpec& task = task_by_id(2);
  const auto shots = sample_few_shot(ds, task, 4, rng);
  EXPECT_LE(shots.size(), 4u);
  for (int64_t idx : shots) {
    bool has_relevant = false;
    for (const auto& o : ds.scene(idx).objects)
      has_relevant |= task.is_relevant(o.attributes);
    EXPECT_TRUE(has_relevant);
  }
}

}  // namespace
}  // namespace itask::data
