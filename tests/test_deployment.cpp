// Deployment persistence: a prepared framework saved to disk and restored
// into a fresh process-equivalent framework must reproduce its detections.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/itask.h"

namespace itask::core {
namespace {

FrameworkOptions tiny_options() {
  FrameworkOptions o;
  o.corpus_size = 128;
  o.task_corpus_size = 64;
  o.multitask_corpus_size = 64;
  o.calibration_scenes = 8;
  o.teacher_training.epochs = 6;
  o.distillation.epochs = 6;
  o.multitask_distillation.epochs = 6;
  o.seed = 3;
  return o;
}

TEST(Deployment, SaveBeforeTrainingThrows) {
  Framework fw(tiny_options());
  EXPECT_THROW(fw.save_deployment("/tmp/itask_deploy_invalid"),
               std::invalid_argument);
}

TEST(Deployment, LoadMissingDirectoryThrows) {
  Framework fw(tiny_options());
  EXPECT_THROW(fw.load_deployment("/tmp/itask_no_such_deployment"),
               std::invalid_argument);
}

TEST(Deployment, RoundTripReproducesDetections) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "itask_deploy_test").string();
  std::filesystem::remove_all(dir);

  const FrameworkOptions options = tiny_options();
  // Prepare, detect, save.
  Framework original(options);
  original.pretrain_teacher();
  TaskHandle task = original.define_task(data::task_by_id(1));
  original.prepare_task_specific(task);
  original.prepare_quantized();

  Rng rng(777);
  const data::SceneGenerator gen(options.generator);
  const data::Scene scene = gen.generate(rng);
  const auto ts_before =
      original.detect(scene.image, task, ConfigKind::kTaskSpecific);
  const auto q_before =
      original.detect(scene.image, task, ConfigKind::kQuantizedMultiTask);
  original.save_deployment(dir);

  // Restore into a fresh framework (same options), re-define the task in
  // the same order so slots line up.
  Framework restored(options);
  restored.load_deployment(dir);
  TaskHandle task2 = restored.define_task(data::task_by_id(1));
  const auto ts_after =
      restored.detect(scene.image, task2, ConfigKind::kTaskSpecific);
  const auto q_after =
      restored.detect(scene.image, task2, ConfigKind::kQuantizedMultiTask);

  // Task-specific path: bit-identical weights → identical detections.
  ASSERT_EQ(ts_after.size(), ts_before.size());
  for (size_t i = 0; i < ts_before.size(); ++i) {
    EXPECT_EQ(ts_after[i].cell, ts_before[i].cell);
    EXPECT_NEAR(ts_after[i].confidence, ts_before[i].confidence, 1e-5f);
    EXPECT_NEAR(ts_after[i].box.cx, ts_before[i].box.cx, 1e-4f);
  }
  // Quantized path: calibration data is regenerated, so activations ranges
  // can differ slightly — demand matching cells, not bit-exact scores.
  ASSERT_EQ(q_after.size(), q_before.size());
  for (size_t i = 0; i < q_before.size(); ++i)
    EXPECT_EQ(q_after[i].cell, q_before[i].cell);

  // Teacher weights restored exactly.
  const auto a = original.teacher().state_dict();
  const auto b = restored.teacher().state_dict();
  for (const auto& [k, v] : a)
    EXPECT_TRUE(b.at(k).allclose(v, 0.0f)) << k;

  std::filesystem::remove_all(dir);
}

TEST(Deployment, ManifestListsArtifacts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "itask_deploy_manifest")
          .string();
  std::filesystem::remove_all(dir);
  FrameworkOptions options = tiny_options();
  Framework fw(options);
  fw.pretrain_teacher();
  fw.save_deployment(dir);  // teacher only
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "teacher.itsk"));
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "manifest.txt"));
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir) / "multitask.itsk"));
  // Restores cleanly with just the teacher.
  Framework restored(options);
  restored.load_deployment(dir);
  EXPECT_TRUE(restored.teacher_ready());
  EXPECT_FALSE(restored.quantized_ready());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace itask::core
