// Detection substrate tests: IoU properties, NMS behaviour, evaluation
// metrics against hand-constructed scenarios, and the output decoder.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/decoder.h"
#include "detect/metrics.h"
#include "detect/nms.h"
#include "tensor/rng.h"

namespace itask::detect {
namespace {

BoxPx box(float cx, float cy, float w, float h) { return BoxPx{cx, cy, w, h}; }

TEST(Iou, HandCases) {
  EXPECT_FLOAT_EQ(iou(box(5, 5, 4, 4), box(5, 5, 4, 4)), 1.0f);
  EXPECT_FLOAT_EQ(iou(box(0, 0, 2, 2), box(10, 10, 2, 2)), 0.0f);
  // Half overlap: [0,4]x[0,4] vs [2,6]x[0,4] → inter 8, union 24.
  EXPECT_NEAR(iou(box(2, 2, 4, 4), box(4, 2, 4, 4)), 8.0f / 24.0f, 1e-5f);
}

TEST(Iou, DegenerateBoxesScoreZero) {
  EXPECT_EQ(iou(box(1, 1, 0, 4), box(1, 1, 4, 4)), 0.0f);
  EXPECT_EQ(iou(box(1, 1, 4, 4), box(1, 1, 4, -1)), 0.0f);
}

class IouProperty : public ::testing::TestWithParam<int> {};

TEST_P(IouProperty, SymmetricBoundedAndSelfUnit) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    const BoxPx a = box(rng.uniform(0, 20), rng.uniform(0, 20),
                        rng.uniform(0.5f, 10), rng.uniform(0.5f, 10));
    const BoxPx b = box(rng.uniform(0, 20), rng.uniform(0, 20),
                        rng.uniform(0.5f, 10), rng.uniform(0.5f, 10));
    const float ab = iou(a, b);
    EXPECT_FLOAT_EQ(ab, iou(b, a));
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f + 1e-6f);
    EXPECT_NEAR(iou(a, a), 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouProperty, ::testing::Values(1, 2, 3));

Detection det(BoxPx b, float conf) {
  Detection d;
  d.box = b;
  d.confidence = conf;
  return d;
}

TEST(Nms, SuppressesOverlaps) {
  std::vector<Detection> dets{det(box(5, 5, 4, 4), 0.9f),
                              det(box(5.5f, 5, 4, 4), 0.8f),
                              det(box(15, 15, 4, 4), 0.7f)};
  const auto kept = nms(dets, 0.5f);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].confidence, 0.9f);
  EXPECT_FLOAT_EQ(kept[1].confidence, 0.7f);
}

TEST(Nms, KeepsAllWhenDisjoint) {
  std::vector<Detection> dets{det(box(2, 2, 2, 2), 0.5f),
                              det(box(10, 10, 2, 2), 0.9f),
                              det(box(20, 20, 2, 2), 0.7f)};
  const auto kept = nms(dets, 0.5f);
  EXPECT_EQ(kept.size(), 3u);
  // Sorted by confidence.
  EXPECT_GT(kept[0].confidence, kept[1].confidence);
  EXPECT_GT(kept[1].confidence, kept[2].confidence);
}

TEST(Nms, ThresholdControlsAggressiveness) {
  std::vector<Detection> dets{det(box(5, 5, 4, 4), 0.9f),
                              det(box(6.5f, 5, 4, 4), 0.8f)};  // IoU ≈ 0.38
  EXPECT_EQ(nms(dets, 0.5f).size(), 2u);
  EXPECT_EQ(nms(dets, 0.3f).size(), 1u);
}

TEST(Nms, EmptyInput) { EXPECT_TRUE(nms({}, 0.5f).empty()); }

TEST(Nms, DeterministicUnderEqualConfidenceTies) {
  // A chain of mutually overlapping equal-confidence detections: which ones
  // survive greedy NMS depends entirely on the tie-break. The old
  // confidence-only comparator left that to the (unstable) sort
  // implementation; detection_order must make the survivor set independent
  // of input order.
  std::vector<Detection> dets;
  for (int i = 0; i < 8; ++i) {
    Detection d = det(box(5.0f + 1.0f * static_cast<float>(i), 5.0f, 4, 4),
                      0.8f);
    d.cell = i;
    d.predicted_class = i % 3;
    dets.push_back(d);
  }
  const auto baseline = nms(dets, 0.5f);
  ASSERT_FALSE(baseline.empty());
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Detection> shuffled = dets;
    rng.shuffle(shuffled);
    const auto kept = nms(shuffled, 0.5f);
    ASSERT_EQ(kept.size(), baseline.size());
    for (size_t k = 0; k < kept.size(); ++k) {
      EXPECT_EQ(kept[k].cell, baseline[k].cell);
      EXPECT_FLOAT_EQ(kept[k].box.cx, baseline[k].box.cx);
    }
  }
}

TEST(Nms, DetectionOrderIsAStrictTotalOrderOnDistinctDetections) {
  Detection a = det(box(5, 5, 4, 4), 0.8f);
  a.predicted_class = 1;
  a.cell = 0;
  Detection b = a;
  b.cell = 1;
  // Identical keys except cell: exactly one direction orders first.
  EXPECT_TRUE(detection_order(a, b));
  EXPECT_FALSE(detection_order(b, a));
  EXPECT_FALSE(detection_order(a, a));
  // Higher confidence always ranks first, regardless of the tie-break keys.
  Detection c = b;
  c.confidence = 0.9f;
  EXPECT_TRUE(detection_order(c, a));
  EXPECT_FALSE(detection_order(a, c));
}

GroundTruthObject gt(BoxPx b, bool relevant) {
  GroundTruthObject g;
  g.box = b;
  g.task_relevant = relevant;
  return g;
}

TEST(Metrics, PerfectDetection) {
  std::vector<std::vector<Detection>> dets{
      {det(box(5, 5, 4, 4), 0.9f), det(box(15, 15, 4, 4), 0.8f)}};
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(5, 5, 4, 4), true), gt(box(15, 15, 4, 4), true)}};
  const EvalResult r = evaluate(dets, truth);
  EXPECT_EQ(r.true_positives, 2);
  EXPECT_EQ(r.false_positives, 0);
  EXPECT_EQ(r.false_negatives, 0);
  EXPECT_FLOAT_EQ(r.precision, 1.0f);
  EXPECT_FLOAT_EQ(r.recall, 1.0f);
  EXPECT_FLOAT_EQ(r.f1, 1.0f);
  EXPECT_FLOAT_EQ(r.average_precision, 1.0f);
  EXPECT_NEAR(r.mean_iou, 1.0f, 1e-6f);
}

TEST(Metrics, MissedObjectCountsAsFalseNegative) {
  std::vector<std::vector<Detection>> dets{{det(box(5, 5, 4, 4), 0.9f)}};
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(5, 5, 4, 4), true), gt(box(15, 15, 4, 4), true)}};
  const EvalResult r = evaluate(dets, truth);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_negatives, 1);
  EXPECT_FLOAT_EQ(r.recall, 0.5f);
  EXPECT_FLOAT_EQ(r.precision, 1.0f);
}

TEST(Metrics, DetectionOnIrrelevantObjectIsFalsePositive) {
  // The task-oriented twist: hitting a non-relevant object is a mistake.
  std::vector<std::vector<Detection>> dets{{det(box(5, 5, 4, 4), 0.9f)}};
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(5, 5, 4, 4), false)}};
  const EvalResult r = evaluate(dets, truth);
  EXPECT_EQ(r.true_positives, 0);
  EXPECT_EQ(r.false_positives, 1);
  EXPECT_EQ(r.false_negatives, 0);
}

TEST(Metrics, DuplicateDetectionsPenalised) {
  std::vector<std::vector<Detection>> dets{
      {det(box(5, 5, 4, 4), 0.9f), det(box(5, 5, 4, 4), 0.8f)}};
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(5, 5, 4, 4), true)}};
  const EvalResult r = evaluate(dets, truth);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_positives, 1);
}

TEST(Metrics, ApRewardsRankingQuality) {
  // Same TP/FP counts, but ranking TP first yields higher AP.
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(5, 5, 4, 4), true)}};
  std::vector<std::vector<Detection>> good{
      {det(box(5, 5, 4, 4), 0.9f), det(box(15, 15, 4, 4), 0.1f)}};
  std::vector<std::vector<Detection>> bad{
      {det(box(5, 5, 4, 4), 0.1f), det(box(15, 15, 4, 4), 0.9f)}};
  EXPECT_GT(evaluate(good, truth).average_precision,
            evaluate(bad, truth).average_precision);
}

TEST(Metrics, EmptySceneConventions) {
  // No truth, no detections → perfect.
  std::vector<std::vector<Detection>> none{{}};
  std::vector<std::vector<GroundTruthObject>> empty_truth{{}};
  const EvalResult r = evaluate(none, empty_truth);
  EXPECT_FLOAT_EQ(r.precision, 1.0f);
  EXPECT_FLOAT_EQ(r.recall, 1.0f);
  // No truth but spurious detections → zero precision.
  std::vector<std::vector<Detection>> spurious{{det(box(5, 5, 4, 4), 0.9f)}};
  EXPECT_FLOAT_EQ(evaluate(spurious, empty_truth).precision, 0.0f);
}

TEST(Metrics, PrCurveAgreesWithEvaluateAtTheOperatingPoint) {
  // Mixed outcome scene: one true positive at IoU 0.6, one false positive,
  // one missed object. evaluate() and pr_curve() run the same greedy
  // matching, so the curve's final point (all detections admitted) must
  // reproduce evaluate()'s operating-point precision/recall exactly.
  std::vector<std::vector<Detection>> dets{
      {det(box(5, 5, 4, 4), 0.9f), det(box(40, 40, 4, 4), 0.8f)}};
  std::vector<std::vector<GroundTruthObject>> truth{
      {gt(box(6, 5, 4, 4), true), gt(box(20, 20, 4, 4), true)}};
  const EvalResult r = evaluate(dets, truth, 0.4f);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_positives, 1);
  EXPECT_EQ(r.false_negatives, 1);
  const auto curve = pr_curve(dets, truth, 0.4f);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_FLOAT_EQ(curve.back().precision, r.precision);
  EXPECT_FLOAT_EQ(curve.back().recall, r.recall);
  // Unmatched detections contribute IoU 0, not the iou_threshold search
  // sentinel (the pr_curve side of the matcher used to record 0.4 here):
  // mean IoU is exactly the one matched pair's IoU.
  // TP boxes [3,7]x[3,7] vs [4,8]x[3,7]: inter 12, union 20 → 0.6.
  EXPECT_NEAR(r.mean_iou, 0.6f, 1e-5f);
}

TEST(Metrics, SceneCountMismatchThrows) {
  std::vector<std::vector<Detection>> dets(2);
  std::vector<std::vector<GroundTruthObject>> truth(3);
  EXPECT_THROW(evaluate(dets, truth), std::invalid_argument);
}

TEST(Decoder, ThresholdGatesCells) {
  vit::VitOutput out;
  out.objectness = Tensor({1, 9, 1}, -5.0f);     // all background…
  out.objectness.at({0, 4, 0}) = 5.0f;           // …except the centre cell
  out.class_logits = Tensor({1, 9, 3});
  out.class_logits.at({0, 4, 2}) = 4.0f;
  out.attr_logits = Tensor({1, 9, 4});
  out.box_deltas = Tensor({1, 9, 4});
  DecoderOptions options;
  options.grid = 3;
  options.image_size = 24;
  const auto dets = decode(out, options);
  ASSERT_EQ(dets.size(), 1u);
  ASSERT_EQ(dets[0].size(), 1u);
  const Detection& d = dets[0][0];
  EXPECT_EQ(d.cell, 4);
  EXPECT_GT(d.objectness, 0.99f);
  EXPECT_EQ(d.predicted_class, 2);
  // Zero deltas → box centred on the cell with cell-sized extent.
  EXPECT_NEAR(d.box.cx, 12.0f, 1e-4f);
  EXPECT_NEAR(d.box.cy, 12.0f, 1e-4f);
  EXPECT_NEAR(d.box.w, 8.0f, 1e-3f);
  // Probabilities are normalised.
  float sum = 0.0f;
  for (int64_t c = 0; c < 3; ++c) sum += d.class_probs[c];
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Decoder, GridMismatchThrows) {
  vit::VitOutput out;
  out.objectness = Tensor({1, 9, 1});
  out.class_logits = Tensor({1, 9, 3});
  out.attr_logits = Tensor({1, 9, 4});
  out.box_deltas = Tensor({1, 9, 4});
  DecoderOptions options;
  options.grid = 4;  // 16 ≠ 9
  options.image_size = 24;
  EXPECT_THROW(decode(out, options), std::invalid_argument);
}

}  // namespace
}  // namespace itask::detect
