// Training-loop tests: supervised trainer convergence, loss assembly, and
// distillation (student tracks teacher, feature projection, task relevance).
#include <gtest/gtest.h>

#include "distill/distiller.h"
#include "distill/trainer.h"
#include "tensor/ops.h"

namespace itask::distill {
namespace {

data::Dataset tiny_dataset(int64_t n, uint64_t seed) {
  data::GeneratorOptions opt;
  data::SceneGenerator gen(opt);
  Rng rng(seed);
  return data::Dataset::generate(gen, n, rng);
}

vit::ViTConfig tiny_model_config() {
  vit::ViTConfig c;
  c.dim = 16;
  c.depth = 1;
  c.heads = 2;
  return c;
}

TEST(Trainer, LossDecreases) {
  Rng rng(1);
  vit::VitModel model(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(32, 2);
  TrainerOptions options;
  options.epochs = 8;
  options.batch_size = 8;
  Trainer trainer(model, options);
  const TrainStats stats = trainer.fit(ds);
  EXPECT_GT(stats.steps, 0);
  EXPECT_LT(stats.last.total(), 0.6f * stats.first.total());
}

TEST(Trainer, RelevanceHeadOnlyWhenRequested) {
  Rng rng(3);
  vit::VitModel model(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(8, 4);
  const data::TaskSpec& task = data::task_by_id(2);
  TrainerOptions options;
  options.epochs = 1;
  options.w_relevance = 0.0f;
  Trainer trainer(model, options);
  const TrainStats without = trainer.fit(ds, &task);
  EXPECT_EQ(without.last.relevance, 0.0f);
  options.w_relevance = 1.0f;
  vit::VitModel model2(tiny_model_config(), rng);
  Trainer trainer2(model2, options);
  const TrainStats with = trainer2.fit(ds, &task);
  EXPECT_GT(with.last.relevance, 0.0f);
}

TEST(Trainer, EmptyDatasetThrows) {
  Rng rng(5);
  vit::VitModel model(tiny_model_config(), rng);
  Trainer trainer(model, {});
  EXPECT_THROW(trainer.fit(data::Dataset()), std::invalid_argument);
}

TEST(SupervisedLosses, GradShapesMatchOutputs) {
  Rng rng(6);
  vit::VitModel model(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(4, 7);
  const auto idx = ds.all_indices();
  const data::Batch batch = ds.make_batch(idx);
  const vit::VitOutput out = model.forward(batch.images);
  TrainerOptions options;
  options.w_relevance = 1.0f;
  vit::VitOutputGrads grads;
  const StepLosses losses = supervised_losses(out, batch, options, grads);
  EXPECT_EQ(grads.objectness.shape(), out.objectness.shape());
  EXPECT_EQ(grads.class_logits.shape(), out.class_logits.shape());
  EXPECT_EQ(grads.attr_logits.shape(), out.attr_logits.shape());
  EXPECT_EQ(grads.box_deltas.shape(), out.box_deltas.shape());
  EXPECT_EQ(grads.relevance.shape(), out.relevance.shape());
  EXPECT_GT(losses.total(), 0.0f);
}

TEST(SupervisedLosses, BoxGradMaskedToObjectCells) {
  Rng rng(8);
  vit::VitModel model(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(2, 9);
  const auto idx = ds.all_indices();
  const data::Batch batch = ds.make_batch(idx);
  const vit::VitOutput out = model.forward(batch.images);
  vit::VitOutputGrads grads;
  supervised_losses(out, batch, {}, grads);
  for (int64_t i = 0; i < grads.box_deltas.numel(); ++i) {
    if (batch.box_mask[i] == 0.0f) EXPECT_EQ(grads.box_deltas[i], 0.0f);
  }
}

TEST(Distiller, StudentApproachesTeacher) {
  Rng rng(10);
  vit::ViTConfig teacher_cfg = tiny_model_config();
  teacher_cfg.dim = 24;
  vit::VitModel teacher(teacher_cfg, rng);
  vit::VitModel student(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(24, 11);

  // Distance of student logits from teacher logits before/after.
  auto distance = [&]() {
    const auto idx = ds.all_indices();
    const data::Batch batch = ds.make_batch(idx);
    teacher.set_training(false);
    student.set_training(false);
    const auto t = teacher.forward(batch.images);
    const auto s = student.forward(batch.images);
    return nn::mse(s.class_logits, t.class_logits).value;
  };
  const float before = distance();
  DistillOptions options;
  options.epochs = 10;
  options.batch_size = 8;
  options.alpha_hard = 0.0f;  // isolate the KD signal for this test
  Distiller distiller(teacher, student, options, rng);
  const DistillStats stats = distiller.run(ds);
  EXPECT_GT(stats.steps, 0);
  EXPECT_LT(distance(), before);
  EXPECT_LT(stats.last_total, stats.first_total);
}

TEST(Distiller, FeatureProjectionOptional) {
  Rng rng(12);
  vit::VitModel teacher(tiny_model_config(), rng);
  vit::VitModel student(tiny_model_config(), rng);
  const data::Dataset ds = tiny_dataset(8, 13);
  DistillOptions options;
  options.epochs = 1;
  options.gamma_features = 0.0f;  // disabled
  Distiller distiller(teacher, student, options, rng);
  const DistillStats stats = distiller.run(ds);
  EXPECT_EQ(stats.last_feature, 0.0f);
  DistillOptions with_features;
  with_features.epochs = 1;
  with_features.gamma_features = 0.5f;
  vit::VitModel student2(tiny_model_config(), rng);
  Distiller distiller2(teacher, student2, with_features, rng);
  EXPECT_GT(distiller2.run(ds).last_feature, 0.0f);
}

TEST(Distiller, GridMismatchThrows) {
  Rng rng(14);
  vit::ViTConfig other = tiny_model_config();
  other.image_size = 48;  // different grid
  vit::VitModel teacher(tiny_model_config(), rng);
  vit::VitModel student(other, rng);
  EXPECT_THROW(Distiller(teacher, student, {}, rng), std::invalid_argument);
}

TEST(Distiller, TaskRelevanceSupervisionLearns) {
  Rng rng(15);
  vit::ViTConfig teacher_cfg = tiny_model_config();
  teacher_cfg.dim = 24;
  vit::VitModel teacher(teacher_cfg, rng);
  // Give the teacher brief supervised training so KD targets are sane.
  const data::Dataset corpus = tiny_dataset(48, 16);
  TrainerOptions topt;
  topt.epochs = 6;
  Trainer(teacher, topt).fit(corpus);

  vit::VitModel student(tiny_model_config(), rng);
  const data::TaskSpec& task = data::task_by_id(2);  // fragile_items
  DistillOptions options;
  options.epochs = 14;
  Distiller distiller(teacher, student, options, rng);
  distiller.run(corpus, &task);

  // Relevance head should correlate with ground truth on training data.
  const auto idx = corpus.all_indices();
  const data::Batch batch = corpus.make_batch(idx, &task);
  student.set_training(false);
  const auto out = student.forward(batch.images);
  int64_t correct = 0, total = 0;
  for (int64_t i = 0; i < out.relevance.numel(); ++i) {
    if (batch.objectness[i] < 0.5f) continue;
    const bool pred = out.relevance[i] > 0.0f;
    const bool truth = batch.relevance[i] > 0.5f;
    correct += (pred == truth);
    ++total;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.7);
}

}  // namespace
}  // namespace itask::distill
