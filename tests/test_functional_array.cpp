// Cross-validation of the functional (data-carrying) systolic simulator
// against the INT8 GEMM kernel (numerics) and the analytic timing model
// (cycle counts) — DESIGN.md §7's strongest accelerator-model evidence.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/functional_array.h"
#include "accel/systolic.h"
#include "quant/int8_gemm.h"
#include "tensor/rng.h"

namespace itask::accel {
namespace {

std::vector<int8_t> random_int8(int64_t count, Rng& rng) {
  std::vector<int8_t> out(static_cast<size_t>(count));
  for (auto& v : out) v = static_cast<int8_t>(rng.randint(-128, 127));
  return out;
}

class FunctionalVsKernel
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(FunctionalVsKernel, NumericallyIdenticalToInt8Gemm) {
  const auto [m, k, n, zp] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 131 + k * 17 + n));
  const auto a = random_int8(m * k, rng);
  const auto w = random_int8(n * k, rng);
  std::vector<int32_t> expected(static_cast<size_t>(m * n));
  quant::int8_gemm_bt(a, zp, w, expected, m, k, n);

  for (int64_t pe : {4, 8, 16}) {
    FunctionalArrayConfig cfg;
    cfg.rows = pe;
    cfg.cols = pe;
    const FunctionalSystolicArray array(cfg);
    const FunctionalResult result = array.gemm_bt(a, zp, w, m, k, n);
    ASSERT_EQ(result.acc.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(result.acc[i], expected[i])
          << "pe=" << pe << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalVsKernel,
    ::testing::Values(std::make_tuple(1, 1, 1, 0),
                      std::make_tuple(3, 5, 7, 0),
                      std::make_tuple(10, 16, 16, 4),
                      std::make_tuple(10, 40, 120, -7),
                      std::make_tuple(25, 17, 9, 12),
                      std::make_tuple(4, 64, 3, -128),
                      std::make_tuple(16, 16, 16, 127)));

TEST(FunctionalArray, CycleCountMatchesAnalyticComputeModel) {
  // The analytic model's compute term is tiles * (m + rows + cols - 2);
  // the clocked simulation must agree exactly.
  Rng rng(9);
  for (const auto [m, k, n] :
       {std::tuple<int64_t, int64_t, int64_t>{10, 40, 120},
        std::tuple<int64_t, int64_t, int64_t>{25, 64, 40},
        std::tuple<int64_t, int64_t, int64_t>{9, 48, 40}}) {
    const auto a = random_int8(m * k, rng);
    const auto w = random_int8(n * k, rng);
    FunctionalArrayConfig fcfg;
    fcfg.rows = 16;
    fcfg.cols = 16;
    const FunctionalResult fr =
        FunctionalSystolicArray(fcfg).gemm_bt(a, 0, w, m, k, n);

    SystolicConfig scfg;
    scfg.rows = 16;
    scfg.cols = 16;
    vit::GemmOp op;
    op.m = m;
    op.k = k;
    op.n = n;
    const GemmTiming timing = SystolicArray(scfg).simulate_gemm(op);
    EXPECT_EQ(fr.cycles, timing.compute_cycles)
        << "m=" << m << " k=" << k << " n=" << n;
    EXPECT_EQ(fr.tiles, timing.tiles);
  }
}

TEST(FunctionalArray, ZeroPointFeedHandlesPadding) {
  // With a nonzero activation zero point, padded lanes (k beyond the real
  // dimension, streamed rows beyond m) must contribute exactly zero.
  Rng rng(11);
  const int64_t m = 3, k = 5, n = 2;  // deliberately far from PE multiples
  const auto a = random_int8(m * k, rng);
  const auto w = random_int8(n * k, rng);
  std::vector<int32_t> expected(static_cast<size_t>(m * n));
  quant::int8_gemm_bt(a, 100, w, expected, m, k, n);
  FunctionalArrayConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  const FunctionalResult result =
      FunctionalSystolicArray(cfg).gemm_bt(a, 100, w, m, k, n);
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(result.acc[i], expected[i]);
}

TEST(FunctionalArray, WeightLoadsCountPhysicalRegisters) {
  Rng rng(13);
  const auto a = random_int8(4 * 20, rng);
  const auto w = random_int8(10 * 20, rng);
  FunctionalArrayConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const FunctionalResult r =
      FunctionalSystolicArray(cfg).gemm_bt(a, 0, w, 4, 20, 10);
  // ceil(20/8) * ceil(10/8) = 3 * 2 = 6 tiles, 64 registers each.
  EXPECT_EQ(r.tiles, 6);
  EXPECT_EQ(r.weight_loads, 6 * 64);
}

TEST(FunctionalArray, BadSizesThrow) {
  const FunctionalSystolicArray array;
  std::vector<int8_t> a(6), w(6);
  EXPECT_THROW(array.gemm_bt(a, 0, w, 2, 4, 2), std::invalid_argument);
  FunctionalArrayConfig bad;
  bad.rows = 0;
  EXPECT_THROW(FunctionalSystolicArray{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace itask::accel
