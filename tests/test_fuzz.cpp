// Fuzz-style robustness tests: random inputs must never corrupt state,
// produce non-finite numbers, or crash — only reject cleanly.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "kg/matcher.h"
#include "kg/logic.h"
#include "kg/serialize.h"
#include "llm/oracle.h"
#include "tensor/ops.h"

namespace itask {
namespace {

std::string random_text(Rng& rng, int64_t length) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ .,;:-()0123456789";
  std::string out;
  for (int64_t i = 0; i < length; ++i)
    out.push_back(kAlphabet[rng.randint(0, sizeof(kAlphabet) - 2)]);
  return out;
}

TEST(Fuzz, OracleAcceptsArbitraryText) {
  Rng rng(101);
  llm::OracleOptions opt;
  opt.weight_noise = 0.3f;
  opt.drop_probability = 0.2f;
  opt.spurious_probability = 0.2f;
  const llm::Oracle oracle(opt);
  for (int i = 0; i < 40; ++i) {
    const std::string text = random_text(rng, rng.randint(0, 300));
    const kg::KnowledgeGraph g = oracle.generate(text);
    EXPECT_GT(g.node_count(), 0);
    // Graph always serializes and parses back.
    const kg::KnowledgeGraph back = kg::deserialize(kg::serialize(g));
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
    // Compiled task is finite.
    const auto ct = kg::compile_task(g, g.find("task", kg::NodeType::kTask),
                                     data::kNumAttributes, data::kNumClasses);
    for (int64_t a = 0; a < data::kNumAttributes; ++a) {
      EXPECT_TRUE(std::isfinite(ct.positive[a]));
      EXPECT_TRUE(std::isfinite(ct.negative[a]));
    }
  }
}

TEST(Fuzz, RandomScenesRenderFinitePixels) {
  Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    data::GeneratorOptions opt;
    opt.min_objects = static_cast<int64_t>(rng.randint(0, 4));
    opt.max_objects =
        std::min<int64_t>(9, opt.min_objects + rng.randint(0, 5));
    opt.color_jitter = rng.uniform(0.0f, 0.3f);
    opt.center_jitter = rng.uniform(0.0f, 0.3f);
    data::SceneGenerator gen(opt);
    const data::Scene scene = gen.generate(rng);
    for (float v : scene.image.data()) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, -0.01f);
      EXPECT_LE(v, 1.5f);  // blending can mildly exceed 1 for specular cues
    }
  }
}

TEST(Fuzz, GraphDeserializerRejectsGarbage) {
  Rng rng(303);
  for (int i = 0; i < 40; ++i) {
    const std::string junk =
        "ITASK-KG v1\n" + random_text(rng, rng.randint(1, 120));
    // Either parses (if it happens to be valid) or throws — never crashes.
    try {
      (void)kg::deserialize(junk);
    } catch (const std::invalid_argument&) {
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Fuzz, TaskExprParserRejectsGarbage) {
  Rng rng(404);
  for (int i = 0; i < 60; ++i) {
    const std::string junk = random_text(rng, rng.randint(1, 60));
    try {
      const kg::TaskExpr e = kg::TaskExpr::parse(junk);
      // If it parsed, it must round-trip.
      EXPECT_EQ(kg::TaskExpr::parse(e.to_string()).to_string(),
                e.to_string());
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, SoftmaxNeverProducesNan) {
  Rng rng(505);
  for (int i = 0; i < 20; ++i) {
    Tensor x = rng.randn({8, 16}, 0.0f, rng.uniform(0.1f, 50.0f));
    // Inject extremes.
    x[0] = 1e30f;
    x[1] = -1e30f;
    const Tensor y = ops::softmax_lastdim(x);
    for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
    const Tensor ly = ops::log_softmax_lastdim(x);
    for (float v : ly.data()) EXPECT_TRUE(v <= 0.0f || std::isnan(v)) << v;
    for (float v : ly.data()) EXPECT_FALSE(std::isnan(v));
  }
}

TEST(Fuzz, DatasetBatchingArbitrarySubsets) {
  data::GeneratorOptions opt;
  data::SceneGenerator gen(opt);
  Rng rng(606);
  const data::Dataset ds = data::Dataset::generate(gen, 24, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t count = rng.randint(1, ds.size());
    const auto subset = rng.sample_indices(ds.size(), count);
    const data::Batch batch =
        ds.make_batch(subset, &data::task_by_id(rng.randint(0, 7)));
    EXPECT_EQ(batch.images.dim(0), count);
    for (float v : batch.attributes.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

}  // namespace
}  // namespace itask
