// Kernel-layer parity tests: the blocked/packed GEMMs (tensor/gemm.h,
// quant int8) against the retained naive reference kernels, across awkward
// shapes — unit dims, primes, tails smaller than the micro-tile, blocks
// larger than one cache slab, empty batches. fp32 comparisons use the
// documented reassociation tolerance (EXPERIMENTS.md K0); int8 must be
// bit-exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "nn/linear.h"
#include "quant/int8_gemm.h"
#include "tensor/gemm.h"
#include "tensor/kernel_pool.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace itask {
namespace {

// |packed − naive| ≤ kFpTol·(1 + |naive|): fp32 reassociation only — the
// kernels do the same multiplies in a different summation order.
constexpr float kFpTol = 2e-5f;

void expect_close(std::span<const float> got, std::span<const float> want,
                  const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = kFpTol * (1.0f + std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << label << " element " << i;
  }
}

// Awkward shapes: all-ones, primes, sub-tile tails, exact tile multiples,
// tile+1, and one case crossing every cache-block boundary (KC/MC/NC = 256/
// 128/128, MR×NR = 8×16).
const std::vector<std::tuple<int64_t, int64_t, int64_t>> kShapes = {
    {1, 1, 1},    {1, 17, 1},   {19, 1, 23},  {7, 11, 13},
    {5, 3, 9},    {8, 16, 16},  {16, 32, 48}, {9, 257, 17},
    {130, 300, 130}};

class GemmKernelParity
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmKernelParity, Fp32AllVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = rng.randn({m, k});
  const Tensor b_kn = rng.randn({k, n});
  const Tensor b_nk = rng.randn({n, k});
  const Tensor a_km = rng.randn({k, m});

  Tensor got({m, n}), want({m, n});
  gemm::gemm_nn(a.data().data(), b_kn.data().data(), got.data().data(), m, k,
                n);
  gemm::reference::gemm_nn(a.data().data(), b_kn.data().data(),
                           want.data().data(), m, k, n);
  expect_close(got.data(), want.data(), "nn");

  got.fill(0.0f);
  want.fill(0.0f);
  gemm::gemm_bt(a.data().data(), b_nk.data().data(), got.data().data(), m, k,
                n);
  gemm::reference::gemm_bt(a.data().data(), b_nk.data().data(),
                           want.data().data(), m, k, n);
  expect_close(got.data(), want.data(), "bt");

  got.fill(0.0f);
  want.fill(0.0f);
  gemm::gemm_at(a_km.data().data(), b_kn.data().data(), got.data().data(), m,
                k, n);
  gemm::reference::gemm_at(a_km.data().data(), b_kn.data().data(),
                           want.data().data(), m, k, n);
  expect_close(got.data(), want.data(), "at");
}

TEST_P(GemmKernelParity, AccumulatesIntoNonzeroC) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n) + 77);
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({k, n});
  Tensor got = rng.randn({m, n});
  Tensor want = got;
  gemm::gemm_nn(a.data().data(), b.data().data(), got.data().data(), m, k, n);
  gemm::reference::gemm_nn(a.data().data(), b.data().data(),
                           want.data().data(), m, k, n);
  expect_close(got.data(), want.data(), "accumulate");
}

TEST_P(GemmKernelParity, Int8PackedBitExactVsNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 31 + k * 7 + n) + 5);
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> w(static_cast<size_t>(n * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  const int32_t zp = static_cast<int32_t>(rng.randint(-50, 50));
  std::vector<int32_t> want(static_cast<size_t>(m * n));
  std::vector<int32_t> got(static_cast<size_t>(m * n), -1);
  quant::int8_gemm_bt(a, zp, w, want, m, k, n);
  quant::int8_gemm_bt_packed(a, zp, w, quant::weight_row_sums(w, n, k), got,
                             m, k, n);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, GemmKernelParity, ::testing::ValuesIn(kShapes),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

// ---- publish-time weight pre-packing --------------------------------------

class GemmPrepackParity
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

// The prepacked entry builds the same panels in the same order as the
// per-call pack, so fp32 results are bit-identical to gemm_bt (and therefore
// within the K0 reassociation tolerance of the naive reference).
TEST_P(GemmPrepackParity, Fp32BitExactVsPackPerCallAndCloseToReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 131 + k * 17 + n) + 3);
  const Tensor a = rng.randn({m, k});
  const Tensor b_nk = rng.randn({n, k});
  Tensor per_call({m, n}), prepacked({m, n}), naive({m, n});
  gemm::gemm_bt(a.data().data(), b_nk.data().data(), per_call.data().data(),
                m, k, n);
  const gemm::PackedB packed = gemm::pack_weights_bt(b_nk.data().data(), k, n);
  EXPECT_EQ(packed.k, k);
  EXPECT_EQ(packed.n, n);
  gemm::gemm_bt_prepacked(a.data().data(), packed, prepacked.data().data(), m);
  EXPECT_TRUE(prepacked.allclose(per_call, 0.0f)) << "prepacked vs per-call";
  gemm::reference::gemm_bt(a.data().data(), b_nk.data().data(),
                           naive.data().data(), m, k, n);
  expect_close(prepacked.data(), naive.data(), "prepacked vs naive");
}

TEST_P(GemmPrepackParity, Int8BitExactVsPackedAndNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 13 + k * 29 + n) + 11);
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> w(static_cast<size_t>(n * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  const int32_t zp = static_cast<int32_t>(rng.randint(-50, 50));
  const std::vector<int32_t> sums = quant::weight_row_sums(w, n, k);
  std::vector<int32_t> naive(static_cast<size_t>(m * n));
  std::vector<int32_t> packed(static_cast<size_t>(m * n), -1);
  std::vector<int32_t> prepacked(static_cast<size_t>(m * n), -2);
  quant::int8_gemm_bt(a, zp, w, naive, m, k, n);
  quant::int8_gemm_bt_packed(a, zp, w, sums, packed, m, k, n);
  const quant::PackedWeightInt8 pw = quant::pack_weights_int8(w, n, k);
  quant::int8_gemm_bt_prepacked(a, zp, pw, sums, prepacked, m);
  EXPECT_EQ(prepacked, packed);
  EXPECT_EQ(prepacked, naive);
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, GemmPrepackParity, ::testing::ValuesIn(kShapes),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(GemmPrepack, LinearInferUnchangedByPrepack) {
  Rng rng(1234);
  nn::Linear layer(24, 40, rng);
  const Tensor x = rng.randn({5, 3, 24});
  const Tensor before = layer.infer(x);
  EXPECT_FALSE(layer.prepacked());
  layer.prepack_for_serving();
  ASSERT_TRUE(layer.prepacked());
  layer.prepack_for_serving();  // idempotent
  const Tensor after = layer.infer(x);
  // infer() must stay arithmetically identical to forward() — the prepacked
  // kernel is bit-identical, not merely close.
  EXPECT_TRUE(after.allclose(before, 0.0f));
  layer.set_training(false);
  EXPECT_TRUE(layer.forward(x).allclose(before, 0.0f));
}

TEST(GemmPrepack, QlinearForwardUnchangedByPrepack) {
  Rng rng(77);
  const Tensor w = rng.randn({40, 24});
  quant::QuantizedWeight qw =
      quant::quantize_weight(w, quant::WeightGranularity::kPerChannel);
  const Tensor x = rng.randn({9, 24});
  const quant::QuantParams act = quant::QuantParams::asymmetric(-3.0f, 3.0f);
  const Tensor before = quant::qlinear_forward(x, act, qw, nullptr);
  qw.prepack();
  ASSERT_NE(qw.packed, nullptr);
  const auto* first = qw.packed.get();
  qw.prepack();  // idempotent — the cache object is not rebuilt
  EXPECT_EQ(qw.packed.get(), first);
  const Tensor after = quant::qlinear_forward(x, act, qw, nullptr);
  EXPECT_TRUE(after.allclose(before, 0.0f));  // int8 path is bit-exact
}

// Satellite: the per-thread pack workspaces must stay bounded by one slab
// per operand (exact reservation, no geometric overshoot) however large the
// GEMM — and the bound is the documented cap.
TEST(GemmPrepack, PackWorkspaceStaysBoundedBySlabCap) {
  Rng rng(5);
  const int64_t m = 300, k = 600, n = 300;  // crosses every blocking extent
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({n, k});
  Tensor c({m, n});
  gemm::gemm_bt(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  EXPECT_LE(gemm::pack_workspace_bytes(), gemm::pack_workspace_cap_bytes());
}

TEST(GemmPrepack, PackWorkspaceReleaseFreesAndRegrows) {
  // The release valve for retiring threads: frees this thread's packing
  // workspaces (including the int8 ones registered by quant/int8_gemm) and
  // the next kernel call transparently regrows them with unchanged results.
  Rng rng(6);
  const int64_t m = 64, k = 96, n = 48;
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({n, k});
  Tensor c({m, n});
  gemm::gemm_bt(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  ASSERT_GT(gemm::pack_workspace_bytes(), 0);
  gemm::pack_workspace_release();
  EXPECT_EQ(gemm::pack_workspace_bytes(), 0);
  gemm::pack_workspace_release();  // idempotent
  EXPECT_EQ(gemm::pack_workspace_bytes(), 0);
  Tensor c2({m, n});
  gemm::gemm_bt(a.data().data(), b.data().data(), c2.data().data(), m, k, n);
  EXPECT_GT(gemm::pack_workspace_bytes(), 0);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(c2[i], c[i]) << "release changed kernel results at " << i;
  }
}

// ---- kernel thread pool ---------------------------------------------------

// Restores the single-core default even when a test fails mid-way.
struct PoolGuard {
  ~PoolGuard() { gemm::KernelPool::instance().configure(0); }
};

TEST(GemmKernelPool, ConfigureReleasesCallingThreadPackWorkspaces) {
  // Reconfiguring the pool is the lifecycle moment workspaces strand: joined
  // lanes free their own on exit, and configure() releases the calling
  // thread's so a server teardown leaves no thread-local slabs behind.
  PoolGuard guard;
  Rng rng(7);
  const int64_t m = 64, k = 96, n = 48;
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({n, k});
  Tensor c({m, n});
  gemm::gemm_bt(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  ASSERT_GT(gemm::pack_workspace_bytes(), 0);
  gemm::KernelPool::instance().configure(2);
  EXPECT_EQ(gemm::pack_workspace_bytes(), 0);
  gemm::gemm_bt(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  ASSERT_GT(gemm::pack_workspace_bytes(), 0);
  gemm::KernelPool::instance().configure(0);
  EXPECT_EQ(gemm::pack_workspace_bytes(), 0);
}

TEST(GemmKernelPool, Fp32DeterministicAcrossRunsAndThreadCounts) {
  PoolGuard guard;
  Rng rng(2024);
  const int64_t m = 700, k = 96, n = 160;  // several MC slabs, clears the
                                           // kKernelPoolMinRows threshold
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({n, k});
  const gemm::PackedB packed = gemm::pack_weights_bt(b.data().data(), k, n);
  Tensor serial({m, n});
  gemm::gemm_bt_prepacked(a.data().data(), packed, serial.data().data(), m);
  for (int64_t threads : {2, 3, 4}) {
    gemm::KernelPool::instance().configure(threads);
    EXPECT_EQ(gemm::KernelPool::instance().threads(), threads);
    for (int run = 0; run < 3; ++run) {
      Tensor pooled({m, n});
      gemm::gemm_bt_prepacked(a.data().data(), packed, pooled.data().data(),
                              m);
      EXPECT_TRUE(pooled.allclose(serial, 0.0f))
          << "threads=" << threads << " run=" << run;
    }
  }
  gemm::KernelPool::instance().configure(0);
  EXPECT_EQ(gemm::KernelPool::instance().threads(), 0);
}

TEST(GemmKernelPool, Int8DeterministicAcrossRunsAndThreadCounts) {
  PoolGuard guard;
  Rng rng(4048);
  const int64_t m = 640, k = 64, n = 144;
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> w(static_cast<size_t>(n * k));
  for (auto& v : a) v = static_cast<int8_t>(rng.randint(-128, 127));
  for (auto& v : w) v = static_cast<int8_t>(rng.randint(-128, 127));
  const std::vector<int32_t> sums = quant::weight_row_sums(w, n, k);
  const quant::PackedWeightInt8 pw = quant::pack_weights_int8(w, n, k);
  std::vector<int32_t> serial(static_cast<size_t>(m * n));
  quant::int8_gemm_bt_prepacked(a, 7, pw, sums, serial, m);
  for (int64_t threads : {2, 4}) {
    gemm::KernelPool::instance().configure(threads);
    for (int run = 0; run < 3; ++run) {
      std::vector<int32_t> pooled(static_cast<size_t>(m * n), -1);
      quant::int8_gemm_bt_prepacked(a, 7, pw, sums, pooled, m);
      EXPECT_EQ(pooled, serial) << "threads=" << threads << " run=" << run;
    }
  }
}

// Two threads issuing pooled GEMMs concurrently: one owns the pool, the
// other falls back to its serial loop — results identical either way. This
// is the TSan target for pool handoff + busy fallback.
TEST(GemmKernelPool, ConcurrentCallersBitExactViaBusyFallback) {
  PoolGuard guard;
  Rng rng(99);
  const int64_t m = 512, k = 80, n = 128;
  const Tensor a = rng.randn({m, k});
  const Tensor b = rng.randn({n, k});
  const gemm::PackedB packed = gemm::pack_weights_bt(b.data().data(), k, n);
  Tensor serial({m, n});
  gemm::gemm_bt_prepacked(a.data().data(), packed, serial.data().data(), m);
  gemm::KernelPool::instance().configure(3);
  constexpr int kIters = 8;
  std::vector<int> mismatches(2, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < 2; ++t) {
    callers.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        Tensor c({m, n});
        gemm::gemm_bt_prepacked(a.data().data(), packed, c.data().data(), m);
        if (!c.allclose(serial, 0.0f)) ++mismatches[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(mismatches[0], 0);
  EXPECT_EQ(mismatches[1], 0);
}

TEST(GemmKernel, EmptyBatchAndZeroDims) {
  // Empty batch: [0, m, k] × [0, k, n] → [0, m, n], no work, no crash.
  EXPECT_EQ(ops::bmm(Tensor({0, 3, 4}), Tensor({0, 4, 5})).shape(),
            (Shape{0, 3, 5}));
  EXPECT_EQ(ops::bmm_bt(Tensor({0, 3, 4}), Tensor({0, 5, 4})).shape(),
            (Shape{0, 3, 5}));
  EXPECT_EQ(ops::bmm_at(Tensor({0, 4, 3}), Tensor({0, 4, 5})).shape(),
            (Shape{0, 3, 5}));
  // Zero rows / zero inner dim through the 2-D entry points.
  EXPECT_EQ(ops::matmul(Tensor({0, 4}), Tensor({4, 5})).shape(),
            (Shape{0, 5}));
  Tensor zk = ops::matmul(Tensor({3, 0}), Tensor({0, 5}));
  EXPECT_EQ(zk.shape(), (Shape{3, 5}));
  for (float v : zk.data()) EXPECT_EQ(v, 0.0f);
}

TEST(GemmKernel, BmmFamilyMatchesReferencePerBatch) {
  Rng rng(42);
  const int64_t bb = 3, m = 9, k = 21, n = 12;
  const Tensor a = rng.randn({bb, m, k});
  const Tensor b = rng.randn({bb, k, n});
  const Tensor out = ops::bmm(a, b);
  for (int64_t i = 0; i < bb; ++i) {
    Tensor want({m, n});
    gemm::reference::gemm_nn(a.data().data() + i * m * k,
                             b.data().data() + i * k * n, want.data().data(),
                             m, k, n);
    EXPECT_TRUE(out.index(i).allclose(want, 1e-4f)) << "batch " << i;
  }
}

TEST(GemmKernel, RowSumsTableMatchesOnTheFly) {
  Rng rng(9);
  const Tensor w = rng.randn({7, 13});
  const quant::QuantizedWeight qw =
      quant::quantize_weight(w, quant::WeightGranularity::kPerChannel);
  EXPECT_EQ(qw.row_sums, quant::weight_row_sums(qw.data, qw.out, qw.in));
  // qlinear_forward must accept a hand-built weight with no table.
  quant::QuantizedWeight bare = qw;
  bare.row_sums.clear();
  const Tensor x = rng.randn({4, 13});
  const quant::QuantParams act = quant::QuantParams::asymmetric(-3.0f, 3.0f);
  const Tensor with_table = quant::qlinear_forward(x, act, qw, nullptr);
  const Tensor without = quant::qlinear_forward(x, act, bare, nullptr);
  EXPECT_TRUE(with_table.allclose(without, 0.0f));
}

}  // namespace
}  // namespace itask
