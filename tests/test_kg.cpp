// Knowledge-graph tests: graph structure, queries, serialization round
// trips, task compilation (1-hop and 2-hop), and the matcher.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "kg/graph.h"
#include "kg/matcher.h"
#include "kg/serialize.h"
#include "kg/task_table.h"

namespace itask::kg {
namespace {

KnowledgeGraph make_small_graph() {
  KnowledgeGraph g;
  const NodeId task = g.add_node(NodeType::kTask, "task");
  const NodeId sharp = g.add_node(NodeType::kAttribute, "sharp");
  g.set_property(sharp, "index", 0.0f);
  const NodeId metallic = g.add_node(NodeType::kAttribute, "metallic");
  g.set_property(metallic, "index", 1.0f);
  const NodeId organic = g.add_node(NodeType::kAttribute, "organic");
  g.set_property(organic, "index", 2.0f);
  const NodeId scalpel = g.add_node(NodeType::kObjectClass, "scalpel");
  g.set_property(scalpel, "index", 1.0f);
  const NodeId fruit = g.add_node(NodeType::kObjectClass, "fruit");
  g.set_property(fruit, "index", 2.0f);
  g.add_edge(task, sharp, Relation::kRequires, 0.6f);
  g.add_edge(task, metallic, Relation::kRequires, 0.5f);
  g.add_edge(task, organic, Relation::kExcludes, 0.4f);
  g.add_edge(scalpel, sharp, Relation::kHasAttribute, 1.0f);
  g.add_edge(scalpel, metallic, Relation::kHasAttribute, 1.0f);
  g.add_edge(fruit, organic, Relation::kHasAttribute, 1.0f);
  g.set_property(task, "threshold", 0.8f);
  return g;
}

TEST(Graph, NodesAndEdges) {
  const KnowledgeGraph g = make_small_graph();
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_EQ(g.find("task", NodeType::kTask), 0);
  EXPECT_EQ(g.find("sharp"), 1);
  EXPECT_EQ(g.find("nonexistent"), kInvalidNode);
  EXPECT_EQ(g.find("task", NodeType::kAttribute), kInvalidNode);
}

TEST(Graph, EdgesFromFiltersByRelation) {
  const KnowledgeGraph g = make_small_graph();
  EXPECT_EQ(g.edges_from(0).size(), 3u);
  EXPECT_EQ(g.edges_from(0, Relation::kRequires).size(), 2u);
  EXPECT_EQ(g.edges_from(0, Relation::kExcludes).size(), 1u);
  EXPECT_EQ(g.edges_from(4, Relation::kHasAttribute).size(), 2u);
}

TEST(Graph, Properties) {
  KnowledgeGraph g = make_small_graph();
  EXPECT_FLOAT_EQ(g.property(0, "threshold").value(), 0.8f);
  EXPECT_FALSE(g.property(0, "missing").has_value());
  g.set_property(0, "threshold", 0.9f);
  EXPECT_FLOAT_EQ(g.property(0, "threshold").value(), 0.9f);
  EXPECT_THROW(g.set_property(99, "x", 1.0f), std::invalid_argument);
}

TEST(Graph, BadEdgeThrows) {
  KnowledgeGraph g;
  g.add_node(NodeType::kTask, "t");
  EXPECT_THROW(g.add_edge(0, 5, Relation::kRequires, 1.0f),
               std::invalid_argument);
}

TEST(Graph, RemoveEdgesIf) {
  KnowledgeGraph g = make_small_graph();
  const int64_t removed = g.remove_edges_if(
      [](const Edge& e) { return e.relation == Relation::kHasAttribute; });
  EXPECT_EQ(removed, 3);
  EXPECT_EQ(g.edge_count(), 3);
}

TEST(Graph, ToTextMentionsEverything) {
  const std::string text = make_small_graph().to_text();
  EXPECT_NE(text.find("task"), std::string::npos);
  EXPECT_NE(text.find("requires"), std::string::npos);
  EXPECT_NE(text.find("has_attribute"), std::string::npos);
}

TEST(Serialize, RoundTrip) {
  const KnowledgeGraph g = make_small_graph();
  const KnowledgeGraph back = deserialize(serialize(g));
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_FLOAT_EQ(back.property(0, "threshold").value(), 0.8f);
  EXPECT_EQ(back.node(4).type, NodeType::kObjectClass);
  EXPECT_EQ(back.node(4).label, "scalpel");
  const auto edges = back.edges_from(0, Relation::kExcludes);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_FLOAT_EQ(edges[0].weight, 0.4f);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "itask_kg_test.txt").string();
  save_graph(make_small_graph(), path);
  const KnowledgeGraph back = load_graph(path);
  EXPECT_EQ(back.node_count(), 6);
  std::remove(path.c_str());
}

TEST(Serialize, BadHeaderThrows) {
  EXPECT_THROW(deserialize("WRONG v9\n"), std::invalid_argument);
}

TEST(Serialize, WhitespaceLabelThrows) {
  KnowledgeGraph g;
  g.add_node(NodeType::kTask, "has space");
  EXPECT_THROW(serialize(g), std::invalid_argument);
}

TEST(CompileTask, OneHopWeights) {
  const KnowledgeGraph g = make_small_graph();
  const CompiledTask ct = compile_task(g, 0, 3, 3);
  EXPECT_FLOAT_EQ(ct.positive[0], 0.6f);  // sharp
  EXPECT_FLOAT_EQ(ct.positive[1], 0.5f);  // metallic
  EXPECT_FLOAT_EQ(ct.positive[2], 0.0f);
  EXPECT_FLOAT_EQ(ct.negative[2], 0.4f);  // organic excluded
  EXPECT_FLOAT_EQ(ct.threshold, 0.8f);
}

TEST(CompileTask, TwoHopClassAffinity) {
  const KnowledgeGraph g = make_small_graph();
  const CompiledTask ct = compile_task(g, 0, 3, 3);
  // scalpel: 1.0*0.6 + 1.0*0.5 = 1.1; fruit: 1.0*(-0.4) = -0.4.
  EXPECT_NEAR(ct.class_affinity[1], 1.1f, 1e-5f);
  EXPECT_NEAR(ct.class_affinity[2], -0.4f, 1e-5f);
  EXPECT_FLOAT_EQ(ct.class_affinity[0], 0.0f);  // background untouched
}

TEST(CompileTask, NonTaskNodeThrows) {
  const KnowledgeGraph g = make_small_graph();
  EXPECT_THROW(compile_task(g, 1, 3, 3), std::invalid_argument);
}

TEST(Matcher, PerfectAttributesScoreAboveThreshold) {
  const KnowledgeGraph g = make_small_graph();
  MatcherOptions opt;
  opt.alpha = 1.0f;  // attributes only
  opt.threshold_scale = 1.0f;
  const TaskMatcher m(compile_task(g, 0, 3, 3), opt);
  Tensor attrs({3}, {1.0f, 1.0f, 0.0f});  // sharp + metallic
  Tensor classes({3});
  EXPECT_NEAR(m.score(attrs, classes), 1.1f, 1e-5f);
  EXPECT_TRUE(m.relevant(attrs, classes));
  Tensor organic({3}, {0.0f, 0.0f, 1.0f});
  EXPECT_FALSE(m.relevant(organic, classes));
}

TEST(Matcher, ClassEvidenceBlending) {
  const KnowledgeGraph g = make_small_graph();
  MatcherOptions opt;
  opt.alpha = 0.0f;  // class evidence only
  opt.threshold_scale = 1.0f;
  const TaskMatcher m(compile_task(g, 0, 3, 3), opt);
  Tensor attrs({3});
  Tensor scalpel_onehot({3}, {0.0f, 1.0f, 0.0f});
  EXPECT_NEAR(m.score(attrs, scalpel_onehot), 1.1f, 1e-5f);
  EXPECT_TRUE(m.relevant(attrs, scalpel_onehot));
}

TEST(Matcher, ThresholdScaleRelaxes) {
  const KnowledgeGraph g = make_small_graph();
  MatcherOptions strict;
  strict.alpha = 1.0f;
  strict.threshold_scale = 1.0f;
  MatcherOptions relaxed = strict;
  relaxed.threshold_scale = 0.7f;
  const CompiledTask ct = compile_task(g, 0, 3, 3);
  Tensor soft({3}, {0.7f, 0.5f, 0.0f});  // score = 0.67 < 0.8
  Tensor classes({3});
  EXPECT_FALSE(TaskMatcher(ct, strict).relevant(soft, classes));
  EXPECT_TRUE(TaskMatcher(ct, relaxed).relevant(soft, classes));
}

TEST(Matcher, ConfidenceMonotonicInScore) {
  const KnowledgeGraph g = make_small_graph();
  const TaskMatcher m(compile_task(g, 0, 3, 3), {});
  Tensor classes({3});
  float prev = -1.0f;
  for (float level : {0.0f, 0.3f, 0.6f, 0.9f, 1.0f}) {
    Tensor attrs({3}, {level, level, 0.0f});
    const float c = m.confidence(attrs, classes);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0f);
    EXPECT_LE(c, 1.0f);
    prev = c;
  }
}

TEST(Matcher, SizeMismatchThrows) {
  const KnowledgeGraph g = make_small_graph();
  const TaskMatcher m(compile_task(g, 0, 3, 3), {});
  EXPECT_THROW(m.score(Tensor({2}), Tensor({3})), std::invalid_argument);
  EXPECT_THROW(m.score(Tensor({3}), Tensor({5})), std::invalid_argument);
}

TEST(Matcher, InvalidAlphaThrows) {
  const KnowledgeGraph g = make_small_graph();
  MatcherOptions opt;
  opt.alpha = 1.5f;
  EXPECT_THROW(TaskMatcher(compile_task(g, 0, 3, 3), opt),
               std::invalid_argument);
}

TEST(TaskTable, AddFindAndIds) {
  const KnowledgeGraph g = make_small_graph();
  const CompiledTask compiled = compile_task(g, 0, 3, 3);
  TaskTable table;
  EXPECT_EQ(table.size(), 0);
  EXPECT_FALSE(table.contains(TaskId{0}));
  EXPECT_EQ(table.find(TaskId{0}), nullptr);
  table.add(TaskId{2}, "surgical", compiled);
  table.add(TaskId{0}, "packing", compiled);
  EXPECT_EQ(table.size(), 2);
  EXPECT_TRUE(table.contains(TaskId{0}));
  EXPECT_FALSE(table.contains(TaskId{1}));
  const TaskTable::Entry* entry = table.find(TaskId{2});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->label, "surgical");
  EXPECT_EQ(entry->id, TaskId{2});
  EXPECT_EQ(entry->compiled.positive.numel(), compiled.positive.numel());
  // ids() comes back sorted — stable iteration order for snapshots.
  const auto ids = table.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], TaskId{0});
  EXPECT_EQ(ids[1], TaskId{2});
}

TEST(TaskTable, RejectsDuplicatesAndNegativeIds) {
  const KnowledgeGraph g = make_small_graph();
  const CompiledTask compiled = compile_task(g, 0, 3, 3);
  TaskTable table;
  table.add(TaskId{1}, "a", compiled);
  EXPECT_THROW(table.add(TaskId{1}, "b", compiled), std::invalid_argument);
  EXPECT_THROW(table.add(TaskId{-1}, "c", compiled), std::invalid_argument);
  EXPECT_THROW(table.add(TaskId{}, "d", compiled), std::invalid_argument);
  EXPECT_EQ(table.size(), 1);
}

TEST(TaskTable, TaskIdOrderingAndName) {
  EXPECT_EQ(TaskId{3}, TaskId{3});
  EXPECT_LT(TaskId{2}, TaskId{3});
  EXPECT_EQ(task_id_to_string(TaskId{7}), "task 7");
}

}  // namespace
}  // namespace itask::kg
