// Simulated-LLM oracle tests: tokenization, faithful reconstruction of every
// library task at zero noise, determinism, and the noise model's knobs.
#include <gtest/gtest.h>

#include "data/tasks.h"
#include "kg/matcher.h"
#include "kg/serialize.h"
#include "llm/oracle.h"

namespace itask::llm {
namespace {

TEST(Oracle, Tokenize) {
  const auto tokens = Oracle::tokenize("Find SHARP, metallic tools!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "find");
  EXPECT_EQ(tokens[1], "sharp");
  EXPECT_EQ(tokens[2], "metallic");
  EXPECT_EQ(tokens[3], "tools");
  EXPECT_TRUE(Oracle::tokenize("").empty());
  EXPECT_TRUE(Oracle::tokenize("123 456").empty());
}

TEST(Oracle, GraphContainsFullOntology) {
  Oracle oracle;
  const auto g = oracle.generate("detect anything");
  // 1 task + 16 attributes + 13 classes.
  EXPECT_EQ(g.node_count(), 1 + data::kNumAttributes + data::kNumClasses);
  EXPECT_NE(g.find("task", kg::NodeType::kTask), kg::kInvalidNode);
  EXPECT_NE(g.find("scalpel", kg::NodeType::kObjectClass), kg::kInvalidNode);
  EXPECT_NE(g.find("hazardous", kg::NodeType::kAttribute), kg::kInvalidNode);
}

class OracleReconstruction : public ::testing::TestWithParam<int> {};

// At zero noise, compiling the oracle's graph must reproduce the ground-truth
// task weights: the lexicon covers the whole task library.
TEST_P(OracleReconstruction, NoiselessGraphMatchesTaskSpec) {
  const data::TaskSpec& spec = data::task_by_id(GetParam());
  Oracle oracle;  // defaults: zero noise
  const auto g = oracle.generate(spec.description);
  const auto ct = kg::compile_task(g, g.find("task", kg::NodeType::kTask),
                                   data::kNumAttributes, data::kNumClasses);
  for (int64_t a = 0; a < data::kNumAttributes; ++a) {
    EXPECT_NEAR(ct.positive[a], spec.positive[a], 1e-5f)
        << "attr " << data::attribute_name(static_cast<data::Attribute>(a));
    EXPECT_NEAR(ct.negative[a], spec.negative[a], 1e-5f)
        << "attr " << data::attribute_name(static_cast<data::Attribute>(a));
  }
  EXPECT_NEAR(ct.threshold, spec.threshold, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, OracleReconstruction,
                         ::testing::Range(0, 8));

TEST(Oracle, DeterministicGivenTextAndSeed) {
  OracleOptions opt;
  opt.weight_noise = 0.2f;
  opt.drop_probability = 0.1f;
  Oracle a(opt), b(opt);
  const std::string text = data::task_by_id(0).description;
  EXPECT_EQ(kg::serialize(a.generate(text)), kg::serialize(b.generate(text)));
}

TEST(Oracle, DifferentTextsDecorrelate) {
  OracleOptions opt;
  opt.weight_noise = 0.2f;
  Oracle oracle(opt);
  const auto g0 = oracle.generate(data::task_by_id(0).description);
  const auto g1 = oracle.generate(data::task_by_id(1).description);
  EXPECT_NE(kg::serialize(g0), kg::serialize(g1));
}

TEST(Oracle, NoiseGrowsWeightDeviation) {
  const data::TaskSpec& spec = data::task_by_id(1);
  auto deviation = [&](float noise) {
    OracleOptions opt;
    opt.weight_noise = noise;
    Oracle oracle(opt);
    double total = 0.0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      OracleOptions o2 = opt;
      o2.seed = seed;
      Oracle noisy(o2);
      const auto g = noisy.generate(spec.description);
      const auto ct = kg::compile_task(g, 0, data::kNumAttributes,
                                       data::kNumClasses);
      for (int64_t a = 0; a < data::kNumAttributes; ++a)
        total += std::abs(ct.positive[a] - spec.positive[a]);
    }
    return total;
  };
  const double low = deviation(0.05f);
  const double high = deviation(0.5f);
  EXPECT_GT(high, low);
}

TEST(Oracle, DropProbabilityRemovesEdges) {
  OracleOptions keep_all;
  OracleOptions drop_half;
  drop_half.drop_probability = 0.5f;
  const std::string text = data::task_by_id(4).description;
  const auto g_full = Oracle(keep_all).generate(text);
  const auto g_dropped = Oracle(drop_half).generate(text);
  EXPECT_LT(g_dropped.edge_count(), g_full.edge_count());
}

TEST(Oracle, SpuriousEdgesAddNoiseRequirements) {
  OracleOptions opt;
  opt.spurious_probability = 0.8f;
  const std::string text = data::task_by_id(2).description;  // fragile only
  const auto g = Oracle(opt).generate(text);
  const auto base = Oracle().generate(text);
  EXPECT_GT(g.edges_from(0, kg::Relation::kRequires).size(),
            base.edges_from(0, kg::Relation::kRequires).size());
}

TEST(Oracle, InvalidOptionsThrow) {
  OracleOptions bad;
  bad.drop_probability = 1.0f;
  EXPECT_THROW(Oracle{bad}, std::invalid_argument);
  OracleOptions bad2;
  bad2.weight_noise = -0.1f;
  EXPECT_THROW(Oracle{bad2}, std::invalid_argument);
}

TEST(Oracle, OntologyEdgesMatchPrototypes) {
  Oracle oracle;
  const auto g = oracle.generate("anything");
  const kg::NodeId scalpel = g.find("scalpel", kg::NodeType::kObjectClass);
  const auto edges = g.edges_from(scalpel, kg::Relation::kHasAttribute);
  const Tensor proto =
      data::class_attribute_prototype(data::ObjectClass::kScalpel);
  int64_t expected = 0;
  for (int64_t a = 0; a < data::kNumAttributes; ++a)
    if (proto[a] > 0.0f) ++expected;
  EXPECT_EQ(static_cast<int64_t>(edges.size()), expected);
  for (const auto& e : edges) {
    const auto idx = g.property(e.dst, "index");
    ASSERT_TRUE(idx.has_value());
    EXPECT_FLOAT_EQ(e.weight,
                    proto[static_cast<int64_t>(*idx + 0.5f)]);
  }
}

}  // namespace
}  // namespace itask::llm
