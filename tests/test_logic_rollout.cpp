// Tests for the composite-mission soft logic and attention rollout.
#include <gtest/gtest.h>

#include "kg/logic.h"
#include "tensor/rng.h"
#include "vit/model.h"

namespace itask {
namespace {

using kg::TaskExpr;

Tensor probs(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())},
                std::vector<float>(values));
}

TEST(TaskExpr, LeafEvaluatesProbability) {
  const TaskExpr e = TaskExpr::attribute(1);
  EXPECT_FLOAT_EQ(e.evaluate(probs({0.2f, 0.9f, 0.5f})), 0.9f);
  EXPECT_THROW(e.evaluate(probs({0.2f})), std::invalid_argument);
}

TEST(TaskExpr, CrispBooleanSemantics) {
  // sharp AND (metallic OR bright) with crisp inputs.
  const TaskExpr e = TaskExpr::conjunction(
      {TaskExpr::attribute(0),
       TaskExpr::disjunction(
           {TaskExpr::attribute(1), TaskExpr::attribute(2)})});
  EXPECT_FLOAT_EQ(e.evaluate(probs({1, 1, 0})), 1.0f);
  EXPECT_FLOAT_EQ(e.evaluate(probs({1, 0, 1})), 1.0f);
  EXPECT_FLOAT_EQ(e.evaluate(probs({1, 0, 0})), 0.0f);
  EXPECT_FLOAT_EQ(e.evaluate(probs({0, 1, 1})), 0.0f);
}

TEST(TaskExpr, NotInverts) {
  const TaskExpr e = TaskExpr::negation(TaskExpr::attribute(0));
  EXPECT_FLOAT_EQ(e.evaluate(probs({0.3f})), 0.7f);
}

TEST(TaskExpr, SoftValuesAreMonotone) {
  const TaskExpr e = TaskExpr::conjunction(
      {TaskExpr::attribute(0), TaskExpr::attribute(1)});
  float prev = -1.0f;
  for (float p : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
    const float v = e.evaluate(probs({p, 0.8f}));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(TaskExpr, DeMorganHoldsForProductLogic) {
  // NOT(a AND b) == (NOT a) OR (NOT b) under product/probabilistic-sum.
  Rng rng(4);
  const TaskExpr lhs = TaskExpr::negation(TaskExpr::conjunction(
      {TaskExpr::attribute(0), TaskExpr::attribute(1)}));
  const TaskExpr rhs = TaskExpr::disjunction(
      {TaskExpr::negation(TaskExpr::attribute(0)),
       TaskExpr::negation(TaskExpr::attribute(1))});
  for (int i = 0; i < 50; ++i) {
    const Tensor p = rng.rand({2});
    EXPECT_NEAR(lhs.evaluate(p), rhs.evaluate(p), 1e-5f);
  }
}

TEST(TaskExpr, SerializeParseRoundTrip) {
  const TaskExpr e = TaskExpr::conjunction(
      {TaskExpr::attribute(1),
       TaskExpr::disjunction(
           {TaskExpr::attribute(0), TaskExpr::attribute(6)}),
       TaskExpr::negation(TaskExpr::attribute(15))});
  const std::string text = e.to_string();
  EXPECT_EQ(text, "(and attr:1 (or attr:0 attr:6) (not attr:15))");
  const TaskExpr back = TaskExpr::parse(text);
  EXPECT_EQ(back.to_string(), text);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Tensor p = rng.rand({16});
    EXPECT_NEAR(back.evaluate(p), e.evaluate(p), 1e-6f);
  }
}

TEST(TaskExpr, ParseErrors) {
  EXPECT_THROW(TaskExpr::parse(""), std::invalid_argument);
  EXPECT_THROW(TaskExpr::parse("(and attr:1"), std::invalid_argument);
  EXPECT_THROW(TaskExpr::parse("(xor attr:1 attr:2)"), std::invalid_argument);
  EXPECT_THROW(TaskExpr::parse("(not attr:1 attr:2)"), std::invalid_argument);
  EXPECT_THROW(TaskExpr::parse("foo"), std::invalid_argument);
  EXPECT_THROW(TaskExpr::parse("attr:1 junk"), std::invalid_argument);
}

TEST(TaskExpr, MaxAttribute) {
  const TaskExpr e = TaskExpr::parse("(or attr:3 (and attr:9 attr:2))");
  EXPECT_EQ(e.max_attribute(), 9);
}

TEST(CompositeMatcher, ThresholdGates) {
  kg::CompositeMatcher m{TaskExpr::conjunction({TaskExpr::attribute(0),
                                                 TaskExpr::attribute(1)}),
                         0.5f};
  EXPECT_TRUE(m.relevant(probs({0.9f, 0.9f})));
  EXPECT_FALSE(m.relevant(probs({0.9f, 0.4f})));
}

// ---- attention rollout -----------------------------------------------------

TEST(AttentionRollout, RowsAreDistributions) {
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 2;
  cfg.heads = 2;
  Rng rng(7);
  vit::VitModel model(cfg, rng);
  Tensor img = rng.rand({2, 3, 24, 24});
  (void)model.forward(img);
  const Tensor rollout = model.attention_rollout();
  const int64_t t = cfg.tokens() + 1;
  ASSERT_EQ(rollout.shape(), (Shape{2, t, t}));
  for (int64_t b = 0; b < 2; ++b)
    for (int64_t i = 0; i < t; ++i) {
      float row_sum = 0.0f;
      for (int64_t j = 0; j < t; ++j) {
        const float v = rollout.at({b, i, j});
        EXPECT_GE(v, 0.0f);
        row_sum += v;
      }
      EXPECT_NEAR(row_sum, 1.0f, 1e-4f);
    }
}

TEST(AttentionRollout, BeforeForwardThrows) {
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  Rng rng(8);
  vit::VitModel model(cfg, rng);
  EXPECT_THROW(model.attention_rollout(), std::invalid_argument);
}

TEST(AttentionRollout, SelfContributionSurvivesResidual) {
  // With 0.5·A + 0.5·I mixing, a token always retains some attribution to
  // itself: diagonal ≥ 0.5^depth.
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 3;
  cfg.heads = 2;
  Rng rng(9);
  vit::VitModel model(cfg, rng);
  Tensor img = rng.rand({1, 3, 24, 24});
  (void)model.forward(img);
  const Tensor rollout = model.attention_rollout();
  const int64_t t = cfg.tokens() + 1;
  for (int64_t i = 0; i < t; ++i)
    EXPECT_GE(rollout.at({0, i, i}), 0.125f - 1e-5f);
}

}  // namespace
}  // namespace itask
