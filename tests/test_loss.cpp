// Loss function tests: hand-computed values, gradient structure, numerical
// gradient verification, and distillation-loss properties.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace itask::nn {
namespace {

TEST(CrossEntropy, UniformLogits) {
  Tensor logits({2, 4});  // all zeros → uniform
  const auto res = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.value, std::log(4.0f), 1e-5f);
  // Gradient rows sum to zero (softmax minus one-hot, scaled).
  for (int64_t r = 0; r < 2; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) row_sum += res.grad.at({r, c});
    EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
  }
}

TEST(CrossEntropy, ConfidentCorrectHasLowLoss) {
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  const auto res = softmax_cross_entropy(logits, {0});
  EXPECT_LT(res.value, 1e-3f);
}

TEST(CrossEntropy, IgnoreIndexSkipsRows) {
  Tensor logits({2, 3}, {5, 0, 0, 0, 5, 0});
  const auto res = softmax_cross_entropy(logits, {0, -1}, -1);
  // Only row 0 counts; it is confidently correct.
  EXPECT_LT(res.value, 0.02f);
  for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(res.grad.at({1, c}), 0.0f);
}

TEST(CrossEntropy, NumericalGradient) {
  Rng rng(1);
  Tensor logits = rng.randn({3, 5});
  const std::vector<int64_t> labels{1, 4, 0};
  const auto res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += eps;
    Tensor lm = logits;
    lm[i] -= eps;
    const float numeric = (softmax_cross_entropy(lp, labels).value -
                           softmax_cross_entropy(lm, labels).value) /
                          (2.0f * eps);
    EXPECT_NEAR(res.grad[i], numeric, 2e-3f);
  }
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Bce, KnownValue) {
  Tensor logits({1}, {0.0f});
  Tensor targets({1}, {1.0f});
  const auto res = bce_with_logits(logits, targets);
  EXPECT_NEAR(res.value, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(res.grad[0], -0.5f, 1e-5f);  // (p - t) / n = (0.5 - 1)
}

TEST(Bce, StableAtExtremeLogits) {
  Tensor logits({2}, {100.0f, -100.0f});
  Tensor targets({2}, {1.0f, 0.0f});
  const auto res = bce_with_logits(logits, targets);
  EXPECT_TRUE(std::isfinite(res.value));
  EXPECT_NEAR(res.value, 0.0f, 1e-5f);
  Tensor bad_targets({2}, {0.0f, 1.0f});
  const auto res2 = bce_with_logits(logits, bad_targets);
  EXPECT_TRUE(std::isfinite(res2.value));
  EXPECT_NEAR(res2.value, 100.0f, 1e-3f);
}

TEST(Bce, WeightsMaskElements) {
  Tensor logits({2}, {3.0f, -3.0f});
  Tensor targets({2}, {0.0f, 0.0f});
  Tensor weights({2}, {0.0f, 1.0f});
  const auto res = bce_with_logits(logits, targets, &weights);
  EXPECT_EQ(res.grad[0], 0.0f);  // masked out
  EXPECT_NE(res.grad[1], 0.0f);
}

TEST(Bce, NumericalGradient) {
  Rng rng(2);
  Tensor logits = rng.randn({6});
  Tensor targets = rng.rand({6});
  const auto res = bce_with_logits(logits, targets);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 6; ++i) {
    Tensor lp = logits;
    lp[i] += eps;
    Tensor lm = logits;
    lm[i] -= eps;
    const float numeric = (bce_with_logits(lp, targets).value -
                           bce_with_logits(lm, targets).value) /
                          (2.0f * eps);
    EXPECT_NEAR(res.grad[i], numeric, 2e-3f);
  }
}

TEST(Mse, ValueAndGrad) {
  Tensor pred({2}, {1.0f, 3.0f});
  Tensor target({2}, {0.0f, 1.0f});
  const auto res = mse(pred, target);
  EXPECT_NEAR(res.value, (1.0f + 4.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(res.grad[0], 2.0f * 1.0f / 2.0f, 1e-5f);
  EXPECT_NEAR(res.grad[1], 2.0f * 2.0f / 2.0f, 1e-5f);
}

TEST(KdKl, ZeroWhenIdentical) {
  Rng rng(3);
  Tensor logits = rng.randn({4, 6});
  const auto res = kd_kl(logits, logits, 2.0f);
  EXPECT_NEAR(res.value, 0.0f, 1e-5f);
  for (float g : res.grad.data()) EXPECT_NEAR(g, 0.0f, 1e-5f);
}

TEST(KdKl, PositiveWhenDifferent) {
  Rng rng(4);
  Tensor s = rng.randn({3, 5});
  Tensor t = rng.randn({3, 5});
  EXPECT_GT(kd_kl(s, t, 2.0f).value, 0.0f);
}

TEST(KdKl, NumericalGradient) {
  Rng rng(5);
  Tensor s = rng.randn({2, 4});
  const Tensor t = rng.randn({2, 4});
  const float temp = 3.0f;
  const auto res = kd_kl(s, t, temp);
  const float eps = 1e-2f;
  for (int64_t i = 0; i < s.numel(); ++i) {
    Tensor sp = s;
    sp[i] += eps;
    Tensor sm = s;
    sm[i] -= eps;
    const float numeric =
        (kd_kl(sp, t, temp).value - kd_kl(sm, t, temp).value) / (2.0f * eps);
    EXPECT_NEAR(res.grad[i], numeric, 3e-3f);
  }
}

TEST(KdKl, GradientPushesTowardTeacher) {
  // Student uniform, teacher prefers class 0 → gradient on class 0 logit
  // must be negative (increase it).
  Tensor s({1, 3});
  Tensor t({1, 3}, {5.0f, 0.0f, 0.0f});
  const auto res = kd_kl(s, t, 1.0f);
  EXPECT_LT(res.grad.at({0, 0}), 0.0f);
  EXPECT_GT(res.grad.at({0, 1}), 0.0f);
}

TEST(KdKl, InvalidTemperatureThrows) {
  Tensor s({1, 2});
  EXPECT_THROW(kd_kl(s, s, 0.0f), std::invalid_argument);
  EXPECT_THROW(kd_kl(s, s, -1.0f), std::invalid_argument);
}

class KdTemperature : public ::testing::TestWithParam<float> {};

TEST_P(KdTemperature, LossFiniteAndGradConsistent) {
  const float temp = GetParam();
  Rng rng(6);
  Tensor s = rng.randn({2, 5});
  Tensor t = rng.randn({2, 5});
  const auto res = kd_kl(s, t, temp);
  EXPECT_TRUE(std::isfinite(res.value));
  EXPECT_GE(res.value, -1e-6f);  // KL is non-negative
  for (float g : res.grad.data()) EXPECT_TRUE(std::isfinite(g));
}

INSTANTIATE_TEST_SUITE_P(Temps, KdTemperature,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 4.0f, 8.0f));

}  // namespace
}  // namespace itask::nn
