// Tests for the PR-curve export and per-class evaluation, plus consistency
// between the curve and the scalar AP.
#include <gtest/gtest.h>

#include "detect/metrics.h"
#include "tensor/rng.h"

namespace itask::detect {
namespace {

BoxPx box(float cx, float cy, float w, float h) { return BoxPx{cx, cy, w, h}; }

Detection det(BoxPx b, float conf, int64_t cls = 0) {
  Detection d;
  d.box = b;
  d.confidence = conf;
  d.predicted_class = cls;
  return d;
}

GroundTruthObject gt(BoxPx b, bool relevant, int64_t cls = 0) {
  GroundTruthObject g;
  g.box = b;
  g.task_relevant = relevant;
  g.cls = cls;
  return g;
}

TEST(PrCurve, MonotoneRecallAndConfidenceOrdering) {
  Rng rng(1);
  std::vector<std::vector<Detection>> dets(4);
  std::vector<std::vector<GroundTruthObject>> truth(4);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 5; ++i) {
      const BoxPx b = box(rng.uniform(4, 20), rng.uniform(4, 20), 4, 4);
      truth[s].push_back(gt(b, rng.bernoulli(0.7)));
      // Detections: some on-target, some random.
      if (rng.bernoulli(0.6)) dets[s].push_back(det(b, rng.uniform(0, 1)));
      if (rng.bernoulli(0.4))
        dets[s].push_back(
            det(box(rng.uniform(4, 20), rng.uniform(4, 20), 4, 4),
                rng.uniform(0, 1)));
    }
  }
  const auto curve = pr_curve(dets, truth);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].confidence, curve[i - 1].confidence);
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_GE(curve[i].precision, 0.0f);
    EXPECT_LE(curve[i].precision, 1.0f);
  }
}

TEST(PrCurve, EnvelopeIntegralEqualsAp) {
  // Build a mixed scenario and check AP equals the integral of the
  // monotone-envelope of the exported curve.
  std::vector<std::vector<Detection>> dets{{
      det(box(5, 5, 4, 4), 0.95f),    // TP
      det(box(50, 50, 4, 4), 0.9f),   // FP
      det(box(15, 5, 4, 4), 0.6f),    // TP
      det(box(60, 60, 4, 4), 0.3f),   // FP
      det(box(25, 5, 4, 4), 0.2f),    // TP
  }};
  std::vector<std::vector<GroundTruthObject>> truth{{
      gt(box(5, 5, 4, 4), true),
      gt(box(15, 5, 4, 4), true),
      gt(box(25, 5, 4, 4), true),
  }};
  const auto curve = pr_curve(dets, truth);
  ASSERT_EQ(curve.size(), 5u);
  std::vector<float> env(curve.size());
  for (size_t i = 0; i < curve.size(); ++i) env[i] = curve[i].precision;
  for (int64_t i = static_cast<int64_t>(env.size()) - 2; i >= 0; --i)
    env[static_cast<size_t>(i)] =
        std::max(env[static_cast<size_t>(i)], env[static_cast<size_t>(i + 1)]);
  float ap = 0.0f, prev = 0.0f;
  for (size_t i = 0; i < curve.size(); ++i) {
    ap += (curve[i].recall - prev) * env[i];
    prev = curve[i].recall;
  }
  const EvalResult r = evaluate(dets, truth);
  EXPECT_NEAR(ap, r.average_precision, 1e-5f);
}

TEST(PrCurve, SceneMismatchThrows) {
  std::vector<std::vector<Detection>> dets(2);
  std::vector<std::vector<GroundTruthObject>> truth(1);
  EXPECT_THROW(pr_curve(dets, truth), std::invalid_argument);
}

TEST(PerClass, SplitsByClass) {
  std::vector<std::vector<Detection>> dets{{
      det(box(5, 5, 4, 4), 0.9f, /*cls=*/1),
      det(box(15, 5, 4, 4), 0.8f, /*cls=*/2),  // wrong class for this box
  }};
  std::vector<std::vector<GroundTruthObject>> truth{{
      gt(box(5, 5, 4, 4), true, 1),
      gt(box(15, 5, 4, 4), true, 1),
  }};
  const auto per_class = evaluate_per_class(dets, truth);
  ASSERT_TRUE(per_class.count(1));
  ASSERT_TRUE(per_class.count(2));
  // Class 1: one TP, one FN (the box claimed by the class-2 detection).
  EXPECT_EQ(per_class.at(1).true_positives, 1);
  EXPECT_EQ(per_class.at(1).false_negatives, 1);
  // Class 2: the detection has no class-2 truth → FP.
  EXPECT_EQ(per_class.at(2).true_positives, 0);
  EXPECT_EQ(per_class.at(2).false_positives, 1);
}

TEST(PerClass, AggregateTpBoundsClassTp) {
  Rng rng(3);
  std::vector<std::vector<Detection>> dets(3);
  std::vector<std::vector<GroundTruthObject>> truth(3);
  for (int s = 0; s < 3; ++s)
    for (int i = 0; i < 6; ++i) {
      const BoxPx b = box(rng.uniform(4, 40), rng.uniform(4, 40), 4, 4);
      const int64_t cls = rng.randint(1, 3);
      truth[s].push_back(gt(b, true, cls));
      if (rng.bernoulli(0.7))
        dets[s].push_back(det(b, rng.uniform(0, 1),
                              rng.bernoulli(0.8) ? cls : rng.randint(1, 3)));
    }
  const auto overall = evaluate(dets, truth);
  const auto per_class = evaluate_per_class(dets, truth);
  int64_t class_tp = 0;
  for (const auto& [cls, r] : per_class) class_tp += r.true_positives;
  // Class-aware matching can only remove matches available to the
  // class-agnostic evaluation.
  EXPECT_LE(class_tp, overall.true_positives);
}

}  // namespace
}  // namespace itask::detect
