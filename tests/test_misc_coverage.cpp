// Coverage for behaviours not pinned elsewhere: the cosine LR schedule,
// box decoding extremes, rasterizer primitives, simulator monotonicity,
// and the bench configuration helper.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/gpu_model.h"
#include "accel/systolic.h"
#include "data/dataset.h"
#include "data/renderer.h"
#include "distill/trainer.h"

namespace itask {
namespace {

TEST(Schedule, WarmupThenDecayObservable) {
  // The schedule is internal to Trainer::fit; observe it through training
  // dynamics: a model trained with an absurdly large base LR still converges
  // because warmup + cosine decay bound the damage, while a fixed large LR
  // (step() calls, which bypass the schedule) diverges or stalls.
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  data::GeneratorOptions gopt;
  data::SceneGenerator gen(gopt);
  Rng rng(1);
  const data::Dataset ds = data::Dataset::generate(gen, 24, rng);

  distill::TrainerOptions opt;
  opt.epochs = 10;
  opt.lr = 3e-3f;
  Rng m1(2);
  vit::VitModel scheduled(cfg, m1);
  distill::Trainer t1(scheduled, opt);
  const auto s1 = t1.fit(ds);
  EXPECT_LT(s1.last.total(), s1.first.total());
  EXPECT_TRUE(std::isfinite(s1.last.total()));
}

TEST(Boxes, DecodeClampsExtremeLogSizes) {
  // Head outputs can be arbitrarily large early in training; decode_box
  // must clamp rather than produce inf-sized boxes.
  float wild[4] = {0.0f, 0.0f, 100.0f, -100.0f};
  const data::BoxPx b = data::decode_box(wild, 0, 3, 8.0f);
  EXPECT_TRUE(std::isfinite(b.w));
  EXPECT_TRUE(std::isfinite(b.h));
  EXPECT_LE(b.w, 8.0f * std::exp(4.0f) + 1.0f);
  EXPECT_GT(b.h, 0.0f);
}

TEST(Canvas, TriangleIsWidestAtBase) {
  Tensor img({3, 16, 16});
  data::Canvas canvas(img);
  canvas.fill_triangle(2, 2, 14, 14, 1, 1, 1);
  auto row_width = [&](int64_t y) {
    int64_t count = 0;
    for (int64_t x = 0; x < 16; ++x)
      if (img.at({0, y, x}) > 0.5f) ++count;
    return count;
  };
  EXPECT_GT(row_width(13), row_width(7));
  EXPECT_GT(row_width(7), row_width(3));
}

TEST(Canvas, ThickLineCoversMorePixels) {
  Tensor thin_img({3, 16, 16}), thick_img({3, 16, 16});
  data::Canvas thin(thin_img), thick(thick_img);
  thin.draw_line(2, 2, 14, 14, 1, 1, 1, 1.0f);
  thick.draw_line(2, 2, 14, 14, 1, 1, 1, 3.0f);
  auto lit = [](const Tensor& img) {
    int64_t count = 0;
    for (float v : img.data())
      if (v > 0.5f) ++count;
    return count;
  };
  EXPECT_GT(lit(thick_img), lit(thin_img));
}

TEST(Simulators, SystolicCyclesMonotoneInWork) {
  const accel::SystolicArray array;
  vit::GemmOp small{"s", 8, 32, 32, true};
  vit::GemmOp big{"b", 32, 64, 64, true};
  EXPECT_LT(array.simulate_gemm(small).total_cycles,
            array.simulate_gemm(big).total_cycles);
}

TEST(Simulators, GpuLatencyMonotoneInBatch) {
  const accel::GpuModel gpu;
  const auto w1 = vit::build_workload(vit::ViTConfig::student(), 1);
  const auto w8 = vit::build_workload(vit::ViTConfig::student(), 8);
  EXPECT_LT(gpu.run(w1, 10.0).total_micros, gpu.run(w8, 10.0).total_micros);
}

TEST(Simulators, AreaModelScalesWithResources) {
  accel::SystolicConfig small;
  small.rows = small.cols = 8;
  accel::SystolicConfig big;
  big.rows = big.cols = 32;
  EXPECT_LT(small.area_mm2(), big.area_mm2());
  accel::SystolicConfig more_sram = small;
  more_sram.sram_kb *= 4;
  EXPECT_LT(small.area_mm2(), more_sram.area_mm2());
}

TEST(Workload, WeightBytesMatchModelParameters) {
  // The workload descriptor's weight bytes must equal the number of 2-D
  // weight elements in the real model (the quantities the INT8 runtime and
  // the DMA model both move).
  const vit::ViTConfig cfg = vit::ViTConfig::student();
  Rng rng(4);
  vit::VitModel model(cfg, rng);
  int64_t weight_elems = 0;
  for (const auto& [name, tensor] : model.state_dict())
    if (tensor.ndim() == 2 && name.find("weight") != std::string::npos)
      weight_elems += tensor.numel();
  const auto workload = vit::build_workload(cfg, 1);
  EXPECT_EQ(workload.total_weight_bytes_int8(), weight_elems);
}

}  // namespace
}  // namespace itask
