// Layer tests: forward correctness against hand-computed values and
// numerical gradient checks for every hand-written backward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/gradcheck.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace itask::nn {
namespace {

TEST(Linear, ForwardHandCase) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().value = Tensor({3, 2}, {1, 0, 0, 1, 1, 1});
  layer.bias()->value = Tensor({3}, {0.5f, -0.5f, 0.0f});
  Tensor x({1, 2}, {2.0f, 3.0f});
  Tensor y = layer.forward(x);
  EXPECT_TRUE(y.allclose(Tensor({1, 3}, {2.5f, 2.5f, 5.0f})));
}

TEST(Linear, HandlesLeadingDims) {
  Rng rng(2);
  Linear layer(4, 2, rng);
  Tensor x = rng.randn({3, 5, 4});
  Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 5, 2}));
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({1, 2})), std::invalid_argument);
}

TEST(Linear, GradCheck) {
  Rng rng(4);
  Linear layer(3, 4, rng);
  const Tensor x = rng.randn({5, 3});
  auto loss_fn = [&]() {
    Tensor y = layer.forward(x);
    // loss = sum(y^2) — its gradient wrt y is 2y.
    float loss = 0.0f;
    for (float v : y.data()) loss += v * v;
    layer.backward(ops::mul_scalar(y, 2.0f));
    return loss;
  };
  const auto result = check_gradients(layer, loss_fn);
  EXPECT_TRUE(result.ok) << "worst: " << result.worst_parameter
                         << " rel err " << result.max_rel_error;
}

TEST(Linear, NoBiasVariant) {
  Rng rng(5);
  Linear layer(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.bias(), nullptr);
  EXPECT_EQ(layer.parameters().size(), 1u);
}

TEST(LayerNorm, NormalisesRows) {
  LayerNorm ln(4);
  Tensor x({2, 4}, {1, 2, 3, 4, -2, 0, 2, 8});
  Tensor y = ln.forward(x);
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t c = 0; c < 4; ++c) mean += y.at({r, c});
    mean /= 4.0f;
    for (int64_t c = 0; c < 4; ++c) {
      const float d = y.at({r, c}) - mean;
      var += d * d;
    }
    var /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(LayerNorm, AffineParamsApply) {
  LayerNorm ln(2);
  auto params = ln.parameters();
  ASSERT_EQ(params.size(), 2u);
  params[0]->value.fill(2.0f);  // gamma
  params[1]->value.fill(1.0f);  // beta
  Tensor x({1, 2}, {-1.0f, 1.0f});
  Tensor y = ln.forward(x);
  // xhat = (-1, 1) (unit variance via eps-free path), y = 2*xhat + 1.
  EXPECT_NEAR(y[0], -1.0f, 1e-2f);
  EXPECT_NEAR(y[1], 3.0f, 1e-2f);
}

TEST(LayerNorm, GradCheck) {
  Rng rng(6);
  LayerNorm ln(5);
  const Tensor x = rng.randn({4, 5});
  const Tensor target = rng.randn({4, 5});
  auto loss_fn = [&]() {
    Tensor y = ln.forward(x);
    auto res = mse(y, target);
    ln.backward(res.grad);
    return res.value;
  };
  const auto result = check_gradients(ln, loss_fn, 1e-3f, 3e-2f);
  EXPECT_TRUE(result.ok) << result.worst_parameter << " "
                         << result.max_rel_error;
}

TEST(Activations, GeluLayerMatchesOp) {
  Gelu gelu;
  Rng rng(7);
  Tensor x = rng.randn({3, 3});
  EXPECT_TRUE(gelu.forward(x).allclose(ops::gelu(x)));
  Tensor g = rng.randn({3, 3});
  EXPECT_TRUE(gelu.backward(g).allclose(ops::gelu_grad(x, g)));
}

TEST(Activations, ReluLayerMatchesOp) {
  Relu relu;
  Tensor x({3}, {-1.0f, 0.5f, 2.0f});
  EXPECT_TRUE(relu.forward(x).allclose(ops::relu(x)));
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f, 1);
  drop.set_training(false);
  Rng rng(8);
  Tensor x = rng.randn({10, 10});
  EXPECT_TRUE(drop.forward(x).allclose(x));
  EXPECT_TRUE(drop.backward(x).allclose(x));
}

TEST(Dropout, TrainModePreservesExpectation) {
  Dropout drop(0.3f, 2);
  drop.set_training(true);
  Tensor x({10000}, 1.0f);
  Tensor y = drop.forward(x);
  EXPECT_NEAR(ops::mean(y), 1.0f, 0.05f);  // inverted dropout
  int64_t zeros = 0;
  for (float v : y.data())
    if (v == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 3);
  drop.set_training(true);
  Tensor x({100}, 1.0f);
  Tensor y = drop.forward(x);
  Tensor g = drop.backward(Tensor({100}, 1.0f));
  EXPECT_TRUE(g.allclose(y));  // same mask, same scaling
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
}

TEST(Optimizer, SgdStepDirection) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  layer.weight().value.fill(1.0f);
  layer.weight().grad.fill(0.5f);
  Sgd sgd(layer.parameters(), /*lr=*/0.1f);
  sgd.step();
  for (float v : layer.weight().value.data()) EXPECT_NEAR(v, 0.95f, 1e-6f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Rng rng(10);
  Linear layer(1, 1, rng, false);
  layer.weight().value.fill(0.0f);
  Sgd sgd(layer.parameters(), 0.1f, /*momentum=*/0.9f);
  layer.weight().grad.fill(1.0f);
  sgd.step();  // v=1, w=-0.1
  layer.weight().grad.fill(1.0f);
  sgd.step();  // v=1.9, w=-0.29
  EXPECT_NEAR(layer.weight().value[0], -0.29f, 1e-5f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimise f(w) = (w - 3)^2 with Adam.
  Rng rng(11);
  Linear layer(1, 1, rng, false);
  layer.weight().value.fill(0.0f);
  Adam adam(layer.parameters(), 0.1f);
  for (int i = 0; i < 300; ++i) {
    const float w = layer.weight().value[0];
    layer.weight().grad.fill(2.0f * (w - 3.0f));
    adam.step();
  }
  EXPECT_NEAR(layer.weight().value[0], 3.0f, 0.05f);
}

TEST(Optimizer, ZeroGradClears) {
  Rng rng(12);
  Linear layer(2, 2, rng);
  layer.weight().grad.fill(5.0f);
  Sgd sgd(layer.parameters(), 0.1f);
  sgd.zero_grad();
  for (float v : layer.weight().grad.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Optimizer, ClipGradNorm) {
  Rng rng(13);
  Linear layer(1, 2, rng, false);
  layer.weight().grad = Tensor({2, 1}, {3.0f, 4.0f});  // norm 5
  const float norm = clip_grad_norm(layer.parameters(), 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(ops::l2_norm(layer.weight().grad), 1.0f, 1e-5f);
  // Below the threshold: untouched.
  layer.weight().grad = Tensor({2, 1}, {0.3f, 0.4f});
  clip_grad_norm(layer.parameters(), 1.0f);
  EXPECT_NEAR(ops::l2_norm(layer.weight().grad), 0.5f, 1e-5f);
}

TEST(Module, StateDictRoundTripThroughLoad) {
  Rng rng(14);
  Linear a(3, 2, rng), b(3, 2, rng);
  EXPECT_FALSE(a.weight().value.allclose(b.weight().value));
  b.load_state_dict(a.state_dict());
  EXPECT_TRUE(a.weight().value.allclose(b.weight().value, 0.0f));
}

TEST(Module, LoadMissingKeyThrows) {
  Rng rng(15);
  Linear layer(2, 2, rng);
  io::StateDict empty;
  EXPECT_THROW(layer.load_state_dict(empty), std::invalid_argument);
}

TEST(Module, ParameterCount) {
  Rng rng(16);
  Linear layer(3, 4, rng);
  EXPECT_EQ(layer.parameter_count(), 3 * 4 + 4);
}

}  // namespace
}  // namespace itask::nn
