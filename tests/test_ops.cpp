// Unit + property tests for tensor ops: GEMM variants, elementwise math,
// softmax family, reductions. Property sweeps use TEST_P over random shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace itask {
namespace {

using ops::matmul;
using ops::matmul_at;
using ops::matmul_bt;
using ops::transpose2d;

TEST(Ops, AddSubMul) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {3.0f, 5.0f});
  EXPECT_TRUE(ops::add(a, b).allclose(Tensor({2}, {4.0f, 7.0f})));
  EXPECT_TRUE(ops::sub(b, a).allclose(Tensor({2}, {2.0f, 3.0f})));
  EXPECT_TRUE(ops::mul(a, b).allclose(Tensor({2}, {3.0f, 10.0f})));
  EXPECT_TRUE(ops::add_scalar(a, 1.0f).allclose(Tensor({2}, {2.0f, 3.0f})));
  EXPECT_TRUE(ops::mul_scalar(a, -2.0f).allclose(Tensor({2}, {-2.0f, -4.0f})));
}

TEST(Ops, ShapeMismatchThrows) {
  EXPECT_THROW(ops::add(Tensor({2}), Tensor({3})), std::invalid_argument);
  EXPECT_THROW(ops::mul(Tensor({2, 2}), Tensor({4})), std::invalid_argument);
}

TEST(Ops, InplaceVariants) {
  Tensor a({2}, {1.0f, 2.0f});
  ops::add_inplace(a, Tensor({2}, {1.0f, 1.0f}));
  EXPECT_TRUE(a.allclose(Tensor({2}, {2.0f, 3.0f})));
  ops::axpy_inplace(a, 2.0f, Tensor({2}, {1.0f, 0.5f}));
  EXPECT_TRUE(a.allclose(Tensor({2}, {4.0f, 4.0f})));
}

TEST(Ops, AddRowwise) {
  Tensor a({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {1.0f, 2.0f, 3.0f});
  Tensor out = ops::add_rowwise(a, bias);
  EXPECT_TRUE(out.allclose(Tensor({2, 3}, {1, 2, 3, 2, 3, 4})));
  EXPECT_THROW(ops::add_rowwise(a, Tensor({2})), std::invalid_argument);
}

TEST(Ops, MatmulHandCase) {
  Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor b = Tensor::from_rows({{5, 6}, {7, 8}});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(c.allclose(Tensor::from_rows({{19, 22}, {43, 50}})));
}

TEST(Ops, MatmulInnerMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})),
               std::invalid_argument);
}

TEST(Ops, Transpose2d) {
  Tensor a = Tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({2, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 5.0f);
}

// ---- property sweeps over random shapes -----------------------------------

class GemmProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmProperty, TransposedVariantsAgree) {
  const auto [m, k, n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Tensor a = rng.randn({m, k});
  Tensor b = rng.randn({k, n});
  const Tensor ref = matmul(a, b);
  EXPECT_TRUE(matmul_bt(a, transpose2d(b)).allclose(ref, 1e-4f));
  EXPECT_TRUE(matmul_at(transpose2d(a), b).allclose(ref, 1e-4f));
}

TEST_P(GemmProperty, BatchedMatchesLooped) {
  const auto [m, k, n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 100);
  constexpr int64_t kBatch = 3;
  Tensor a = rng.randn({kBatch, m, k});
  Tensor b = rng.randn({kBatch, k, n});
  Tensor out = ops::bmm(a, b);
  for (int64_t i = 0; i < kBatch; ++i) {
    EXPECT_TRUE(out.index(i).allclose(matmul(a.index(i), b.index(i)), 1e-4f));
  }
  // bmm_bt / bmm_at consistency with explicit transposes.
  Tensor bt({kBatch, n, k});
  for (int64_t i = 0; i < kBatch; ++i)
    bt.set_index(i, transpose2d(b.index(i)));
  EXPECT_TRUE(ops::bmm_bt(a, bt).allclose(out, 1e-4f));
  Tensor at({kBatch, k, m});
  for (int64_t i = 0; i < kBatch; ++i)
    at.set_index(i, transpose2d(a.index(i)));
  EXPECT_TRUE(ops::bmm_at(at, b).allclose(out, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(std::make_tuple(1, 1, 1, 1), std::make_tuple(2, 3, 4, 2),
                      std::make_tuple(5, 7, 3, 3), std::make_tuple(8, 8, 8, 4),
                      std::make_tuple(1, 16, 5, 5),
                      std::make_tuple(13, 1, 9, 6),
                      std::make_tuple(4, 32, 2, 7)));

class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, RowsSumToOneAndLogAgrees) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Tensor x = rng.randn({4, 7}, 0.0f, 3.0f);
  Tensor sm = ops::softmax_lastdim(x);
  Tensor lsm = ops::log_softmax_lastdim(x);
  for (int64_t r = 0; r < 4; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) {
      const float p = sm.at({r, c});
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      row_sum += p;
      EXPECT_NEAR(std::log(p), lsm.at({r, c}), 1e-4f);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST_P(SoftmaxProperty, InvariantToRowShift) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  Tensor x = rng.randn({3, 5});
  Tensor shifted = ops::add_scalar(x, 100.0f);
  EXPECT_TRUE(ops::softmax_lastdim(x).allclose(
      ops::softmax_lastdim(shifted), 1e-5f));
}

TEST_P(SoftmaxProperty, BackwardMatchesFiniteDifference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  Tensor x = rng.randn({2, 4});
  Tensor g = rng.randn({2, 4});
  Tensor y = ops::softmax_lastdim(x);
  Tensor dx = ops::softmax_backward_lastdim(y, g);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const Tensor yp = ops::softmax_lastdim(xp);
    const Tensor ym = ops::softmax_lastdim(xm);
    float numeric = 0.0f;
    for (int64_t j = 0; j < x.numel(); ++j)
      numeric += g[j] * (yp[j] - ym[j]) / (2.0f * eps);
    EXPECT_NEAR(dx[i], numeric, 5e-3f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Values(1, 2, 3, 4));

TEST(Ops, ReluAndGrad) {
  Tensor x({4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  EXPECT_TRUE(ops::relu(x).allclose(Tensor({4}, {0, 0, 0.5f, 2.0f})));
  Tensor g({4}, 1.0f);
  EXPECT_TRUE(ops::relu_grad(x, g).allclose(Tensor({4}, {0, 0, 1, 1})));
}

TEST(Ops, GeluValuesAndGradFiniteDiff) {
  Tensor x({5}, {-2.0f, -0.5f, 0.0f, 0.5f, 2.0f});
  Tensor y = ops::gelu(x);
  EXPECT_NEAR(y[2], 0.0f, 1e-6f);
  EXPECT_NEAR(y[4], 1.9546f, 1e-3f);   // gelu(2) ≈ 1.9546
  EXPECT_NEAR(y[0], -0.0454f, 1e-3f);  // gelu(-2) ≈ -0.0454
  Tensor g({5}, 1.0f);
  Tensor dx = ops::gelu_grad(x, g);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 5; ++i) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float numeric =
        (ops::gelu(xp)[i] - ops::gelu(xm)[i]) / (2.0f * eps);
    EXPECT_NEAR(dx[i], numeric, 1e-3f);
  }
}

TEST(Ops, SigmoidTanh) {
  Tensor x({3}, {0.0f, 2.0f, -2.0f});
  Tensor s = ops::sigmoid(x);
  EXPECT_NEAR(s[0], 0.5f, 1e-6f);
  EXPECT_NEAR(s[1], 0.8808f, 1e-3f);
  EXPECT_NEAR(s[1] + s[2], 1.0f, 1e-5f);  // sigmoid symmetry
  Tensor t = ops::tanh_t(x);
  EXPECT_NEAR(t[0], 0.0f, 1e-6f);
  EXPECT_NEAR(t[1], std::tanh(2.0f), 1e-6f);
}

TEST(Ops, Reductions) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_NEAR(ops::sum(x), 21.0f, 1e-5f);
  EXPECT_NEAR(ops::mean(x), 3.5f, 1e-5f);
  EXPECT_EQ(ops::max_value(x), 6.0f);
  EXPECT_NEAR(ops::l2_norm(Tensor({2}, {3.0f, 4.0f})), 5.0f, 1e-5f);
  Tensor col = ops::sum_to_lastdim(x);
  EXPECT_TRUE(col.allclose(Tensor({3}, {5.0f, 7.0f, 9.0f})));
}

TEST(Ops, ArgmaxLastdim) {
  Tensor x({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = ops::argmax_lastdim(x);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, Concat1dAndStack) {
  Tensor a({2}, {1, 2});
  Tensor b({3}, {3, 4, 5});
  Tensor cat = ops::concat1d({a, b});
  EXPECT_TRUE(cat.allclose(Tensor({5}, {1, 2, 3, 4, 5})));
  Tensor s = ops::stack({a, a});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_THROW(ops::stack({a, b}), std::invalid_argument);
}

}  // namespace
}  // namespace itask
