// Cross-cutting property sweeps: quantization across every
// (granularity × bit-width) cell, randomized NMS/IoU invariants, oracle
// noise determinism per task, and accelerator-model scaling laws.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "accel/systolic.h"
#include "detect/nms.h"
#include "data/tasks.h"
#include "kg/serialize.h"
#include "llm/oracle.h"
#include "quant/qformat.h"
#include "tensor/rng.h"

namespace itask {
namespace {

// ---- quantization grid sweep ------------------------------------------------

class QuantGrid
    : public ::testing::TestWithParam<
          std::tuple<quant::WeightGranularity, int>> {};

TEST_P(QuantGrid, WeightRoundTripBoundedByRowScale) {
  const auto [granularity, bits] = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 7);
  const Tensor w = rng.randn({6, 24}, 0.0f, 0.8f);
  const quant::QuantizedWeight qw =
      quant::quantize_weight(w, granularity, bits);
  for (int64_t r = 0; r < 6; ++r) {
    const float scale = qw.scale_for_row(r);
    for (int64_t c = 0; c < 24; ++c) {
      const float back =
          static_cast<float>(qw.data[static_cast<size_t>(r * 24 + c)]) *
          scale;
      EXPECT_LE(std::abs(w.at({r, c}) - back), 0.5f * scale + 1e-6f)
          << "bits=" << bits;
    }
  }
}

TEST_P(QuantGrid, StoredValuesRespectBitGrid) {
  const auto [granularity, bits] = GetParam();
  Rng rng(static_cast<uint64_t>(bits) * 13);
  const Tensor w = rng.randn({4, 16});
  const quant::QuantizedWeight qw =
      quant::quantize_weight(w, granularity, bits);
  const int32_t qmax = (1 << (bits - 1)) - 1;
  for (int8_t v : qw.data) {
    EXPECT_GE(static_cast<int32_t>(v), -qmax - 1);
    EXPECT_LE(static_cast<int32_t>(v), qmax);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, QuantGrid,
    ::testing::Combine(
        ::testing::Values(quant::WeightGranularity::kPerTensor,
                          quant::WeightGranularity::kPerChannel),
        ::testing::Values(2, 4, 6, 8)));

// ---- randomized NMS invariants ----------------------------------------------

class NmsProperty : public ::testing::TestWithParam<int> {};

TEST_P(NmsProperty, OutputIsConflictFreeSubsetSortedByConfidence) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  std::vector<detect::Detection> dets;
  const int64_t n = rng.randint(1, 40);
  for (int64_t i = 0; i < n; ++i) {
    detect::Detection d;
    d.box = {rng.uniform(0, 24), rng.uniform(0, 24), rng.uniform(1, 10),
             rng.uniform(1, 10)};
    d.confidence = rng.uniform(0, 1);
    d.cell = i;
    dets.push_back(d);
  }
  const float threshold = rng.uniform(0.2f, 0.7f);
  const auto kept = detect::nms(dets, threshold);
  EXPECT_LE(kept.size(), dets.size());
  // Sorted by confidence and pairwise conflict-free.
  for (size_t i = 1; i < kept.size(); ++i)
    EXPECT_LE(kept[i].confidence, kept[i - 1].confidence);
  for (size_t i = 0; i < kept.size(); ++i)
    for (size_t j = i + 1; j < kept.size(); ++j)
      EXPECT_LE(detect::iou(kept[i].box, kept[j].box), threshold + 1e-6f);
  // Every suppressed detection conflicts with some kept one of >= confidence.
  for (const auto& d : dets) {
    bool kept_or_conflicts = false;
    for (const auto& k : kept) {
      if (k.cell == d.cell ||
          (k.confidence >= d.confidence &&
           detect::iou(k.box, d.box) > threshold))
        kept_or_conflicts = true;
    }
    EXPECT_TRUE(kept_or_conflicts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmsProperty, ::testing::Range(1, 9));

// ---- oracle noise determinism per task --------------------------------------

class OracleNoise : public ::testing::TestWithParam<int> {};

TEST_P(OracleNoise, NoisyGraphsDeterministicAndParsable) {
  const data::TaskSpec& spec = data::task_by_id(GetParam());
  for (float noise : {0.1f, 0.3f}) {
    llm::OracleOptions opt;
    opt.weight_noise = noise;
    opt.drop_probability = 0.15f;
    const llm::Oracle a(opt), b(opt);
    const std::string ga = kg::serialize(a.generate(spec.description));
    const std::string gb = kg::serialize(b.generate(spec.description));
    EXPECT_EQ(ga, gb) << spec.name << " noise=" << noise;
    EXPECT_NO_THROW(kg::deserialize(ga));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, OracleNoise, ::testing::Range(0, 8));

// ---- accelerator scaling laws ------------------------------------------------

class FreqSweep : public ::testing::TestWithParam<int> {};

TEST_P(FreqSweep, LatencyFollowsAffineClockModel) {
  // Latency decomposes as t(f) = cycles/f + dma, with dma clock-independent.
  // Fit (cycles, dma) from two clocks and predict a third exactly.
  const double mhz = static_cast<double>(GetParam());
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  auto at = [&](double f) {
    accel::SystolicConfig cfg;
    cfg.freq_mhz = f;
    return accel::SystolicArray(cfg).run(w, 10.0).total_micros;
  };
  const double f1 = 200.0, f2 = 400.0;
  const double t1 = at(f1), t2 = at(f2);
  const double cycles_us_mhz = (t1 - t2) * f1 * f2 / (f2 - f1);
  const double dma = t1 - cycles_us_mhz / f1;
  EXPECT_GE(dma, 0.0);
  EXPECT_NEAR(at(mhz), cycles_us_mhz / mhz + dma, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Clocks, FreqSweep,
                         ::testing::Values(100, 225, 450, 900));

TEST(EnergyScaling, DynamicEnergyLinearInMacEnergy) {
  const auto w = vit::build_workload(vit::ViTConfig::student(), 1);
  accel::SystolicConfig cheap;
  cheap.energy.int8_mac_pj = 0.1;
  accel::SystolicConfig costly = cheap;
  costly.energy.int8_mac_pj = 0.2;
  const double e1 =
      accel::SystolicArray(cheap).run(w, 10.0).dynamic_energy_uj;
  const double e2 =
      accel::SystolicArray(costly).run(w, 10.0).dynamic_energy_uj;
  const double mac_uj =
      static_cast<double>(w.total_macs()) * 0.1 * 1e-6;  // pJ → µJ
  EXPECT_NEAR(e2 - e1, mac_uj, mac_uj * 1e-6);
}

}  // namespace
}  // namespace itask
