// Tests for multi-bit quantization support and QAT fine-tuning.
#include <gtest/gtest.h>

#include "distill/trainer.h"
#include "quant/qat.h"
#include "tensor/ops.h"

namespace itask::quant {
namespace {

class BitWidth : public ::testing::TestWithParam<int> {};

TEST_P(BitWidth, GridBoundsAndRoundTrip) {
  const int bits = GetParam();
  const QuantParams p = QuantParams::symmetric(2.0f, bits);
  EXPECT_EQ(p.qmin, -(1 << (bits - 1)));
  EXPECT_EQ(p.qmax, (1 << (bits - 1)) - 1);
  EXPECT_EQ(p.zero_point, 0);
  Rng rng(static_cast<uint64_t>(bits));
  for (int i = 0; i < 200; ++i) {
    const float x = rng.uniform(-2.0f, 2.0f);
    const float back = p.dequantize(p.quantize(x));
    EXPECT_LE(std::abs(x - back), 0.5f * p.scale + 1e-6f);
  }
}

TEST_P(BitWidth, AsymmetricCoversRange) {
  const int bits = GetParam();
  const QuantParams p = QuantParams::asymmetric(-1.0f, 3.0f, bits);
  EXPECT_NEAR(p.dequantize(p.quantize(-1.0f)), -1.0f, p.scale);
  EXPECT_NEAR(p.dequantize(p.quantize(3.0f)), 3.0f, p.scale);
  EXPECT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitWidth, ::testing::Values(2, 4, 6, 8));

TEST(BitWidthApi, FewerBitsMeansCoarserGrid) {
  Rng rng(3);
  Tensor t = rng.randn({1000});
  float prev_mse = 0.0f;
  for (int bits : {8, 6, 4, 2}) {
    const QuantParams p = QuantParams::symmetric(3.0f, bits);
    const float mse = quantization_mse(t, p);
    EXPECT_GT(mse, prev_mse);
    prev_mse = mse;
  }
}

TEST(BitWidthApi, WithBitsPreservesRange) {
  const QuantParams p8 = QuantParams::asymmetric(-0.5f, 2.0f, 8);
  const QuantParams p4 = p8.with_bits(4);
  EXPECT_EQ(p4.qmax, 7);
  // Representable range is (approximately) preserved.
  EXPECT_NEAR((p4.qmax - p4.zero_point) * p4.scale, 2.0f, 0.2f);
  EXPECT_NEAR((p4.qmin - p4.zero_point) * p4.scale, -0.5f, 0.2f);
}

TEST(BitWidthApi, InvalidBitsThrow) {
  EXPECT_THROW(QuantParams::symmetric(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(QuantParams::symmetric(1.0f, 9), std::invalid_argument);
}

TEST(FakeQuant, ProjectsOntoGrid) {
  Rng rng(5);
  Tensor w = rng.randn({6, 10});
  Tensor original = w;
  fake_quantize_weight(w, WeightGranularity::kPerChannel, 4);
  // Every row now holds at most 2^4 distinct values, and values moved.
  EXPECT_FALSE(w.allclose(original, 1e-6f));
  for (int64_t r = 0; r < 6; ++r) {
    std::set<float> distinct;
    for (int64_t c = 0; c < 10; ++c) distinct.insert(w.at({r, c}));
    EXPECT_LE(distinct.size(), 16u);
  }
  // Idempotent: re-projecting is a no-op.
  Tensor again = w;
  fake_quantize_weight(again, WeightGranularity::kPerChannel, 4);
  EXPECT_TRUE(again.allclose(w, 1e-6f));
}

TEST(Qat, ImprovesLowBitDeploymentAccuracy) {
  // Train a small model, then compare INT4 PTQ loss before/after QAT.
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  Rng rng(7);
  vit::VitModel model(cfg, rng);
  data::GeneratorOptions gopt;
  data::SceneGenerator gen(gopt);
  Rng drng(8);
  const data::Dataset ds = data::Dataset::generate(gen, 48, drng);
  distill::TrainerOptions topt;
  topt.epochs = 10;
  distill::Trainer(model, topt).fit(ds);

  // Deployment-grid loss: supervised loss with fake-quantized weights.
  auto grid_loss = [&](vit::VitModel& m) {
    io::StateDict saved = m.state_dict();
    for (nn::Parameter* p : m.parameters())
      if (p->value.ndim() == 2 && p->name == "weight")
        fake_quantize_weight(p->value, WeightGranularity::kPerChannel, 4);
    const auto idx = ds.all_indices();
    const data::Batch batch = ds.make_batch(idx);
    m.set_training(false);
    const vit::VitOutput out = m.forward(batch.images);
    vit::VitOutputGrads grads;
    const auto losses =
        distill::supervised_losses(out, batch, {}, grads);
    m.load_state_dict(saved);
    return losses.total();
  };

  const float before = grid_loss(model);
  QatOptions qat;
  qat.quant.weight_bits = 4;
  qat.epochs = 6;
  const QatStats stats = qat_finetune(model, ds, qat);
  EXPECT_GT(stats.steps, 0);
  const float after = grid_loss(model);
  EXPECT_LT(after, before);
}

TEST(Qat, EmptyDatasetThrows) {
  vit::ViTConfig cfg;
  cfg.dim = 16;
  cfg.depth = 1;
  cfg.heads = 2;
  Rng rng(9);
  vit::VitModel model(cfg, rng);
  EXPECT_THROW(qat_finetune(model, data::Dataset(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace itask::quant
