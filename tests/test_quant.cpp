// Quantization tests: round-trip error bounds (property sweeps), per-channel
// vs per-tensor, INT8 GEMM vs FP32 reference, calibrators, and the full
// quantized-ViT runtime against its FP32 source model.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "quant/calibrate.h"
#include "quant/int8_gemm.h"
#include "quant/qvit.h"
#include "tensor/ops.h"

namespace itask::quant {
namespace {

class QuantRoundTrip : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfScale) {
  const auto [lo, hi] = GetParam();
  const QuantParams p = QuantParams::asymmetric(lo, hi);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.uniform(std::min(lo, 0.0f), std::max(hi, 0.0f));
    const float back = p.dequantize(p.quantize(x));
    EXPECT_LE(std::abs(x - back), 0.5f * p.scale + 1e-6f) << "x=" << x;
  }
}

TEST_P(QuantRoundTrip, ZeroIsExact) {
  const auto [lo, hi] = GetParam();
  const QuantParams p = QuantParams::asymmetric(lo, hi);
  EXPECT_EQ(p.dequantize(p.quantize(0.0f)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, QuantRoundTrip,
    ::testing::Values(std::make_pair(-1.0f, 1.0f), std::make_pair(0.0f, 6.0f),
                      std::make_pair(-3.0f, 0.5f),
                      std::make_pair(-0.01f, 0.01f),
                      std::make_pair(-128.0f, 127.0f)));

TEST(QuantParams, SymmetricHasZeroPointZero) {
  const QuantParams p = QuantParams::symmetric(2.0f);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_NEAR(p.scale, 2.0f / 127.0f, 1e-6f);
  EXPECT_EQ(p.quantize(2.0f), 127);
  EXPECT_EQ(p.quantize(-2.0f), -127);
  EXPECT_EQ(p.quantize(-3.0f), -128);  // clamped
}

TEST(QuantParams, ClampsOutOfRange) {
  const QuantParams p = QuantParams::asymmetric(0.0f, 1.0f);
  EXPECT_EQ(p.quantize(100.0f), 127);
  EXPECT_EQ(p.quantize(-100.0f), -128);
}

TEST(QuantizeWeight, PerChannelNeverWorseThanPerTensor) {
  Rng rng(3);
  // Rows with very different magnitudes — the per-channel win case.
  Tensor w({4, 8});
  for (int64_t r = 0; r < 4; ++r)
    for (int64_t c = 0; c < 8; ++c)
      w.at({r, c}) = rng.normal(0.0f, std::pow(10.0f, static_cast<float>(r) - 2.0f));
  auto mse_of = [&](WeightGranularity g) {
    const QuantizedWeight qw = quantize_weight(w, g);
    double err = 0.0;
    for (int64_t r = 0; r < 4; ++r)
      for (int64_t c = 0; c < 8; ++c) {
        const float back =
            static_cast<float>(qw.data[static_cast<size_t>(r * 8 + c)]) *
            qw.scale_for_row(r);
        const double d = w.at({r, c}) - back;
        err += d * d;
      }
    return err;
  };
  EXPECT_LT(mse_of(WeightGranularity::kPerChannel),
            mse_of(WeightGranularity::kPerTensor));
}

TEST(QuantizeWeight, ScaleCountMatchesGranularity) {
  Rng rng(4);
  Tensor w = rng.randn({5, 3});
  EXPECT_EQ(quantize_weight(w, WeightGranularity::kPerTensor).scales.size(),
            1u);
  EXPECT_EQ(quantize_weight(w, WeightGranularity::kPerChannel).scales.size(),
            5u);
}

TEST(Int8Gemm, MatchesFp32Reference) {
  Rng rng(5);
  const int64_t m = 6, k = 16, n = 4;
  Tensor x = rng.randn({m, k});
  Tensor w = rng.randn({n, k});
  const Tensor ref = ops::matmul_bt(x, w);
  // Quantize and run the INT8 path.
  float lo = 0.0f, hi = 0.0f;
  for (float v : x.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const QuantParams act = QuantParams::asymmetric(lo, hi);
  const QuantizedWeight qw =
      quantize_weight(w, WeightGranularity::kPerChannel);
  const Tensor out = qlinear_forward(x, act, qw, nullptr);
  // Error bound: per output ≈ k × (act quant err × |w| + x × w quant err).
  for (int64_t i = 0; i < ref.numel(); ++i)
    EXPECT_NEAR(out[i], ref[i], 0.25f) << "element " << i;
  // Relative quality: mean abs error well under signal scale.
  float err = 0.0f, mag = 0.0f;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    err += std::abs(out[i] - ref[i]);
    mag += std::abs(ref[i]);
  }
  EXPECT_LT(err / mag, 0.05f);
}

TEST(Int8Gemm, ZeroPointCorrection) {
  // All-positive activations force a non-trivial zero point; the GEMM's
  // zero-point correction must keep results exact for exactly-representable
  // inputs.
  const QuantParams act = QuantParams::asymmetric(0.0f, 255.0f);
  std::vector<int8_t> a = {act.quantize(10.0f), act.quantize(20.0f)};
  std::vector<int8_t> w = {64, -64};
  std::vector<int32_t> acc(1);
  int8_gemm_bt(a, act.zero_point, w, acc, 1, 2, 1);
  // Expected: (q10 - zp)*64 + (q20 - zp)*(-64).
  const int32_t q10 = act.quantize(10.0f), q20 = act.quantize(20.0f);
  EXPECT_EQ(acc[0], (q10 - act.zero_point) * 64 + (q20 - act.zero_point) * -64);
}

TEST(Int8Gemm, SizeMismatchThrows) {
  std::vector<int8_t> a(4), w(4);
  std::vector<int32_t> acc(3);  // wrong
  EXPECT_THROW(int8_gemm_bt(a, 0, w, acc, 2, 2, 2), std::invalid_argument);
}

TEST(Calibrators, MinMaxIsExact) {
  MinMaxCalibrator calib;
  calib.observe(Tensor({3}, {-2.0f, 0.5f, 3.0f}));
  calib.observe(Tensor({2}, {-1.0f, 5.0f}));
  const QuantParams p = calib.finalize();
  EXPECT_NEAR(p.dequantize(p.quantize(-2.0f)), -2.0f, p.scale);
  EXPECT_NEAR(p.dequantize(p.quantize(5.0f)), 5.0f, p.scale);
}

TEST(Calibrators, FinalizeWithoutObservationsThrows) {
  MinMaxCalibrator m;
  EXPECT_THROW(m.finalize(), std::invalid_argument);
  PercentileCalibrator p;
  EXPECT_THROW(p.finalize(), std::invalid_argument);
  EntropyCalibrator e;
  EXPECT_THROW(e.finalize(), std::invalid_argument);
}

TEST(Calibrators, PercentileClipsOutliers) {
  PercentileCalibrator calib(98.0f);
  Rng rng(6);
  Tensor bulk = rng.rand({2000}, -1.0f, 1.0f);
  bulk[0] = 1000.0f;  // one massive outlier
  calib.observe(bulk);
  const QuantParams p = calib.finalize();
  // The outlier must not blow up the scale: bulk resolution stays fine.
  EXPECT_LT(p.scale, 0.05f);
  MinMaxCalibrator naive;
  naive.observe(bulk);
  EXPECT_GT(naive.finalize().scale, 1.0f);  // contrast: min-max suffers
}

TEST(Calibrators, EntropyProducesUsableRange) {
  EntropyCalibrator calib;
  Rng rng(7);
  calib.observe(rng.randn({5000}, 0.0f, 1.0f));
  const QuantParams p = calib.finalize();
  EXPECT_GT(p.scale, 0.0f);
  // Clip should land somewhere in (0.5σ, 8σ): covers the mass sensibly.
  const float clip = p.scale * 127.5f;
  EXPECT_GT(clip, 0.5f);
  EXPECT_LT(clip, 8.0f);
}

TEST(Calibrators, Factory) {
  EXPECT_NE(make_calibrator(CalibMethod::kMinMax), nullptr);
  EXPECT_NE(make_calibrator(CalibMethod::kPercentile), nullptr);
  EXPECT_NE(make_calibrator(CalibMethod::kEntropy), nullptr);
  EXPECT_STREQ(calib_method_name(CalibMethod::kEntropy), "entropy");
}

TEST(QuantizationMse, SmallForInRangeValues) {
  Rng rng(8);
  Tensor t = rng.rand({1000}, -1.0f, 1.0f);
  const QuantParams p = QuantParams::asymmetric(-1.0f, 1.0f);
  const float mse = quantization_mse(t, p);
  // Uniform quantization noise ≈ scale²/12.
  EXPECT_NEAR(mse, p.scale * p.scale / 12.0f, p.scale * p.scale / 6.0f);
}

// ---- full quantized runtime ------------------------------------------------

vit::ViTConfig small_config() {
  vit::ViTConfig c;
  c.image_size = 8;
  c.patch_size = 4;
  c.dim = 16;
  c.depth = 2;
  c.heads = 2;
  c.num_classes = 5;
  c.num_attributes = 6;
  return c;
}

TEST(QuantizedVit, TracksFp32ModelClosely) {
  Rng rng(9);
  vit::VitModel model(small_config(), rng);
  model.set_training(false);
  Tensor images = rng.rand({4, 3, 8, 8});
  const vit::VitOutput ref = model.forward(images);

  QuantizedVit qvit = QuantizedVit::from_model(model);
  qvit.calibrate(images);
  qvit.finalize();
  const vit::VitOutput out = qvit.forward(images);

  auto close = [](const Tensor& a, const Tensor& b, float tol) {
    float max_err = 0.0f;
    for (int64_t i = 0; i < a.numel(); ++i)
      max_err = std::max(max_err, std::abs(a[i] - b[i]));
    return max_err < tol;
  };
  EXPECT_TRUE(close(out.objectness, ref.objectness, 0.35f));
  EXPECT_TRUE(close(out.class_logits, ref.class_logits, 0.35f));
  EXPECT_TRUE(close(out.attr_logits, ref.attr_logits, 0.35f));
  EXPECT_TRUE(close(out.relevance, ref.relevance, 0.35f));
}

TEST(QuantizedVit, LifecycleEnforced) {
  Rng rng(10);
  vit::VitModel model(small_config(), rng);
  QuantizedVit qvit = QuantizedVit::from_model(model);
  Tensor images = rng.rand({1, 3, 8, 8});
  EXPECT_THROW(qvit.forward(images), std::invalid_argument);
  qvit.calibrate(images);
  qvit.finalize();
  EXPECT_THROW(qvit.finalize(), std::invalid_argument);
  EXPECT_THROW(qvit.calibrate(images), std::invalid_argument);
  EXPECT_NO_THROW(qvit.forward(images));
}

TEST(QuantizedVit, WeightBytesReflectInt8Footprint) {
  Rng rng(11);
  vit::VitModel model(small_config(), rng);
  QuantizedVit qvit = QuantizedVit::from_model(model);
  Tensor images = rng.rand({1, 3, 8, 8});
  qvit.calibrate(images);
  qvit.finalize();
  // INT8 weights = 1 byte per weight element; compare against the count of
  // weight parameters only (biases/LN/embeddings stay FP32).
  int64_t weight_elems = 0;
  for (const auto& [name, tensor] : model.state_dict())
    if (tensor.ndim() == 2 && name.find("weight") != std::string::npos)
      weight_elems += tensor.numel();
  EXPECT_EQ(qvit.quantized_weight_bytes(), weight_elems);
}

TEST(QuantizedVit, MissingStateKeyThrows) {
  Rng rng(12);
  vit::VitModel model(small_config(), rng);
  io::StateDict state = model.state_dict();
  state.erase("obj_head.weight");
  EXPECT_THROW(QuantizedVit(small_config(), state), std::invalid_argument);
}

class CalibMethodSweep : public ::testing::TestWithParam<CalibMethod> {};

TEST_P(CalibMethodSweep, AllMethodsProduceWorkingRuntime) {
  Rng rng(13);
  vit::VitModel model(small_config(), rng);
  model.set_training(false);
  Tensor images = rng.rand({4, 3, 8, 8});
  QuantOptions options;
  options.method = GetParam();
  QuantizedVit qvit = QuantizedVit::from_model(model, options);
  qvit.calibrate(images);
  qvit.finalize();
  const vit::VitOutput out = qvit.forward(images);
  const vit::VitOutput ref = model.forward(images);
  float err = 0.0f, mag = 0.0f;
  for (int64_t i = 0; i < ref.class_logits.numel(); ++i) {
    err += std::abs(out.class_logits[i] - ref.class_logits[i]);
    mag += std::abs(ref.class_logits[i]);
  }
  EXPECT_LT(err / mag, 0.3f) << calib_method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Methods, CalibMethodSweep,
                         ::testing::Values(CalibMethod::kMinMax,
                                           CalibMethod::kPercentile,
                                           CalibMethod::kEntropy));

}  // namespace
}  // namespace itask::quant
