// Tests for deterministic RNG and state-dict serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tensor/io.h"
#include "tensor/rng.h"

namespace itask {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.randint(0, 1 << 30) == b.randint(0, 1 << 30)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const float v = rng.normal(1.0f, 2.0f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.randint(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.randint(3, 2), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctSorted) {
  Rng rng(5);
  const auto idx = rng.sample_indices(20, 7);
  ASSERT_EQ(idx.size(), 7u);
  for (size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
  EXPECT_GE(idx.front(), 0);
  EXPECT_LT(idx.back(), 20);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream should not simply replay the parent stream.
  Rng parent2(42);
  Rng child2 = parent2.fork();
  EXPECT_EQ(child.uniform(), child2.uniform());  // fork is deterministic
}

TEST(Rng, TensorFactories) {
  Rng rng(9);
  Tensor n = rng.randn({100}, 0.0f, 1.0f);
  EXPECT_EQ(n.numel(), 100);
  Tensor u = rng.rand({50}, 2.0f, 4.0f);
  for (float v : u.data()) {
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 4.0f);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Io, StateDictRoundTrip) {
  io::StateDict state;
  Rng rng(21);
  state.emplace("layer.weight", rng.randn({4, 5}));
  state.emplace("layer.bias", rng.randn({5}));
  state.emplace("scalar", Tensor({1}, {3.14f}));
  const std::string path =
      (std::filesystem::temp_directory_path() / "itask_io_test.bin").string();
  io::save_state_dict(state, path);
  const io::StateDict loaded = io::load_state_dict(path);
  ASSERT_EQ(loaded.size(), state.size());
  for (const auto& [k, v] : state) {
    const auto it = loaded.find(k);
    ASSERT_NE(it, loaded.end()) << k;
    EXPECT_EQ(it->second.shape(), v.shape());
    EXPECT_TRUE(it->second.allclose(v, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(io::load_state_dict("/nonexistent/itask.bin"),
               std::runtime_error);
}

TEST(Io, CorruptMagicThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "itask_io_bad.bin").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a state dict";
  }
  EXPECT_THROW(io::load_state_dict(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace itask
